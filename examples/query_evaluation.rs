//! The application the paper's introduction motivates: evaluate a cyclic
//! conjunctive query with Yannakakis' algorithm, guided by a hypertree
//! decomposition computed by `log-k-decomp`, and compare with a naive
//! join plan.
//!
//! Run with: `cargo run --release --example query_evaluation`

use std::time::Instant;

use cqeval::{evaluate_naive, evaluate_yannakakis, ConjunctiveQuery, Database};
use decomp::Control;
use logk::LogK;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    // A 6-cycle join query — the canonical "cyclic CQ" where naive plans
    // produce large intermediate results.
    let q =
        ConjunctiveQuery::parse("r0(x0,x1), r1(x1,x2), r2(x2,x3), r3(x3,x4), r4(x4,x5), r5(x5,x0)")
            .expect("well-formed query");

    // Random data: each relation gets `size` tuples over a small domain,
    // so joins amplify before the cycle closes.
    let mut rng = StdRng::seed_from_u64(42);
    let mut db = Database::new();
    let (size, domain) = (400u32, 40u64);
    for i in 0..6 {
        let tuples: Vec<Vec<u64>> = (0..size)
            .map(|_| vec![rng.random_range(0..domain), rng.random_range(0..domain)])
            .collect();
        db.insert(&format!("r{i}"), tuples);
    }

    // Step 1: hypergraph of the query, decomposition at optimal width.
    let hg = q.hypergraph();
    let ctrl = Control::unlimited();
    let (width, hd) = LogK::hybrid(2)
        .minimal_width(&hg, 4, &ctrl)
        .unwrap()
        .expect("cycle queries have hw 2");
    println!("query hypergraph: {} atoms, hw = {width}", hg.num_edges());
    println!("join tree:\n{}", hd.render(&hg));

    // Step 2: evaluate both ways and compare.
    let t0 = Instant::now();
    let naive = evaluate_naive(&q, &db).expect("naive evaluation");
    let t_naive = t0.elapsed();

    let t1 = Instant::now();
    let yann = evaluate_yannakakis(&q, &db, &hd).expect("yannakakis evaluation");
    let t_yann = t1.elapsed();

    assert_eq!(naive, yann, "both plans must agree");
    println!("answers: {} satisfying assignments", yann.len());
    println!("naive left-deep join: {t_naive:?}");
    println!("Yannakakis over the HD: {t_yann:?}");
    if t_yann < t_naive {
        println!(
            "speedup: {:.1}x — semijoin reduction pays off on cyclic queries",
            t_naive.as_secs_f64() / t_yann.as_secs_f64().max(1e-9)
        );
    }
}
