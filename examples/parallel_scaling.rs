//! A miniature of the paper's Figure 1: solve the same instances with an
//! increasing number of cores and watch the separator search scale.
//!
//! Run with: `cargo run --release --example parallel_scaling`

use std::time::Instant;

use decomp::Control;
use logk::LogK;
use workloads::{known_width, KnownWidthConfig};

fn main() {
    let max_threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    // A batch of HB_large-style instances: >50 edges, known width ≤ 3.
    let instances: Vec<_> = (0..4u64)
        .map(|s| known_width(KnownWidthConfig::new(s + 11, 60, 3)).0)
        .collect();
    println!(
        "solving {} instances (60 edges each) at k = 3, threads 1..={max_threads}\n",
        instances.len()
    );
    println!("{:>8} {:>12} {:>9}", "threads", "total time", "speedup");
    let mut base = None;
    for t in 1..=max_threads {
        let solver = LogK::parallel(t);
        let start = Instant::now();
        for hg in &instances {
            let ctrl = Control::unlimited();
            let hd = solver
                .decompose(hg, 3, &ctrl)
                .unwrap()
                .expect("generated with width <= 3");
            assert!(hd.width() <= 3);
        }
        let elapsed = start.elapsed();
        let baseline = *base.get_or_insert(elapsed.as_secs_f64());
        println!(
            "{t:>8} {:>12.3?} {:>8.2}x",
            elapsed,
            baseline / elapsed.as_secs_f64().max(1e-9)
        );
    }
    println!("\n(The paper reports ~linear scaling up to 4 cores on HB_large — Figure 1.)");
}
