//! Appendix B of the paper, executable: the 10-cycle example worked by
//! `log-k-decomp` at k = 2, reproducing the shape of Figure 2.
//!
//! Run with: `cargo run --release --example cycle_walkthrough`

use decomp::{is_normal_form, validate_hd_width, Control};
use hypergraph::Hypergraph;
use logk::{decompose_basic, LogK};

fn main() {
    // H is "essentially a cycle of size 10": R1(x1,x2), …, R10(x10,x1).
    let edges: Vec<Vec<u32>> = (0..10).map(|i| vec![i, (i + 1) % 10]).collect();
    let hg = Hypergraph::from_edge_lists(&edges);
    let ctrl = Control::unlimited();

    println!("Appendix B walkthrough: H = C_10, k = 2\n");

    // k = 1 must fail: a cycle is not acyclic.
    assert!(decompose_basic(&hg, 1, &ctrl).unwrap().is_none());
    println!("k = 1: no HD exists (C_10 is cyclic) — as expected");

    // Algorithm 1 (the paper's pseudo-code, verbatim) at k = 2.
    let hd = decompose_basic(&hg, 2, &ctrl)
        .unwrap()
        .expect("hw(C_10) = 2");
    validate_hd_width(&hg, &hd, 2).unwrap();
    println!(
        "k = 2: Algorithm 1 found an HD with {} nodes, width {}, depth {}:",
        hd.num_nodes(),
        hd.width(),
        hd.depth()
    );
    print!("{}", hd.render(&hg));
    println!(
        "normal form (Definition 3.5): {}",
        if is_normal_form(&hg, &hd) {
            "yes"
        } else {
            "no"
        }
    );

    // The optimised engine finds a witness too (possibly a different one —
    // the balanced separator is chosen mid-cycle, like Call 1 in the
    // paper picking λp = {R1,R5}, λc = {R1,R6}).
    let hd2 = LogK::sequential()
        .decompose(&hg, 2, &ctrl)
        .unwrap()
        .unwrap();
    validate_hd_width(&hg, &hd2, 2).unwrap();
    println!(
        "\nAlgorithm 2 (optimised) witness: {} nodes, depth {} — also valid.",
        hd2.num_nodes(),
        hd2.depth()
    );

    // Figure 2a for reference: the paper's hand-built width-2 HD has the
    // shape λ(u_i) = {R1, R_{i+1}} — a path of 8 nodes.
    println!("\n(The paper's Figure 2a witness is a path u1..u8 with λ(u_i) = {{R1, R_i+1}}.)");
}
