//! Quickstart: parse a hypergraph, compute an optimal-width hypertree
//! decomposition with `log-k-decomp`, validate it, and print it.
//!
//! Run with: `cargo run --release --example quickstart`

use decomp::{validate_hd_width, Control};
use hypergraph::parse_hyperbench;
use logk::LogK;

fn main() {
    // A conjunctive query / CSP in HyperBench syntax: a 6-cycle with one
    // chord and a dangling path.
    let source = "
        r1(a,b), r2(b,c), r3(c,d), r4(d,e), r5(e,f), r6(f,a),
        chord(b,e),
        p1(f,g), p2(g,h).
    ";
    let hg = parse_hyperbench(source).expect("well-formed input");
    println!(
        "hypergraph: {} vertices, {} edges",
        hg.num_vertices(),
        hg.num_edges()
    );

    // The paper's flagship solver: parallel log-k-decomp with the
    // det-k-decomp hybrid (Appendix D.2), searching k = 1, 2, … until the
    // optimum is certified.
    let solver = LogK::hybrid(std::thread::available_parallelism().map_or(2, |n| n.get()));
    let ctrl = Control::unlimited();
    let (width, hd) = solver
        .minimal_width(&hg, 10, &ctrl)
        .expect("not interrupted")
        .expect("every hypergraph has some hw <= 10 here");

    println!("hypertree width: {width}");
    println!(
        "decomposition ({} nodes, depth {}):",
        hd.num_nodes(),
        hd.depth()
    );
    print!("{}", hd.render(&hg));

    // Every witness is checkable against the four HD conditions of the
    // paper (cover, connectedness, χ ⊆ ⋃λ, special condition).
    validate_hd_width(&hg, &hd, width).expect("certified decomposition");
    println!("validated: all HD conditions hold at width {width}");
}
