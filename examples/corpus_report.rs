//! Inspect the HyperBench-like corpus: group sizes, arity/degree stats,
//! acyclicity counts — the data the harness runs the evaluation on.
//!
//! Run with: `cargo run --release --example corpus_report`

use hypergraph::is_acyclic;
use workloads::{hyperbench_like, CorpusConfig, Origin, SizeBand, HYPERBENCH_GROUPS};

fn main() {
    let cfg = CorpusConfig::default();
    let corpus = hyperbench_like(cfg);
    println!(
        "corpus: {} instances (HyperBench group proportions at scale {:.4})\n",
        corpus.len(),
        cfg.scale
    );
    println!(
        "{:<14} {:<16} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "Origin", "Size band", "instances", "hyperb.", "acyclic", "avg |E|", "avg |V|"
    );
    for &(origin, band, full) in HYPERBENCH_GROUPS {
        let group: Vec<_> = corpus
            .iter()
            .filter(|i| i.origin == origin && i.band() == band)
            .collect();
        if group.is_empty() {
            continue;
        }
        let acyclic = group.iter().filter(|i| is_acyclic(&i.hg)).count();
        let avg_e =
            group.iter().map(|i| i.hg.num_edges()).sum::<usize>() as f64 / group.len() as f64;
        let avg_v =
            group.iter().map(|i| i.hg.num_vertices()).sum::<usize>() as f64 / group.len() as f64;
        println!(
            "{:<14} {:<16} {:>9} {:>9} {:>8} {:>9.1} {:>9.1}",
            origin.to_string(),
            band.label(),
            group.len(),
            full,
            acyclic,
            avg_e,
            avg_v
        );
    }

    let with_bound = corpus.iter().filter(|i| i.width_upper.is_some()).count();
    println!(
        "\n{} of {} instances carry a certified width upper bound from the generator",
        with_bound,
        corpus.len()
    );
    let over = corpus
        .iter()
        .filter(|i| i.band() == SizeBand::Over100)
        .count();
    let apps = corpus
        .iter()
        .filter(|i| i.origin == Origin::Application)
        .count();
    println!(
        "{apps} application-shaped, {} synthetic, {over} with |E| > 100",
        corpus.len() - apps
    );
}
