//! Theorem 4.1, observed: `log-k-decomp`'s recursion depth grows
//! logarithmically with the instance while `det-k-decomp`'s strict
//! top-down recursion grows linearly — the structural reason the former
//! parallelises and the latter does not.
//!
//! Run with: `cargo run --release --example recursion_depth`

use decomp::Control;
use detk::DetKDecomp;
use hypergraph::{Hypergraph, SpecialArena, Subproblem};
use logk::LogK;

fn chain(m: u32) -> Hypergraph {
    let edges: Vec<Vec<u32>> = (0..m).map(|i| vec![i, i + 1]).collect();
    Hypergraph::from_edge_lists(&edges)
}

fn main() {
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "|E|", "log-k depth", "det-k depth", "log2(|E|)"
    );
    for m in [8u32, 16, 32, 64, 128] {
        let hg = chain(m);
        let ctrl = Control::unlimited();

        let (d, stats) = LogK::sequential()
            .decompose_with_stats(&hg, 1, &ctrl)
            .unwrap();
        assert!(d.is_some(), "chains are acyclic: hw = 1");

        let mut detk_engine = DetKDecomp::new(&hg, 1, &ctrl);
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let frag = detk_engine
            .decompose(&arena, &sub, &hg.vertex_set())
            .unwrap();
        assert!(frag.is_some());

        println!(
            "{:>8} {:>14} {:>14} {:>10.1}",
            m,
            stats.max_depth,
            detk_engine.max_depth(),
            (m as f64).log2()
        );
    }
    println!(
        "\nBalanced separators halve every subproblem (Lemma 3.10 + Theorem 4.1);\n\
         det-k-decomp walks the chain node by node instead."
    );
}
