//! `lkd` — command-line hypertree decomposition tool.
//!
//! ```text
//! lkd decompose <file> [--k=N] [--method=hybrid|logk|detk|ghd|sat]
//!                      [--threads=N] [--timeout-ms=N] [--pace] [--width-only]
//! lkd stats <file> [--pace]
//! ```
//!
//! `decompose` computes an optimal-width decomposition (searching k = 1…10
//! unless `--k` fixes it) and prints the certified tree; `stats` reports
//! hypergraph measures including α-acyclicity.

use std::process::ExitCode;
use std::time::Duration;

use decomp::{validate_ghd, validate_hd, Control, Decomposition};
use hypergraph::{is_acyclic, parse_hyperbench, parse_pace, Hypergraph};
use logk::LogK;

struct Opts {
    file: Option<String>,
    k: Option<usize>,
    method: String,
    threads: usize,
    timeout: Option<Duration>,
    pace: bool,
    width_only: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        file: None,
        k: None,
        method: "hybrid".into(),
        threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
        timeout: None,
        pace: false,
        width_only: false,
    };
    for a in args {
        if let Some(v) = a.strip_prefix("--k=") {
            let k: usize = v.parse().map_err(|e| format!("--k: {e}"))?;
            if k == 0 {
                return Err("--k must be at least 1".into());
            }
            o.k = Some(k);
        } else if let Some(v) = a.strip_prefix("--method=") {
            o.method = v.to_string();
        } else if let Some(v) = a.strip_prefix("--threads=") {
            o.threads = v.parse().map_err(|e| format!("--threads: {e}"))?;
        } else if let Some(v) = a.strip_prefix("--timeout-ms=") {
            o.timeout = Some(Duration::from_millis(
                v.parse().map_err(|e| format!("--timeout-ms: {e}"))?,
            ));
        } else if a == "--pace" {
            o.pace = true;
        } else if a == "--width-only" {
            o.width_only = true;
        } else if a.starts_with("--") {
            return Err(format!("unknown flag {a}"));
        } else if o.file.is_none() {
            o.file = Some(a.clone());
        } else {
            return Err(format!("unexpected argument {a}"));
        }
    }
    Ok(o)
}

fn load(o: &Opts) -> Result<Hypergraph, String> {
    let path = o.file.as_ref().ok_or("missing input file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if o.pace || path.ends_with(".htd") || text.trim_start().starts_with("p htd") {
        parse_pace(&text).map_err(|e| e.to_string())
    } else {
        parse_hyperbench(&text).map_err(|e| e.to_string())
    }
}

fn decompose(o: &Opts) -> Result<(), String> {
    let hg = load(o)?;
    let ctrl = match o.timeout {
        Some(t) => Control::with_timeout(t),
        None => Control::unlimited(),
    };
    let k_range = o.k.map(|k| (k, k)).unwrap_or((1, 10));

    let solve = |k: usize| -> Result<Option<Decomposition>, String> {
        match o.method.as_str() {
            "hybrid" => LogK::hybrid(o.threads)
                .decompose(&hg, k, &ctrl)
                .map_err(|e| e.to_string()),
            "logk" => LogK::parallel(o.threads)
                .decompose(&hg, k, &ctrl)
                .map_err(|e| e.to_string()),
            "detk" => detk::decompose_detk(&hg, k, &ctrl).map_err(|e| e.to_string()),
            "ghd" => ghd::decompose_ghd(&hg, k, &ctrl).map_err(|e| e.to_string()),
            "sat" => htdsat::decide_ghw(&hg, k, &ctrl).map_err(|e| e.to_string()),
            other => Err(format!("unknown method {other}")),
        }
    };

    for k in k_range.0..=k_range.1 {
        match solve(k)? {
            None => continue,
            Some(d) => {
                // Certify before reporting.
                let valid = match o.method.as_str() {
                    "ghd" | "sat" => validate_ghd(&hg, &d).is_ok(),
                    _ => validate_hd(&hg, &d).is_ok(),
                };
                if !valid {
                    return Err("internal error: witness failed validation".into());
                }
                println!("width: {}", d.width());
                if !o.width_only {
                    println!("nodes: {}  depth: {}", d.num_nodes(), d.depth());
                    print!("{}", d.render(&hg));
                }
                return Ok(());
            }
        }
    }
    Err(match o.k {
        Some(k) => format!("no decomposition of width <= {k}"),
        None => "no decomposition of width <= 10 found".into(),
    })
}

fn stats(o: &Opts) -> Result<(), String> {
    let hg = load(o)?;
    println!("vertices:   {}", hg.num_vertices());
    println!("edges:      {}", hg.num_edges());
    println!("max arity:  {}", hg.max_arity());
    println!("avg arity:  {:.2}", hg.avg_arity());
    println!("max degree: {}", hg.max_degree());
    println!("acyclic:    {}", is_acyclic(&hg));
    let (reduced, _) = hg.reduced();
    println!("after subsumption reduction: {} edges", reduced.num_edges());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: lkd <decompose|stats> <file> [flags]  (see --help in source docs)";
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{usage}");
        return ExitCode::from(2);
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{usage}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "decompose" => decompose(&opts),
        "stats" => stats(&opts),
        _ => Err(format!("unknown command {cmd}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
