//! # log-k-decomp
//!
//! A complete Rust implementation of *Fast Parallel Hypertree
//! Decompositions in Logarithmic Recursion Depth* (Gottlob, Lanzinger,
//! Okulmus, Pichler — PODS 2022), together with every substrate and
//! baseline the paper's evaluation depends on.
//!
//! This meta-crate re-exports the workspace's public API:
//!
//! * [`hypergraph`] — hypergraphs, bitsets, parsers, components;
//! * [`decomp`] — hypertree decompositions and validators;
//! * [`logk`] — the `log-k-decomp` algorithm (basic, optimised, parallel,
//!   hybrid);
//! * [`detk`] — the `det-k-decomp` baseline;
//! * [`ghd`] — the BalancedGo-style GHD baseline;
//! * [`satsolver`] / [`htdsat`] — CDCL SAT solver and the SAT-based
//!   optimal-width baseline (HtdLEO substitute);
//! * [`workloads`] — HyperBench-like instance generators;
//! * [`cqeval`] — Yannakakis-style conjunctive-query evaluation guided by
//!   hypertree decompositions.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use cqeval;
pub use decomp;
pub use detk;
pub use ghd;
pub use htdsat;
pub use hypergraph;
pub use logk;
pub use satsolver;
pub use workloads;
