//! Table 1 as a Criterion benchmark: the competing methods on
//! representative instances from each corpus family (optimal-width
//! search, like the paper's per-instance runs).

use criterion::{criterion_group, criterion_main, Criterion};
use decomp::Control;
use logk::LogK;
use std::hint::black_box;
use workloads::{families, known_width, KnownWidthConfig};

fn instances() -> Vec<(&'static str, hypergraph::Hypergraph, usize)> {
    vec![
        // (name, hypergraph, k_max to search)
        ("app_chain30", families::chain(30, 3), 2),
        ("app_cycle20", families::cycle(20), 3),
        (
            "syn_bounded40_k3",
            known_width(KnownWidthConfig::new(5, 40, 3)).0,
            4,
        ),
        ("syn_grid3x4", families::grid(3, 4), 3),
    ]
}

fn bench_logk_hybrid(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/logk_hybrid");
    for (name, hg, kmax) in instances() {
        let solver = LogK::hybrid(2);
        g.bench_function(name, |b| {
            b.iter(|| {
                let ctrl = Control::unlimited();
                black_box(solver.minimal_width(black_box(&hg), kmax, &ctrl).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_logk_pure(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/logk");
    for (name, hg, kmax) in instances() {
        let solver = LogK::sequential();
        g.bench_function(name, |b| {
            b.iter(|| {
                let ctrl = Control::unlimited();
                black_box(solver.minimal_width(black_box(&hg), kmax, &ctrl).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_detk(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/detk");
    for (name, hg, kmax) in instances() {
        g.bench_function(name, |b| {
            b.iter(|| {
                let ctrl = Control::unlimited();
                for k in 1..=kmax {
                    if detk::decompose_detk(black_box(&hg), k, &ctrl)
                        .unwrap()
                        .is_some()
                    {
                        return k;
                    }
                }
                kmax
            })
        });
    }
    g.finish();
}

fn bench_htdsat(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1/htdsat");
    // The SAT baseline is orders of magnitude slower; use the small
    // instances only (the paper's Table 1 shows the same cliff).
    for (name, hg, kmax) in [
        ("app_cycle10", families::cycle(10), 3),
        (
            "syn_bounded12_k2",
            known_width(KnownWidthConfig::new(6, 12, 2)).0,
            3,
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let ctrl = Control::unlimited();
                black_box(htdsat::optimal_ghw(black_box(&hg), kmax, &ctrl).unwrap())
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_logk_hybrid, bench_logk_pure, bench_detk, bench_htdsat
}
criterion_main!(benches);
