//! Ablation benchmark for the Appendix C optimisations: Algorithm 2 with
//! each search-space restriction toggled off, on a negative instance
//! (where the whole space is enumerated and the restrictions matter most).

use criterion::{criterion_group, criterion_main, Criterion};
use decomp::Control;
use logk::{EngineConfig, LogKEngine};
use std::hint::black_box;
use workloads::families;

fn bench_ablation(c: &mut Criterion) {
    // A negative instance: C_9 at k = 1 — exhaustive search.
    let hg = families::cycle(9);
    let mut g = c.benchmark_group("appendix_c/ablation_negative_c9_k1");

    let variants: Vec<(&str, EngineConfig)> = vec![
        ("all_optimisations", EngineConfig::sequential(1)),
        (
            "no_parent_restriction",
            EngineConfig {
                restrict_parent_search: false,
                ..EngineConfig::sequential(1)
            },
        ),
        (
            "no_allowed_edges",
            EngineConfig {
                use_allowed_edges: false,
                ..EngineConfig::sequential(1)
            },
        ),
        (
            "neither",
            EngineConfig {
                restrict_parent_search: false,
                use_allowed_edges: false,
                ..EngineConfig::sequential(1)
            },
        ),
    ];
    for (name, cfg) in variants {
        g.bench_function(name, |b| {
            b.iter(|| {
                let ctrl = Control::unlimited();
                let engine = LogKEngine::new(black_box(&hg), &ctrl, cfg);
                assert!(engine.decompose().unwrap().is_none());
            })
        });
    }
    g.finish();

    // A positive instance where the basic Algorithm 1 is measurably
    // slower than Algorithm 2 (the value of child-first + root handling).
    let hg2 = families::cycle(8);
    let mut g2 = c.benchmark_group("appendix_c/alg1_vs_alg2_c8_k2");
    g2.bench_function("algorithm2", |b| {
        b.iter(|| {
            let ctrl = Control::unlimited();
            black_box(
                LogKEngine::new(&hg2, &ctrl, EngineConfig::sequential(2))
                    .decompose()
                    .unwrap(),
            )
        })
    });
    g2.bench_function("algorithm1_reference", |b| {
        b.iter(|| {
            let ctrl = Control::unlimited();
            black_box(logk::decompose_basic(&hg2, 2, &ctrl).unwrap())
        })
    });
    g2.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ablation
}
criterion_main!(benches);
