//! Figure 3 / Tables 3–5 supporting benchmark: how each solver's cost
//! grows with instance size (the edges × vertices scatter of the paper,
//! reduced to a size sweep), plus the SAT baseline's budget cliff
//! (Table 5) and the Yannakakis payoff for the intro's motivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use decomp::Control;
use logk::LogK;
use std::hint::black_box;
use workloads::{families, known_width, KnownWidthConfig};

/// Size sweep for the HD solvers (Figure 3's x-axis).
fn bench_size_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3/size_sweep");
    for m in [20usize, 40, 80] {
        let (hg, _) = known_width(KnownWidthConfig::new(77, m, 3));
        let hybrid = LogK::hybrid(2);
        g.bench_with_input(BenchmarkId::new("logk_hybrid", m), &hg, |b, hg| {
            b.iter(|| {
                let ctrl = Control::unlimited();
                black_box(hybrid.decompose(black_box(hg), 3, &ctrl).unwrap())
            })
        });
        if m <= 40 {
            g.bench_with_input(BenchmarkId::new("detk", m), &hg, |b, hg| {
                b.iter(|| {
                    let ctrl = Control::unlimited();
                    black_box(detk::decompose_detk(black_box(hg), 3, &ctrl).unwrap())
                })
            });
        }
    }
    g.finish();
}

/// Table 5's knob: the SAT baseline under growing instance size — the
/// n³ encoding growth is the cliff that extra timeout budget climbs.
fn bench_sat_encoding_growth(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5/htdsat_size");
    for n in [8u32, 10, 12] {
        let hg = families::cycle(n);
        g.bench_with_input(BenchmarkId::new("cycle", n), &hg, |b, hg| {
            b.iter(|| {
                let ctrl = Control::unlimited();
                black_box(htdsat::decide_ghw(black_box(hg), 2, &ctrl).unwrap())
            })
        });
    }
    g.finish();
}

/// The intro's motivation, measured: Yannakakis over an HD vs the naive
/// join plan on a cyclic query.
fn bench_cq_evaluation(c: &mut Criterion) {
    use cqeval::{evaluate_naive, evaluate_yannakakis, ConjunctiveQuery, Database};
    let q =
        ConjunctiveQuery::parse("r0(x0,x1), r1(x1,x2), r2(x2,x3), r3(x3,x4), r4(x4,x5), r5(x5,x0)")
            .unwrap();
    let mut db = Database::new();
    let mut v = 1u64;
    for i in 0..6 {
        let tuples: Vec<Vec<u64>> = (0..300)
            .map(|_| {
                v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
                vec![(v >> 33) % 30, (v >> 13) % 30]
            })
            .collect();
        db.insert(&format!("r{i}"), tuples);
    }
    let hg = q.hypergraph();
    let hd = LogK::sequential()
        .decompose(&hg, 2, &Control::unlimited())
        .unwrap()
        .unwrap();
    let mut g = c.benchmark_group("intro/cq_evaluation");
    g.bench_function("naive_join", |b| {
        b.iter(|| black_box(evaluate_naive(&q, &db).unwrap()))
    });
    g.bench_function("yannakakis_over_hd", |b| {
        b.iter(|| black_box(evaluate_yannakakis(&q, &db, &hd).unwrap()))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_size_sweep, bench_sat_encoding_growth, bench_cq_evaluation
}
criterion_main!(benches);
