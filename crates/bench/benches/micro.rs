//! Micro benchmarks for the substrate hot paths: bitset algebra,
//! `[U]`-component computation, and bounded-subset enumeration — the three
//! loops every solver in the workspace spends its time in.

use std::ops::ControlFlow;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use decomp::Control;
use hypergraph::subsets::for_each_subset;
use hypergraph::{
    separate, separate_into, Edge, Scratch, Separation, SpecialArena, Subproblem, Vertex, VertexSet,
};
use logk::LogK;
use std::hint::black_box;
use workloads::families;

fn bench_bitsets(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/bitset");
    let a = VertexSet::from_iter(4096, (0..4096).step_by(3).map(Vertex));
    let b = VertexSet::from_iter(4096, (0..4096).step_by(5).map(Vertex));
    let u = VertexSet::from_iter(4096, (0..4096).step_by(7).map(Vertex));
    g.bench_function("intersects_outside_4096", |bch| {
        bch.iter(|| black_box(&a).intersects_outside(black_box(&b), black_box(&u)))
    });
    g.bench_function("union_4096", |bch| {
        bch.iter_batched(
            || a.clone(),
            |mut x| {
                x.union_with(black_box(&b));
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("iter_4096", |bch| {
        bch.iter(|| black_box(&a).iter().map(|v| v.0 as u64).sum::<u64>())
    });

    // Wide-instance group: the fused one-pass kernels against the chained
    // public-API sequence they replaced (copy + difference + intersect +
    // union — the pre-fusion engine hot path), at word-sized (64-bit),
    // 8-word (512-bit) and 32-word (2048-bit) set widths. The λp `bad`-set
    // assembly and the prefilter's exclusion count are the two shapes the
    // engine runs per λp candidate; the 32-word pair is the acceptance
    // measurement (fused ≥ 1.5× chained).
    for (label, nbits) in [("1w", 64usize), ("8w", 512), ("32w", 2048)] {
        let up = VertexSet::from_iter(nbits, (0..nbits).step_by(3).map(|v| Vertex(v as u32)));
        let uc = VertexSet::from_iter(nbits, (0..nbits).step_by(5).map(|v| Vertex(v as u32)));
        let vs = VertexSet::from_iter(nbits, (0..nbits).step_by(2).map(|v| Vertex(v as u32)));
        let cuc = VertexSet::from_iter(nbits, (0..nbits).step_by(7).map(|v| Vertex(v as u32)));
        let mut bad = VertexSet::empty(nbits);
        let mut tmp = VertexSet::empty(nbits);
        g.bench_function(format!("lp_bad_chained_{label}"), |bch| {
            bch.iter(|| {
                bad.copy_from(black_box(&up));
                bad.difference_with(black_box(&uc));
                bad.intersect_with(black_box(&vs));
                tmp.copy_from(black_box(&cuc));
                tmp.difference_with(black_box(&up));
                bad.union_with(&tmp);
                black_box(!bad.is_empty())
            })
        });
        g.bench_function(format!("lp_bad_fused_{label}"), |bch| {
            bch.iter(|| {
                let (_, nonempty) = bad.assign_lp_bad(
                    black_box(&up),
                    black_box(&uc),
                    black_box(&vs),
                    black_box(&cuc),
                );
                black_box(nonempty)
            })
        });
        g.bench_function(format!("count_and_or_chained_{label}"), |bch| {
            bch.iter(|| {
                tmp.copy_from(black_box(&up));
                tmp.intersect_with(black_box(&uc));
                tmp.union_with(black_box(&vs));
                black_box(tmp.len())
            })
        });
        g.bench_function(format!("count_and_or_fused_{label}"), |bch| {
            bch.iter(|| black_box(&up).count_intersect_union(black_box(&uc), black_box(&vs)))
        });
    }
    g.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/components");
    for (name, hg) in [
        ("cycle100", families::cycle(100)),
        ("grid6x6", families::grid(6, 6)),
        ("csp100", families::random_csp(7, 120, 100, 4)),
    ] {
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        // Separator: the union of three spread-out edges.
        let mut sep = hg.vertex_set();
        for e in [
            0u32,
            hg.num_edges() as u32 / 3,
            2 * hg.num_edges() as u32 / 3,
        ] {
            sep.union_with(hg.edge(Edge(e)));
        }
        // The allocating convenience wrapper…
        g.bench_function(name, |bch| {
            bch.iter(|| separate(black_box(&hg), &arena, &sub, black_box(&sep)))
        });
        // …versus the scratch-workspace hot path the engine actually runs:
        // identical output, zero steady-state allocations.
        let mut scratch = Scratch::new();
        let mut out = Separation::new();
        g.bench_function(format!("{name}_into"), |bch| {
            bch.iter(|| {
                separate_into(
                    black_box(&hg),
                    &arena,
                    &sub,
                    black_box(&sep),
                    &mut scratch,
                    &mut out,
                );
                out.components.len()
            })
        });
    }
    g.finish();
}

fn bench_neg_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/neg_cache");
    // Two K5 cliques sharing two vertices, searched at the failing width
    // k = 2: the textbook memoisation workload — the same failed
    // subproblems recur under many λ candidates, so the cached engine
    // refutes each once while the uncached engine re-explores it every
    // time (~80 hits, two orders of magnitude wall-clock). Plus a cyclic
    // bounded-width instance as the low-reuse contrast. Hit counts > 0
    // are asserted by tests/cache_differential.rs; here the wall-clock
    // delta is recorded.
    let mut edges = Vec::new();
    for a in 0..5u32 {
        for b in a + 1..5 {
            edges.push(vec![a, b]);
        }
    }
    for a in 3..8u32 {
        for b in a + 1..8 {
            edges.push(vec![a, b]);
        }
    }
    let twin_k5 = hypergraph::Hypergraph::from_edge_lists(&edges);
    let bounded = workloads::known_width(workloads::KnownWidthConfig::new(11, 40, 3)).0;
    for (name, hg, k) in [
        ("twin_k5_k2_neg", &twin_k5, 2usize),
        ("bounded40_k2", &bounded, 2),
    ] {
        let cached = LogK::sequential();
        let uncached = LogK::sequential().with_cache_bytes(0);
        g.bench_function(format!("{name}_cached"), |bch| {
            bch.iter(|| {
                let ctrl = Control::unlimited();
                black_box(cached.decide(black_box(hg), k, &ctrl).unwrap())
            })
        });
        g.bench_function(format!("{name}_uncached"), |bch| {
            bch.iter(|| {
                let ctrl = Control::unlimited();
                black_box(uncached.decide(black_box(hg), k, &ctrl).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_pos_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/pos_cache");
    // The positive-memoisation showcase: the 5×6 grid at its true width
    // k = 3. The search keeps re-deriving the same *solvable* subproblems
    // — below-fragments recomputed across λp retries and recursion levels
    // (~100 positive hits, plus heavy negative reuse) — so the unified
    // cache turns an ~8.8 s uncached solve into ~0.2 s (~40×). This is
    // the repeated-subproblem positive corpus of the PR 2 acceptance
    // criterion (≥ 2× required; measured ~40×).
    let grid = families::grid(5, 6);
    let cached = LogK::sequential();
    let uncached = LogK::sequential().with_cache_bytes(0);
    g.bench_function("grid5x6_k3_pos_cached", |bch| {
        bch.iter(|| {
            let ctrl = Control::unlimited();
            black_box(cached.decide(black_box(&grid), 3, &ctrl).unwrap())
        })
    });
    g.bench_function("grid5x6_k3_pos_uncached", |bch| {
        bch.iter(|| {
            let ctrl = Control::unlimited();
            black_box(uncached.decide(black_box(&grid), 3, &ctrl).unwrap())
        })
    });
    g.finish();
}

fn bench_lp_prune(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/lp_prune");
    // The λp admissibility pre-filter showcase: the 4×4 grid at its true
    // width k = 3. Grid searches reject millions of λp candidates per
    // solve, and most rejections are decidable from coverage bitmasks
    // alone — with the pre-filter on, the `[λp]`-BFS runs ~10× less often
    // (17 004 → 1 696 `separate_into` calls on this instance; ~22–36× on
    // the larger grids the sweep counters track) for a ~2.5× wall-clock
    // win. The differential suite (tests/lp_prefilter_differential.rs)
    // pins that both modes return identical, validated answers.
    let grid = families::grid(4, 4);
    let filtered = LogK::sequential();
    let unfiltered = LogK::sequential().with_lambda_p_prefilter(false);
    // The phase-2 incremental mode (touch masks maintained across the λp
    // subset walk instead of re-walked per candidate pair) measured
    // against the per-pair default. Counter-identical rejections
    // (tests/lp_prefilter_differential.rs); on this word-sized instance
    // the sparse per-pair walk wins — `bad` is small, so walking its set
    // bits is cheaper than the walk's full-width stack copies — which is
    // why per-pair stays the default (see BENCHMARKS.md).
    let incremental = LogK::sequential().with_lambda_p_incremental(true);
    g.bench_function("grid4x4_k3_prefiltered", |bch| {
        bch.iter(|| {
            let ctrl = Control::unlimited();
            black_box(filtered.decide(black_box(&grid), 3, &ctrl).unwrap())
        })
    });
    g.bench_function("grid4x4_k3_inc_prefiltered", |bch| {
        bch.iter(|| {
            let ctrl = Control::unlimited();
            black_box(incremental.decide(black_box(&grid), 3, &ctrl).unwrap())
        })
    });
    g.bench_function("grid4x4_k3_unfiltered", |bch| {
        bch.iter(|| {
            let ctrl = Control::unlimited();
            black_box(unfiltered.decide(black_box(&grid), 3, &ctrl).unwrap())
        })
    });

    // Wide variant: the 260-vertex cycle at its true width k = 2. Every
    // vertex set spans five 64-bit words, so this is the regime where the
    // incremental mode's full-width stack copies amortise — the
    // measurement behind the `LpMode::Auto` word threshold (see
    // BENCHMARKS.md). `with_lambda_p_mode` pins the modes explicitly;
    // the default engine would resolve `Auto` to incremental here.
    let wide = families::cycle(260);
    let wide_pp = LogK::sequential().with_lambda_p_mode(logk::LpMode::Never);
    let wide_inc = LogK::sequential().with_lambda_p_mode(logk::LpMode::Always);
    let wide_unf = LogK::sequential().with_lambda_p_prefilter(false);
    g.bench_function("cycle260_k2_prefiltered", |bch| {
        bch.iter(|| {
            let ctrl = Control::unlimited();
            black_box(wide_pp.decide(black_box(&wide), 2, &ctrl).unwrap())
        })
    });
    g.bench_function("cycle260_k2_inc_prefiltered", |bch| {
        bch.iter(|| {
            let ctrl = Control::unlimited();
            black_box(wide_inc.decide(black_box(&wide), 2, &ctrl).unwrap())
        })
    });
    g.bench_function("cycle260_k2_unfiltered", |bch| {
        bch.iter(|| {
            let ctrl = Control::unlimited();
            black_box(wide_unf.decide(black_box(&wide), 2, &ctrl).unwrap())
        })
    });
    g.finish();
}

fn bench_par_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/par_scaling");
    // Parallel-runtime scaling probe: the 4×4 grid at its true width k = 3
    // solved by the parallel engine on 1/2/4 workers. The λc race at
    // depths < 2 is the only parallel surface, so this bench measures the
    // scheduler itself — join-splitting of the lead space, steal latency
    // and early-cancel — on a workload whose sequential baseline
    // (`micro/lp_prune`, same instance) is ~2 ms. Pools come from the
    // process-wide cache (`logk::shared_pool`), exactly like
    // `LogK::decompose` in production: the first iteration pays the
    // one-off spawn, every later solve reuses the warm workers — the
    // ~0.1 ms-per-solve construction tax the pre-pool-reuse t1 numbers
    // carried is gone from the steady state.
    let grid = families::grid(4, 4);
    for threads in [1usize, 2, 4] {
        let solver = LogK::parallel(threads);
        g.bench_function(format!("grid4x4_k3_t{threads}"), |bch| {
            bch.iter(|| {
                let ctrl = Control::unlimited();
                black_box(solver.decide(black_box(&grid), 3, &ctrl).unwrap())
            })
        });
    }
    // Below-children parallelism probe: a disjoint union splits into one
    // `[λc]`-component per part at the root, so every root candidate is a
    // sibling fan-out opportunity — the second parallel surface the
    // fork/merge arena added to `try_as_root`/`finish_pair`. Measured at
    // 1 and 2 workers with splitting on (default grain) and pinned off
    // (`with_child_split(usize::MAX, 0)` — λc race only), plus an
    // aggressive grain (`(2, 0)`, no work floor) for grain sensitivity.
    // The t1 on/off pair is the sequential-overhead guard: at 1 worker
    // the split gate keeps the fast path, so on ≈ off is the claim.
    let multi = families::disjoint_union(&[families::grid(4, 4), families::grid(4, 4)]);
    for threads in [1usize, 2] {
        for (grain, min_components, min_size) in [
            (
                "children_on",
                logk::DEFAULT_CHILD_SPLIT_MIN_COMPONENTS,
                logk::DEFAULT_CHILD_SPLIT_MIN_SIZE,
            ),
            ("children_off", usize::MAX, 0),
            ("children_eager", 2, 0),
        ] {
            let solver = LogK::parallel(threads).with_child_split(min_components, min_size);
            g.bench_function(format!("dgrid4x4x2_k3_t{threads}_{grain}"), |bch| {
                bch.iter(|| {
                    let ctrl = Control::unlimited();
                    black_box(solver.decide(black_box(&multi), 3, &ctrl).unwrap())
                })
            });
        }
    }
    g.finish();
}

fn bench_ctrl_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/ctrl_overhead");
    // The cancellation tax: `Control::checkpoint` sits on every solver's
    // innermost loop, so its cost *is* the price of interruptibility.
    // Three tiers, in ascending work per poll:
    //   - unlimited: one relaxed load of the stop flag;
    //   - deadline: plus the per-thread poll-stride bookkeeping (clock
    //     consulted every CLOCK_STRIDE-th poll, amortised to ~nothing);
    //   - deep child: plus the ancestor stop-flag walk a service's
    //     root→request→per-width control chain pays (depth 3 here).
    // Each iteration runs 1024 checkpoints so per-call cost lands in a
    // measurable range; divide the reported time by 1024.
    const POLLS_PER_ITER: u32 = 1024;
    let unlimited = Control::unlimited();
    g.bench_function("checkpoint_unlimited_x1024", |bch| {
        bch.iter(|| {
            for _ in 0..POLLS_PER_ITER {
                black_box(black_box(&unlimited).checkpoint().is_ok());
            }
        })
    });
    let deadline = Control::with_timeout(std::time::Duration::from_secs(3600));
    g.bench_function("checkpoint_deadline_x1024", |bch| {
        bch.iter(|| {
            for _ in 0..POLLS_PER_ITER {
                black_box(black_box(&deadline).checkpoint().is_ok());
            }
        })
    });
    let root = std::sync::Arc::new(Control::with_timeout(std::time::Duration::from_secs(3600)));
    let grandchild = root.child().child();
    g.bench_function("checkpoint_child_depth3_x1024", |bch| {
        bch.iter(|| {
            for _ in 0..POLLS_PER_ITER {
                black_box(black_box(&grandchild).checkpoint().is_ok());
            }
        })
    });
    // End-to-end: the same solve polled through an unlimited control
    // versus a (never-firing) deadline chain — the whole-solve overhead
    // the service adds to every request. The two medians should be
    // within noise of each other; that *is* the claim.
    let cyc = families::cycle(24);
    let solver = LogK::sequential();
    g.bench_function("solve_cycle24_k2_unlimited", |bch| {
        bch.iter(|| {
            let ctrl = Control::unlimited();
            black_box(solver.decide(black_box(&cyc), 2, &ctrl).unwrap())
        })
    });
    g.bench_function("solve_cycle24_k2_deadline_chain", |bch| {
        bch.iter(|| {
            let root =
                std::sync::Arc::new(Control::with_timeout(std::time::Duration::from_secs(3600)));
            let ctrl = root.child();
            black_box(solver.decide(black_box(&cyc), 2, &ctrl).unwrap())
        })
    });
    g.finish();
}

fn bench_subsets(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/subsets");
    let cands: Vec<Edge> = (0..30).map(Edge).collect();
    g.bench_function("enumerate_30_choose_le2", |bch| {
        bch.iter(|| {
            let mut n = 0u64;
            for_each_subset::<()>(black_box(&cands), 2, |s| {
                n += s.len() as u64;
                ControlFlow::Continue(())
            });
            n
        })
    });
    g.finish();
}

/// The racing layer (PR 10): the speculative k-sweep against the
/// sequential sweep it shadows, plus the full algorithm portfolio, on
/// three corpus families with deliberately different per-width cost
/// profiles.
///
/// * `grid6x6_b700` — the slice-burn family and the headline win. With a
///   700 ms per-width budget, k = 3 is undecidable inside its slice
///   (refuting it takes ~1.6 s alone) while k = 4 witnesses in ~300 ms.
///   The sequential sweep pays the burn and the witness **serially**
///   (~1.0 s); the speculative sweep overlaps the k = 4 witness search
///   with k = 3's slice burn and finishes when the slice expires
///   (~0.7 s) — same certified bounds `[3, 4]`, same recorded timeout.
///   A per-width wall-clock deadline burns wall time, not CPU, so the
///   overlap is a genuine win even pinned to one core.
/// * `band_cycle120` — the all-fast contrast (hw = 2, every width
///   millisecond-scale): speculation has nothing to overlap, so this
///   pins the coordination tax of the racing path (probe threads +
///   channel) at its worst, and its spec-2 sweep is where the
///   witness-cancels-speculative-probe path fires (the k = 3 probe
///   launched ahead of the k = 2 witness gets cancelled when the
///   witness lands — `race_cancels` in the stderr report).
/// * `chorded48` — a pure refutation ladder (every width up to `k_max`
///   refuted): no probe is ever redundant, so speculative and
///   sequential do identical total work and the sweep must stay at
///   parity.
///
/// The `*_sweep_seq` arms call the racing entry point with
/// `speculation = 1`: the grain gate routes that to the sequential
/// `width_bounds_with` loop itself, so seq-vs-spec2 here *is* the
/// 1-worker-parity / 2-worker-win acceptance comparison. The
/// `*_portfolio_k*` arms race the full 1-thread registry (logk-seq,
/// det-k, ghd, htd-sat) at a fixed width. Each configuration also runs
/// once outside the timing loop to report verdicts, winners and
/// race counters to stderr.
fn bench_race(c: &mut Criterion) {
    use std::sync::Arc;
    use std::time::Duration;

    let mut g = c.benchmark_group("micro/race");
    let fams: Vec<(&str, hypergraph::Hypergraph, usize, Option<Duration>, usize)> = vec![
        (
            "grid6x6_b700",
            families::grid(6, 6),
            4,
            Some(Duration::from_millis(700)),
            2,
        ),
        ("band_cycle120", families::band_cycle(120, 4, 2), 4, None, 2),
        ("chorded48", families::chorded_cycle(48, 16, 3), 3, None, 3),
    ];
    for (name, hg, k_max, budget, port_k) in &fams {
        for (mode, spec) in [("sweep_seq", 1usize), ("sweep_spec2", 2)] {
            let ctrl = Arc::new(Control::unlimited());
            let b = logk::width_bounds_racing(hg, *k_max, &ctrl, *budget, spec, |_| {
                LogK::sequential()
            });
            eprintln!(
                "micro/race {name}_{mode}: bounds=[{}, {:?}] witness={} \
                 probes={} race_cancels={} speculative_wasted={}",
                b.proven_lower,
                b.best_upper,
                b.witness.is_some(),
                b.race.probes,
                b.race.race_cancels,
                b.race.speculative_wasted,
            );
            g.bench_function(format!("{name}_{mode}"), |bch| {
                bch.iter(|| {
                    let ctrl = Arc::new(Control::unlimited());
                    black_box(logk::width_bounds_racing(
                        black_box(hg),
                        *k_max,
                        &ctrl,
                        *budget,
                        spec,
                        |_| LogK::sequential(),
                    ))
                })
            });
        }
        let port = portfolio::Portfolio::full(1);
        let ctrl = Arc::new(Control::unlimited());
        let out = port.race(hg, *port_k, &ctrl);
        eprintln!(
            "micro/race {name}_portfolio_k{port_k}: verdict={} winner={} \
             probes={} race_cancels={} speculative_wasted={}",
            match &out.verdict {
                Ok(Some(_)) => "witness",
                Ok(None) => "refuted",
                Err(_) => "interrupted",
            },
            out.winner.map_or("none", |w| w.name()),
            out.stats.probes,
            out.stats.race_cancels,
            out.stats.speculative_wasted,
        );
        g.bench_function(format!("{name}_portfolio_k{port_k}"), |bch| {
            bch.iter(|| {
                let ctrl = Arc::new(Control::unlimited());
                black_box(port.race(black_box(hg), *port_k, &ctrl))
            })
        });
    }
    g.finish();
}

fn bench_gyo(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/gyo");
    for (name, hg) in [
        ("chain60", families::chain(60, 3)),
        ("cycle60", families::cycle(60)),
    ] {
        g.bench_function(name, |bch| {
            bch.iter(|| hypergraph::is_acyclic(black_box(&hg)))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bitsets, bench_components, bench_subsets, bench_gyo, bench_neg_cache, bench_pos_cache, bench_lp_prune, bench_par_scaling, bench_ctrl_overhead, bench_race
}
criterion_main!(benches);
