//! Micro benchmarks for the substrate hot paths: bitset algebra,
//! `[U]`-component computation, and bounded-subset enumeration — the three
//! loops every solver in the workspace spends its time in.

use std::ops::ControlFlow;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hypergraph::subsets::for_each_subset;
use hypergraph::{separate, Edge, SpecialArena, Subproblem, Vertex, VertexSet};
use std::hint::black_box;
use workloads::families;

fn bench_bitsets(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/bitset");
    let a = VertexSet::from_iter(4096, (0..4096).step_by(3).map(Vertex));
    let b = VertexSet::from_iter(4096, (0..4096).step_by(5).map(Vertex));
    let u = VertexSet::from_iter(4096, (0..4096).step_by(7).map(Vertex));
    g.bench_function("intersects_outside_4096", |bch| {
        bch.iter(|| black_box(&a).intersects_outside(black_box(&b), black_box(&u)))
    });
    g.bench_function("union_4096", |bch| {
        bch.iter_batched(
            || a.clone(),
            |mut x| {
                x.union_with(black_box(&b));
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("iter_4096", |bch| {
        bch.iter(|| black_box(&a).iter().map(|v| v.0 as u64).sum::<u64>())
    });
    g.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/components");
    for (name, hg) in [
        ("cycle100", families::cycle(100)),
        ("grid6x6", families::grid(6, 6)),
        ("csp100", families::random_csp(7, 120, 100, 4)),
    ] {
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        // Separator: the union of three spread-out edges.
        let mut sep = hg.vertex_set();
        for e in [0u32, hg.num_edges() as u32 / 3, 2 * hg.num_edges() as u32 / 3] {
            sep.union_with(hg.edge(Edge(e)));
        }
        g.bench_function(name, |bch| {
            bch.iter(|| separate(black_box(&hg), &arena, &sub, black_box(&sep)))
        });
    }
    g.finish();
}

fn bench_subsets(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/subsets");
    let cands: Vec<Edge> = (0..30).map(Edge).collect();
    g.bench_function("enumerate_30_choose_le2", |bch| {
        bch.iter(|| {
            let mut n = 0u64;
            for_each_subset::<()>(black_box(&cands), 2, |s| {
                n += s.len() as u64;
                ControlFlow::Continue(())
            });
            n
        })
    });
    g.finish();
}

fn bench_gyo(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/gyo");
    for (name, hg) in [
        ("chain60", families::chain(60, 3)),
        ("cycle60", families::cycle(60)),
    ] {
        g.bench_function(name, |bch| bch.iter(|| hypergraph::is_acyclic(black_box(&hg))));
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(400))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bitsets, bench_components, bench_subsets, bench_gyo
}
criterion_main!(benches);
