//! Table 2 as a Criterion benchmark: hybrid metrics and thresholds on an
//! HB_large-style instance (the WeightedCount-vs-EdgeCount ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use decomp::Control;
use logk::{HybridConfig, HybridMetric, LogK};
use std::hint::black_box;
use workloads::{known_width, KnownWidthConfig};

fn bench_thresholds(c: &mut Criterion) {
    let (hg, _) = known_width(KnownWidthConfig::new(21, 60, 3));
    let mut g = c.benchmark_group("table2/hybrid_metric");
    let configs: Vec<(String, Option<HybridConfig>)> = vec![
        ("no_hybrid".into(), None),
        (
            "weighted_200".into(),
            Some(HybridConfig {
                metric: HybridMetric::WeightedCount,
                threshold: 200.0,
            }),
        ),
        (
            "weighted_400".into(),
            Some(HybridConfig {
                metric: HybridMetric::WeightedCount,
                threshold: 400.0,
            }),
        ),
        (
            "weighted_600".into(),
            Some(HybridConfig {
                metric: HybridMetric::WeightedCount,
                threshold: 600.0,
            }),
        ),
        (
            "edgecount_20".into(),
            Some(HybridConfig {
                metric: HybridMetric::EdgeCount,
                threshold: 20.0,
            }),
        ),
        (
            "edgecount_40".into(),
            Some(HybridConfig {
                metric: HybridMetric::EdgeCount,
                threshold: 40.0,
            }),
        ),
        (
            "edgecount_80".into(),
            Some(HybridConfig {
                metric: HybridMetric::EdgeCount,
                threshold: 80.0,
            }),
        ),
    ];
    for (name, hybrid) in configs {
        let solver = LogK::sequential().with_hybrid(hybrid);
        g.bench_function(&name, |b| {
            b.iter(|| {
                let ctrl = Control::unlimited();
                black_box(solver.decompose(black_box(&hg), 3, &ctrl).unwrap())
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_thresholds
}
criterion_main!(benches);
