//! Figure 1 as a Criterion benchmark: the same solve with 1, 2, … worker
//! threads (separator-search partitioning per Appendix D.1).

use criterion::{criterion_group, criterion_main, Criterion};
use decomp::Control;
use logk::LogK;
use std::hint::black_box;
use workloads::{known_width, KnownWidthConfig};

fn bench_thread_scaling(c: &mut Criterion) {
    let (hg, _) = known_width(KnownWidthConfig::new(31, 55, 3));
    let max_threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut g = c.benchmark_group("fig1/threads");
    for t in 1..=max_threads.min(6) {
        let solver = LogK::parallel(t);
        g.bench_function(format!("logk_{t}threads"), |b| {
            b.iter(|| {
                let ctrl = Control::unlimited();
                black_box(solver.decompose(black_box(&hg), 3, &ctrl).unwrap())
            })
        });
        let hybrid = LogK::hybrid(t);
        g.bench_function(format!("hybrid_{t}threads"), |b| {
            b.iter(|| {
                let ctrl = Control::unlimited();
                black_box(hybrid.decompose(black_box(&hg), 3, &ctrl).unwrap())
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_thread_scaling
}
criterion_main!(benches);
