//! Criterion benchmark suite for the workspace — see `benches/` — plus
//! the library half of the `bench_diff` trajectory gate: parsing the
//! `BENCH_*.json` schema the vendored criterion emits and classifying
//! baseline-vs-candidate median movements.
//!
//! The binary (`src/bin/bench_diff.rs`) only does I/O and process exit;
//! the comparison semantics live here so they are unit-testable. The key
//! policy, pinned by tests: a bench present only in the *candidate* run
//! (a freshly added group or id) is **new — reported and skipped, never
//! fatal** — so a PR introducing a bench doesn't need a two-step
//! baseline dance; and a bench present only in the baseline is likewise
//! reported as missing without failing, so benches can be retired
//! freely. Only a genuine median regression beyond the threshold fails
//! the gate.

use std::collections::BTreeMap;

/// `(file stem, bench id) → median_ns` for one run's `BENCH_*.json` set.
pub type Medians = BTreeMap<(String, String), f64>;

/// Classification of one `(file, id)` pair across the two runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Within the threshold band.
    Ok,
    /// Candidate median faster than baseline beyond the threshold.
    Improved,
    /// Candidate median slower than baseline beyond the threshold —
    /// the only fatal verdict.
    Regressed,
    /// Present only in the candidate run: new bench, skipped.
    New,
    /// Present only in the baseline: retired (or not run), skipped.
    Missing,
}

/// One row of the diff report.
#[derive(Clone, Debug)]
pub struct DiffEntry {
    /// File stem (`BENCH_micro_components`) the bench came from.
    pub file: String,
    /// Bench id within its group.
    pub id: String,
    /// Baseline median, if the bench exists there.
    pub baseline_ns: Option<f64>,
    /// Candidate median, if the bench exists there.
    pub candidate_ns: Option<f64>,
    /// Outcome for this bench.
    pub verdict: Verdict,
}

impl DiffEntry {
    /// candidate / baseline, when both sides exist.
    pub fn ratio(&self) -> Option<f64> {
        match (self.baseline_ns, self.candidate_ns) {
            (Some(b), Some(c)) if b > 0.0 => Some(c / b),
            (Some(_), Some(_)) => Some(1.0),
            _ => None,
        }
    }
}

/// Full diff of two runs.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Every `(file, id)` seen on either side, in deterministic order.
    pub entries: Vec<DiffEntry>,
}

impl DiffReport {
    /// Benches compared on both sides.
    pub fn compared(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !matches!(e.verdict, Verdict::New | Verdict::Missing))
            .count()
    }

    /// Fatal regressions.
    pub fn regressions(&self) -> usize {
        self.count(Verdict::Regressed)
    }

    /// New benches (candidate only, skipped).
    pub fn new_benches(&self) -> usize {
        self.count(Verdict::New)
    }

    /// Retired benches (baseline only, skipped).
    pub fn missing_benches(&self) -> usize {
        self.count(Verdict::Missing)
    }

    fn count(&self, v: Verdict) -> usize {
        self.entries.iter().filter(|e| e.verdict == v).count()
    }

    /// Whether the gate passes (no regressions; new/missing never fail).
    pub fn passes(&self) -> bool {
        self.regressions() == 0
    }
}

/// Diffs candidate medians against a baseline with relative `threshold`
/// (`0.10` = 10%). Pure: no I/O, no exit codes.
pub fn diff_medians(baseline: &Medians, candidate: &Medians, threshold: f64) -> DiffReport {
    let mut entries = Vec::new();
    for ((file, id), &base) in baseline {
        let key = (file.clone(), id.clone());
        match candidate.get(&key) {
            Some(&cand) => {
                let ratio = if base > 0.0 { cand / base } else { 1.0 };
                let verdict = if ratio > 1.0 + threshold {
                    Verdict::Regressed
                } else if ratio < 1.0 - threshold {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                entries.push(DiffEntry {
                    file: file.clone(),
                    id: id.clone(),
                    baseline_ns: Some(base),
                    candidate_ns: Some(cand),
                    verdict,
                });
            }
            None => entries.push(DiffEntry {
                file: file.clone(),
                id: id.clone(),
                baseline_ns: Some(base),
                candidate_ns: None,
                verdict: Verdict::Missing,
            }),
        }
    }
    for ((file, id), &cand) in candidate {
        if !baseline.contains_key(&(file.clone(), id.clone())) {
            entries.push(DiffEntry {
                file: file.clone(),
                id: id.clone(),
                baseline_ns: None,
                candidate_ns: Some(cand),
                verdict: Verdict::New,
            });
        }
    }
    DiffReport { entries }
}

/// Extracts `(id, median_ns)` pairs from one `BENCH_*.json` in emission
/// order. Relies only on the schema the vendored criterion writes: each
/// bench object contains `"id": "<string>"` followed by
/// `"median_ns": <number>`. Deliberately free of JSON-crate dependencies
/// (the container has no crates.io access).
pub fn parse_medians(text: &str) -> Vec<(String, f64)> {
    let mut pairs = Vec::new();
    let mut rest = text;
    while let Some(idx) = rest.find("\"id\"") {
        rest = &rest[idx + 4..];
        let Some(id) = next_string_value(rest) else {
            break;
        };
        let Some(midx) = rest.find("\"median_ns\"") else {
            break;
        };
        let after = &rest[midx + 11..];
        let Some(median) = next_number_value(after) else {
            break;
        };
        pairs.push((id, median));
    }
    pairs
}

/// Parses the next `: "value"` after a key.
fn next_string_value(s: &str) -> Option<String> {
    let colon = s.find(':')?;
    let open = s[colon..].find('"')? + colon;
    let close = s[open + 1..].find('"')? + open + 1;
    Some(s[open + 1..close].to_owned())
}

/// Parses the next `: <number>` after a key.
fn next_number_value(s: &str) -> Option<f64> {
    let colon = s.find(':')?;
    let tail = s[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medians(rows: &[(&str, &str, f64)]) -> Medians {
        rows.iter()
            .map(|(f, i, m)| ((f.to_string(), i.to_string()), *m))
            .collect()
    }

    #[test]
    fn parses_the_emitted_schema() {
        let json = r#"{
  "group": "micro/selftest",
  "samples_requested": 20,
  "benches": [
    {"id": "a", "mean_ns": 10.0, "median_ns": 9.5, "min_ns": 9.0, "max_ns": 11.0, "stddev_ns": 0.5, "samples": 20, "iters_per_sample": 100},
    {"id": "b", "mean_ns": 20.0, "median_ns": 19.5, "min_ns": 19.0, "max_ns": 21.0, "stddev_ns": 0.5, "samples": 20, "iters_per_sample": 100}
  ]
}"#;
        let pairs = parse_medians(json);
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], ("a".to_string(), 9.5));
        assert_eq!(pairs[1], ("b".to_string(), 19.5));
    }

    #[test]
    fn classifies_ok_improved_regressed() {
        let base = medians(&[
            ("f", "ok", 100.0),
            ("f", "fast", 100.0),
            ("f", "slow", 100.0),
        ]);
        let cand = medians(&[
            ("f", "ok", 105.0),
            ("f", "fast", 50.0),
            ("f", "slow", 150.0),
        ]);
        let r = diff_medians(&base, &cand, 0.10);
        let verdict = |id: &str| r.entries.iter().find(|e| e.id == id).unwrap().verdict;
        assert_eq!(verdict("ok"), Verdict::Ok);
        assert_eq!(verdict("fast"), Verdict::Improved);
        assert_eq!(verdict("slow"), Verdict::Regressed);
        assert_eq!(r.compared(), 3);
        assert_eq!(r.regressions(), 1);
        assert!(!r.passes());
    }

    /// The policy this PR pins: a bench id (or whole group file) present
    /// only in the fresh output is "new, skipped (reported)" — never an
    /// error — so adding a bench like `micro/lp_prune` needs no two-step
    /// baseline dance.
    #[test]
    fn new_benches_are_reported_but_never_fatal() {
        let base = medians(&[("BENCH_micro_components", "cycle100", 100.0)]);
        let cand = medians(&[
            ("BENCH_micro_components", "cycle100", 100.0),
            ("BENCH_micro_components", "fresh_id", 42.0),
            ("BENCH_micro_lp_prune", "grid4x4_k3_prefiltered", 7.0),
        ]);
        let r = diff_medians(&base, &cand, 0.10);
        assert_eq!(r.new_benches(), 2);
        assert_eq!(r.compared(), 1);
        assert!(r.passes(), "new benches must not fail the gate");
        let fresh = r
            .entries
            .iter()
            .find(|e| e.id == "grid4x4_k3_prefiltered")
            .unwrap();
        assert_eq!(fresh.verdict, Verdict::New);
        assert_eq!(fresh.baseline_ns, None);
        assert_eq!(fresh.ratio(), None);
    }

    #[test]
    fn retired_benches_are_reported_but_never_fatal() {
        let base = medians(&[("f", "kept", 10.0), ("f", "retired", 10.0)]);
        let cand = medians(&[("f", "kept", 10.0)]);
        let r = diff_medians(&base, &cand, 0.10);
        assert_eq!(r.missing_benches(), 1);
        assert!(r.passes());
    }

    #[test]
    fn zero_baseline_never_divides() {
        let base = medians(&[("f", "z", 0.0)]);
        let cand = medians(&[("f", "z", 5.0)]);
        let r = diff_medians(&base, &cand, 0.10);
        assert_eq!(r.entries[0].verdict, Verdict::Ok);
        assert_eq!(r.entries[0].ratio(), Some(1.0));
    }

    #[test]
    fn threshold_is_relative() {
        let base = medians(&[("f", "x", 100.0)]);
        let cand = medians(&[("f", "x", 149.0)]);
        assert!(diff_medians(&base, &cand, 0.50).passes());
        assert!(!diff_medians(&base, &cand, 0.10).passes());
    }

    #[test]
    fn malformed_json_yields_no_pairs() {
        assert!(parse_medians("not json at all").is_empty());
        assert!(parse_medians("{\"id\": \"x\"}").is_empty()); // no median
    }
}
