//! Criterion benchmark suite for the workspace — see `benches/`.
//!
//! This crate intentionally contains no library code; it exists to host the
//! Criterion bench targets that regenerate every table and figure of the
//! paper at micro/meso scale.
