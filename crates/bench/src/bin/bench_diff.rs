//! Benchmark-trajectory gate: diffs `BENCH_*.json` medians between two
//! runs and fails on regressions.
//!
//! The vendored criterion writes one `BENCH_<group>.json` per benchmark
//! group (schema in `BENCHMARKS.md`). The repository commits the previous
//! run's files at the root, so the perf trajectory is captured run over
//! run; this tool is the CI step that compares a fresh run against that
//! baseline:
//!
//! ```sh
//! cargo run --release -p bench --bin bench_diff -- <baseline_dir> <candidate_dir> [threshold]
//! ```
//!
//! A bench regresses when `candidate_median > baseline_median × (1 + t)`
//! with threshold `t` (default 0.10, overridable by the third argument or
//! `BENCH_DIFF_THRESHOLD`). Any regression exits non-zero. Benches or
//! files present on only one side are reported but never fatal, so groups
//! can be added and retired freely.
//!
//! The parser is a minimal scanner over the schema this workspace itself
//! emits — `"id"`/`"median_ns"` pairs in order — deliberately free of
//! JSON-crate dependencies (the container has no crates.io access).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// `(file stem, bench id) → median_ns` for every BENCH_*.json in a dir.
type Medians = BTreeMap<(String, String), f64>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_dir, candidate_dir) = match (args.first(), args.get(1)) {
        (Some(b), Some(c)) => (PathBuf::from(b), PathBuf::from(c)),
        _ => {
            eprintln!("usage: bench_diff <baseline_dir> <candidate_dir> [threshold]");
            return ExitCode::from(2);
        }
    };
    let threshold: f64 = args
        .get(2)
        .cloned()
        .or_else(|| std::env::var("BENCH_DIFF_THRESHOLD").ok())
        .map(|s| s.parse().expect("threshold must be a number like 0.10"))
        .unwrap_or(0.10);

    let baseline = collect_medians(&baseline_dir);
    let candidate = collect_medians(&candidate_dir);
    if baseline.is_empty() {
        eprintln!(
            "bench_diff: no BENCH_*.json under {} — nothing to gate",
            baseline_dir.display()
        );
        return ExitCode::SUCCESS;
    }
    if candidate.is_empty() {
        eprintln!(
            "bench_diff: no BENCH_*.json under {} — did the bench run write JSON?",
            candidate_dir.display()
        );
        return ExitCode::from(2);
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for ((file, id), base) in &baseline {
        let Some(cand) = candidate.get(&(file.clone(), id.clone())) else {
            println!("  MISSING  {file}:{id} (baseline {base:.1} ns; not in candidate run)");
            continue;
        };
        compared += 1;
        let ratio = if *base > 0.0 { cand / base } else { 1.0 };
        let verdict = if ratio > 1.0 + threshold {
            regressions += 1;
            "REGRESSED"
        } else if ratio < 1.0 - threshold {
            "improved"
        } else {
            "ok"
        };
        println!("  {verdict:>9}  {file}:{id}  {base:.1} ns -> {cand:.1} ns  ({ratio:.2}x)");
    }
    for (file, id) in candidate.keys() {
        if !baseline.contains_key(&(file.clone(), id.clone())) {
            println!("  NEW      {file}:{id} (no baseline yet)");
        }
    }

    println!(
        "bench_diff: {compared} benches compared, {regressions} regressed \
         (threshold {:.0}%)",
        threshold * 100.0
    );
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn collect_medians(dir: &Path) -> Medians {
    let mut out = Medians::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let stem = name.trim_end_matches(".json").to_owned();
        for (id, median) in parse_medians(&text) {
            out.insert((stem.clone(), id), median);
        }
    }
    out
}

/// Extracts `(id, median_ns)` pairs from one BENCH_*.json in emission
/// order. Relies only on the schema the vendored criterion writes: each
/// bench object contains `"id": "<string>"` followed by
/// `"median_ns": <number>`.
fn parse_medians(text: &str) -> Vec<(String, f64)> {
    let mut pairs = Vec::new();
    let mut rest = text;
    while let Some(idx) = rest.find("\"id\"") {
        rest = &rest[idx + 4..];
        let Some(id) = next_string_value(rest) else {
            break;
        };
        let Some(midx) = rest.find("\"median_ns\"") else {
            break;
        };
        let after = &rest[midx + 11..];
        let Some(median) = next_number_value(after) else {
            break;
        };
        pairs.push((id, median));
    }
    pairs
}

/// Parses the next `: "value"` after a key.
fn next_string_value(s: &str) -> Option<String> {
    let colon = s.find(':')?;
    let open = s[colon..].find('"')? + colon;
    let close = s[open + 1..].find('"')? + open + 1;
    Some(s[open + 1..close].to_owned())
}

/// Parses the next `: <number>` after a key.
fn next_number_value(s: &str) -> Option<f64> {
    let colon = s.find(':')?;
    let tail = s[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}
