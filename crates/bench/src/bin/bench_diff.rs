//! Benchmark-trajectory gate: diffs `BENCH_*.json` medians between two
//! runs and fails on regressions.
//!
//! The vendored criterion writes one `BENCH_<group>.json` per benchmark
//! group (schema in `BENCHMARKS.md`). The repository commits the previous
//! run's files at the root, so the perf trajectory is captured run over
//! run; this tool is the CI step that compares a fresh run against that
//! baseline:
//!
//! ```sh
//! cargo run --release -p bench --bin bench_diff -- <baseline_dir> <candidate_dir> [threshold]
//! ```
//!
//! A bench regresses when `candidate_median > baseline_median × (1 + t)`
//! with threshold `t` (default 0.10, overridable by the third argument or
//! `BENCH_DIFF_THRESHOLD`). Any regression exits non-zero. A bench
//! present only in the fresh output is **new — skipped (reported)** and a
//! bench present only in the baseline is retired — likewise reported,
//! never fatal — so PRs can add or retire benches without a two-step
//! baseline dance. The comparison semantics (and that policy) live in
//! [`bench::diff_medians`], where they are unit-tested; this binary only
//! does I/O and exit codes.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bench::{diff_medians, parse_medians, Medians, Verdict};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_dir, candidate_dir) = match (args.first(), args.get(1)) {
        (Some(b), Some(c)) => (PathBuf::from(b), PathBuf::from(c)),
        _ => {
            eprintln!("usage: bench_diff <baseline_dir> <candidate_dir> [threshold]");
            return ExitCode::from(2);
        }
    };
    let threshold: f64 = args
        .get(2)
        .cloned()
        .or_else(|| std::env::var("BENCH_DIFF_THRESHOLD").ok())
        .map(|s| s.parse().expect("threshold must be a number like 0.10"))
        .unwrap_or(0.10);

    let baseline = collect_medians(&baseline_dir);
    let candidate = collect_medians(&candidate_dir);
    if baseline.is_empty() {
        eprintln!(
            "bench_diff: no BENCH_*.json under {} — nothing to gate",
            baseline_dir.display()
        );
        return ExitCode::SUCCESS;
    }
    if candidate.is_empty() {
        eprintln!(
            "bench_diff: no BENCH_*.json under {} — did the bench run write JSON?",
            candidate_dir.display()
        );
        return ExitCode::from(2);
    }

    let report = diff_medians(&baseline, &candidate, threshold);
    for e in &report.entries {
        match e.verdict {
            Verdict::New => println!(
                "  NEW      {}:{} ({:.1} ns; no baseline yet — skipped)",
                e.file,
                e.id,
                e.candidate_ns.unwrap_or(0.0)
            ),
            Verdict::Missing => println!(
                "  MISSING  {}:{} (baseline {:.1} ns; not in candidate run — skipped)",
                e.file,
                e.id,
                e.baseline_ns.unwrap_or(0.0)
            ),
            v => {
                let label = match v {
                    Verdict::Regressed => "REGRESSED",
                    Verdict::Improved => "improved",
                    _ => "ok",
                };
                println!(
                    "  {label:>9}  {}:{}  {:.1} ns -> {:.1} ns  ({:.2}x)",
                    e.file,
                    e.id,
                    e.baseline_ns.unwrap_or(0.0),
                    e.candidate_ns.unwrap_or(0.0),
                    e.ratio().unwrap_or(1.0)
                );
            }
        }
    }

    println!(
        "bench_diff: {} benches compared, {} regressed, {} new (skipped), \
         {} retired (skipped) (threshold {:.0}%)",
        report.compared(),
        report.regressions(),
        report.new_benches(),
        report.missing_benches(),
        threshold * 100.0
    );
    if report.passes() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn collect_medians(dir: &Path) -> Medians {
    let mut out = Medians::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let stem = name.trim_end_matches(".json").to_owned();
        for (id, median) in parse_medians(&text) {
            out.insert((stem.clone(), id), median);
        }
    }
    out
}
