//! Deterministic hypergraph families.
//!
//! Structured families (cycles, grids, chains, stars, snowflakes, cliques)
//! have known or well-understood hypertree width; random families model the
//! CQ/CSP mix of HyperBench. Everything is seeded and reproducible.

use hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The cycle `C_n` with binary edges `{i, i+1 mod n}`; `hw = 2` for
/// `n ≥ 3` (`n = 10` is the paper's Appendix B example).
pub fn cycle(n: u32) -> Hypergraph {
    assert!(n >= 3);
    let edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
    Hypergraph::from_edge_lists(&edges)
}

/// A path with `m` binary edges; acyclic (`hw = 1`).
pub fn path(m: u32) -> Hypergraph {
    assert!(m >= 1);
    let edges: Vec<Vec<u32>> = (0..m).map(|i| vec![i, i + 1]).collect();
    Hypergraph::from_edge_lists(&edges)
}

/// A star with `m` binary edges around a hub; acyclic (`hw = 1`).
pub fn star(m: u32) -> Hypergraph {
    assert!(m >= 1);
    let edges: Vec<Vec<u32>> = (1..=m).map(|i| vec![0, i]).collect();
    Hypergraph::from_edge_lists(&edges)
}

/// A snowflake/star-schema query: a fact relation of arity `dims` joined
/// to `dims` dimension relations, each with `leaf` private attributes.
/// Acyclic (`hw = 1`) — the classic data-warehouse CQ shape.
pub fn snowflake(dims: u32, leaf: u32) -> Hypergraph {
    assert!(dims >= 1);
    let mut edges = Vec::new();
    // Fact table over join keys 0..dims.
    edges.push((0..dims).collect::<Vec<u32>>());
    let mut next = dims;
    for d in 0..dims {
        let mut dim = vec![d];
        for _ in 0..leaf {
            dim.push(next);
            next += 1;
        }
        edges.push(dim);
    }
    Hypergraph::from_edge_lists(&edges)
}

/// A chain CQ: `m` relations of arity `a`, adjacent relations sharing one
/// variable. Acyclic (`hw = 1`).
pub fn chain(m: u32, a: u32) -> Hypergraph {
    assert!(m >= 1 && a >= 2);
    let mut edges = Vec::new();
    let mut start = 0u32;
    for _ in 0..m {
        let edge: Vec<u32> = (start..start + a).collect();
        edges.push(edge);
        start += a - 1; // share last variable with the next relation
    }
    Hypergraph::from_edge_lists(&edges)
}

/// A cycle of length `n` with `chords` extra chord edges; cyclic with
/// small width (2–3) — the "slightly cyclic CQ" shape common in practice.
pub fn chorded_cycle(n: u32, chords: u32, seed: u64) -> Hypergraph {
    assert!(n >= 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
    for _ in 0..chords {
        let a = rng.random_range(0..n);
        let off = rng.random_range(2..n - 1);
        let b = (a + off) % n;
        edges.push(vec![a.min(b), a.max(b)]);
    }
    Hypergraph::from_edge_lists(&edges)
}

/// The `rows × cols` grid graph with binary edges. Treewidth is
/// `min(rows, cols)`, so the hypertree width grows with the smaller side —
/// a standard scalable-width CSP family.
pub fn grid(rows: u32, cols: u32) -> Hypergraph {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let v = |r: u32, c: u32| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(vec![v(r, c), v(r, c + 1)]);
            }
            if r + 1 < rows {
                edges.push(vec![v(r, c), v(r + 1, c)]);
            }
        }
    }
    Hypergraph::from_edge_lists(&edges)
}

/// The clique `K_q` as binary edges: `hw = ⌈q/2⌉`, i.e. arbitrarily high
/// width — HyperBench's "known hard by graph-theoretic arguments" class.
pub fn clique(q: u32) -> Hypergraph {
    assert!(q >= 3);
    let mut edges = Vec::new();
    for a in 0..q {
        for b in a + 1..q {
            edges.push(vec![a, b]);
        }
    }
    Hypergraph::from_edge_lists(&edges)
}

/// A random CSP-style hypergraph: `m` edges over `n` vertices with arity
/// drawn from `2..=max_arity`. Connectivity is not enforced.
pub fn random_csp(seed: u64, n: u32, m: u32, max_arity: u32) -> Hypergraph {
    assert!(n >= 2 && max_arity >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let arity = rng.random_range(2..=max_arity.min(n));
        let mut edge = Vec::with_capacity(arity as usize);
        while edge.len() < arity as usize {
            let v = rng.random_range(0..n);
            if !edge.contains(&v) {
                edge.push(v);
            }
        }
        edge.sort_unstable();
        edges.push(edge);
    }
    Hypergraph::from_edge_lists(&edges)
}

/// The `nx × ny × nz` solid grid with binary edges along all three axes.
/// Treewidth grows with the smaller cross-section (`≈ min` of the three
/// pairwise products), so thin-but-long boxes stay tractable while the
/// vertex count reaches into the hundreds — the wide-instance analogue of
/// [`grid`].
pub fn grid3d(nx: u32, ny: u32, nz: u32) -> Hypergraph {
    assert!(nx >= 1 && ny >= 1 && nz >= 1 && nx * ny * nz >= 2);
    let v = |x: u32, y: u32, z: u32| (z * ny + y) * nx + x;
    let mut edges = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push(vec![v(x, y, z), v(x + 1, y, z)]);
                }
                if y + 1 < ny {
                    edges.push(vec![v(x, y, z), v(x, y + 1, z)]);
                }
                if z + 1 < nz {
                    edges.push(vec![v(x, y, z), v(x, y, z + 1)]);
                }
            }
        }
    }
    Hypergraph::from_edge_lists(&edges)
}

/// The `dim`-dimensional hypercube graph `Q_dim`: `2^dim` vertices,
/// `dim · 2^(dim-1)` binary edges. Width grows roughly like
/// `2^dim / √dim`, making it a dense high-width stressor whose bitsets
/// span many words.
pub fn hypercube(dim: u32) -> Hypergraph {
    assert!((1..=16).contains(&dim));
    let n = 1u32 << dim;
    let mut edges = Vec::new();
    for v in 0..n {
        for b in 0..dim {
            let w = v ^ (1 << b);
            if v < w {
                edges.push(vec![v, w]);
            }
        }
    }
    Hypergraph::from_edge_lists(&edges)
}

/// A band CQ: `m` relations of arity `a`, adjacent relations sharing
/// `overlap` variables — the wide-arity generalisation of [`chain`].
/// Acyclic (`hw = 1`), with `m·(a−overlap) + overlap` vertices.
pub fn band_cq(m: u32, a: u32, overlap: u32) -> Hypergraph {
    assert!(m >= 1 && a >= 2 && overlap >= 1 && overlap < a);
    let step = a - overlap;
    let edges: Vec<Vec<u32>> = (0..m).map(|i| (i * step..i * step + a).collect()).collect();
    Hypergraph::from_edge_lists(&edges)
}

/// A closed band: like [`band_cq`] but the last relation wraps around to
/// share `overlap` variables with the first. Cyclic for `m ≥ 3`, the
/// wide-arity generalisation of [`cycle`] (width stays small — a pair of
/// opposite relations separates the band).
pub fn band_cycle(m: u32, a: u32, overlap: u32) -> Hypergraph {
    assert!(m >= 3 && a >= 2 && overlap >= 1 && overlap < a);
    let step = a - overlap;
    let n = m * step;
    assert!(a <= n, "arity exceeds the wrapped vertex count");
    let edges: Vec<Vec<u32>> = (0..m)
        .map(|i| (0..a).map(|j| (i * step + j) % n).collect())
        .collect();
    Hypergraph::from_edge_lists(&edges)
}

/// λp-spill stressor (promoted from the differential suites' proptest
/// shapes): `cores` wide hub relations partition a hub set, and `m` spoke
/// relations each pick `picks` hub vertices — straddling core boundaries —
/// plus `tail` private vertices. Parent candidates routinely cover
/// vertices outside `⋃λc` (the spokes' private tails), which is exactly
/// the `bad`-set spill path the λp pre-filter has to count.
pub fn spill(
    seed: u64,
    cores: u32,
    hubs_per_core: u32,
    m: u32,
    picks: u32,
    tail: u32,
) -> Hypergraph {
    assert!(cores >= 1 && hubs_per_core >= 1 && picks >= 1);
    let hubs = cores * hubs_per_core;
    assert!(picks <= hubs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Vec<u32>> = (0..cores)
        .map(|c| (c * hubs_per_core..(c + 1) * hubs_per_core).collect())
        .collect();
    let mut next = hubs;
    for _ in 0..m {
        let mut e: Vec<u32> = Vec::with_capacity((picks + tail) as usize);
        while e.len() < picks as usize {
            let h = rng.random_range(0..hubs);
            if !e.contains(&h) {
                e.push(h);
            }
        }
        for _ in 0..tail {
            e.push(next);
            next += 1;
        }
        edges.push(e);
    }
    Hypergraph::from_edge_lists(&edges)
}

/// Overlap-heavy stressor: `m` relations of arity `a` over `n` vertices,
/// each biased to include about half of a `kernel`-sized shared core, so
/// pairwise intersections are large. Exercises the fused
/// intersect/union/count kernels on many-word sets where naive chained
/// passes are most expensive.
pub fn overlap_heavy(seed: u64, n: u32, m: u32, a: u32, kernel: u32) -> Hypergraph {
    assert!(n >= 2 && a >= 2 && kernel <= n && a <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let mut e: Vec<u32> = Vec::with_capacity(a as usize);
        // Roughly half the kernel, then random fill from the whole pool.
        for v in 0..kernel {
            if e.len() + 1 < a as usize && rng.random_range(0..2u32) == 0 {
                e.push(v);
            }
        }
        while e.len() < a as usize {
            let v = rng.random_range(0..n);
            if !e.contains(&v) {
                e.push(v);
            }
        }
        e.sort_unstable();
        edges.push(e);
    }
    Hypergraph::from_edge_lists(&edges)
}

/// The disjoint union of `parts` on renamed (offset) vertices:
/// `hw = max` over the parts, and the union splits into one
/// `[λc]`-component per part at the root — the canonical multi-component
/// workload for the engines' sibling-subproblem parallelism.
pub fn disjoint_union(parts: &[Hypergraph]) -> Hypergraph {
    assert!(!parts.is_empty());
    let mut edges: Vec<Vec<u32>> = Vec::new();
    let mut offset = 0u32;
    for hg in parts {
        for e in hg.edge_ids() {
            edges.push(hg.edge(e).iter().map(|v| v.0 + offset).collect());
        }
        offset += hg.num_vertices() as u32;
    }
    Hypergraph::from_edge_lists(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::is_acyclic;

    #[test]
    fn acyclic_families_are_acyclic() {
        assert!(is_acyclic(&path(10)));
        assert!(is_acyclic(&star(8)));
        assert!(is_acyclic(&snowflake(4, 3)));
        assert!(is_acyclic(&chain(6, 3)));
    }

    #[test]
    fn cyclic_families_are_cyclic() {
        assert!(!is_acyclic(&cycle(10)));
        assert!(!is_acyclic(&grid(3, 3)));
        assert!(!is_acyclic(&clique(5)));
    }

    #[test]
    fn sizes_are_as_requested() {
        assert_eq!(cycle(10).num_edges(), 10);
        assert_eq!(path(7).num_edges(), 7);
        assert_eq!(star(9).num_edges(), 9);
        assert_eq!(snowflake(4, 2).num_edges(), 5);
        assert_eq!(grid(3, 4).num_edges(), 17);
        assert_eq!(clique(6).num_edges(), 15);
        assert_eq!(random_csp(1, 20, 30, 4).num_edges(), 30);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_csp(42, 20, 25, 5);
        let b = random_csp(42, 20, 25, 5);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edge_ids() {
            assert_eq!(a.edge(e), b.edge(e));
        }
        let c = chorded_cycle(12, 3, 7);
        let d = chorded_cycle(12, 3, 7);
        for e in c.edge_ids() {
            assert_eq!(c.edge(e), d.edge(e));
        }
    }

    #[test]
    fn disjoint_union_offsets_vertices() {
        let h = disjoint_union(&[cycle(4), path(2)]);
        assert_eq!(h.num_edges(), 6);
        assert_eq!(h.num_vertices(), 7);
        // No edge straddles the part boundary.
        for e in h.edge_ids() {
            let left = h.edge(e).iter().all(|v| v.0 < 4);
            let right = h.edge(e).iter().all(|v| v.0 >= 4);
            assert!(left || right, "edge straddles the union boundary");
        }
    }

    #[test]
    fn wide_families_have_expected_shapes() {
        // 3D grid: vertex count is the product, edge count is the sum of
        // axis-aligned links.
        let (nx, ny, nz) = (2u32, 3, 4);
        let g = grid3d(nx, ny, nz);
        assert_eq!(g.num_vertices(), 24);
        assert_eq!(
            g.num_edges(),
            ((nx - 1) * ny * nz + nx * (ny - 1) * nz + nx * ny * (nz - 1)) as usize
        );
        assert!(!is_acyclic(&g));

        let q = hypercube(4);
        assert_eq!(q.num_vertices(), 16);
        assert_eq!(q.num_edges(), 32);
        assert!(!is_acyclic(&q));

        // Band CQ: acyclic, wide, adjacent relations share `overlap` vars.
        let b = band_cq(50, 6, 2);
        assert_eq!(b.num_vertices(), 50 * 4 + 2);
        assert!(is_acyclic(&b));
        for i in 0..49u32 {
            let x = b.edge(hypergraph::Edge(i));
            let y = b.edge(hypergraph::Edge(i + 1));
            assert_eq!(x.intersection_len(y), 2);
        }

        // Closed band: cyclic, wraps to exactly `m·(a−overlap)` vertices.
        let c = band_cycle(40, 6, 2);
        assert_eq!(c.num_vertices(), 160);
        assert!(!is_acyclic(&c));
    }

    #[test]
    fn adversarial_generators_are_wide_and_deterministic() {
        let s1 = spill(9, 2, 8, 40, 3, 6);
        let s2 = spill(9, 2, 8, 40, 3, 6);
        assert_eq!(s1.num_vertices(), 16 + 40 * 6);
        assert_eq!(s1.num_edges(), 2 + 40);
        for e in s1.edge_ids() {
            assert_eq!(s1.edge(e), s2.edge(e));
        }

        let o1 = overlap_heavy(5, 300, 24, 20, 40);
        let o2 = overlap_heavy(5, 300, 24, 20, 40);
        assert_eq!(o1.num_edges(), 24);
        assert!(o1.num_vertices() <= 300);
        for e in o1.edge_ids() {
            assert_eq!(o1.edge(e).len(), 20);
            assert_eq!(o1.edge(e), o2.edge(e));
        }
    }

    #[test]
    fn chain_shares_exactly_one_variable() {
        let h = chain(5, 3);
        assert_eq!(h.num_edges(), 5);
        // Adjacent edges overlap in exactly 1 vertex.
        for i in 0..4u32 {
            let a = h.edge(hypergraph::Edge(i));
            let b = h.edge(hypergraph::Edge(i + 1));
            assert_eq!(a.intersection_len(b), 1);
        }
    }
}
