//! Deterministic hypergraph families.
//!
//! Structured families (cycles, grids, chains, stars, snowflakes, cliques)
//! have known or well-understood hypertree width; random families model the
//! CQ/CSP mix of HyperBench. Everything is seeded and reproducible.

use hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The cycle `C_n` with binary edges `{i, i+1 mod n}`; `hw = 2` for
/// `n ≥ 3` (`n = 10` is the paper's Appendix B example).
pub fn cycle(n: u32) -> Hypergraph {
    assert!(n >= 3);
    let edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
    Hypergraph::from_edge_lists(&edges)
}

/// A path with `m` binary edges; acyclic (`hw = 1`).
pub fn path(m: u32) -> Hypergraph {
    assert!(m >= 1);
    let edges: Vec<Vec<u32>> = (0..m).map(|i| vec![i, i + 1]).collect();
    Hypergraph::from_edge_lists(&edges)
}

/// A star with `m` binary edges around a hub; acyclic (`hw = 1`).
pub fn star(m: u32) -> Hypergraph {
    assert!(m >= 1);
    let edges: Vec<Vec<u32>> = (1..=m).map(|i| vec![0, i]).collect();
    Hypergraph::from_edge_lists(&edges)
}

/// A snowflake/star-schema query: a fact relation of arity `dims` joined
/// to `dims` dimension relations, each with `leaf` private attributes.
/// Acyclic (`hw = 1`) — the classic data-warehouse CQ shape.
pub fn snowflake(dims: u32, leaf: u32) -> Hypergraph {
    assert!(dims >= 1);
    let mut edges = Vec::new();
    // Fact table over join keys 0..dims.
    edges.push((0..dims).collect::<Vec<u32>>());
    let mut next = dims;
    for d in 0..dims {
        let mut dim = vec![d];
        for _ in 0..leaf {
            dim.push(next);
            next += 1;
        }
        edges.push(dim);
    }
    Hypergraph::from_edge_lists(&edges)
}

/// A chain CQ: `m` relations of arity `a`, adjacent relations sharing one
/// variable. Acyclic (`hw = 1`).
pub fn chain(m: u32, a: u32) -> Hypergraph {
    assert!(m >= 1 && a >= 2);
    let mut edges = Vec::new();
    let mut start = 0u32;
    for _ in 0..m {
        let edge: Vec<u32> = (start..start + a).collect();
        edges.push(edge);
        start += a - 1; // share last variable with the next relation
    }
    Hypergraph::from_edge_lists(&edges)
}

/// A cycle of length `n` with `chords` extra chord edges; cyclic with
/// small width (2–3) — the "slightly cyclic CQ" shape common in practice.
pub fn chorded_cycle(n: u32, chords: u32, seed: u64) -> Hypergraph {
    assert!(n >= 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
    for _ in 0..chords {
        let a = rng.random_range(0..n);
        let off = rng.random_range(2..n - 1);
        let b = (a + off) % n;
        edges.push(vec![a.min(b), a.max(b)]);
    }
    Hypergraph::from_edge_lists(&edges)
}

/// The `rows × cols` grid graph with binary edges. Treewidth is
/// `min(rows, cols)`, so the hypertree width grows with the smaller side —
/// a standard scalable-width CSP family.
pub fn grid(rows: u32, cols: u32) -> Hypergraph {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let v = |r: u32, c: u32| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(vec![v(r, c), v(r, c + 1)]);
            }
            if r + 1 < rows {
                edges.push(vec![v(r, c), v(r + 1, c)]);
            }
        }
    }
    Hypergraph::from_edge_lists(&edges)
}

/// The clique `K_q` as binary edges: `hw = ⌈q/2⌉`, i.e. arbitrarily high
/// width — HyperBench's "known hard by graph-theoretic arguments" class.
pub fn clique(q: u32) -> Hypergraph {
    assert!(q >= 3);
    let mut edges = Vec::new();
    for a in 0..q {
        for b in a + 1..q {
            edges.push(vec![a, b]);
        }
    }
    Hypergraph::from_edge_lists(&edges)
}

/// A random CSP-style hypergraph: `m` edges over `n` vertices with arity
/// drawn from `2..=max_arity`. Connectivity is not enforced.
pub fn random_csp(seed: u64, n: u32, m: u32, max_arity: u32) -> Hypergraph {
    assert!(n >= 2 && max_arity >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let arity = rng.random_range(2..=max_arity.min(n));
        let mut edge = Vec::with_capacity(arity as usize);
        while edge.len() < arity as usize {
            let v = rng.random_range(0..n);
            if !edge.contains(&v) {
                edge.push(v);
            }
        }
        edge.sort_unstable();
        edges.push(edge);
    }
    Hypergraph::from_edge_lists(&edges)
}

/// The disjoint union of `parts` on renamed (offset) vertices:
/// `hw = max` over the parts, and the union splits into one
/// `[λc]`-component per part at the root — the canonical multi-component
/// workload for the engines' sibling-subproblem parallelism.
pub fn disjoint_union(parts: &[Hypergraph]) -> Hypergraph {
    assert!(!parts.is_empty());
    let mut edges: Vec<Vec<u32>> = Vec::new();
    let mut offset = 0u32;
    for hg in parts {
        for e in hg.edge_ids() {
            edges.push(hg.edge(e).iter().map(|v| v.0 + offset).collect());
        }
        offset += hg.num_vertices() as u32;
    }
    Hypergraph::from_edge_lists(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::is_acyclic;

    #[test]
    fn acyclic_families_are_acyclic() {
        assert!(is_acyclic(&path(10)));
        assert!(is_acyclic(&star(8)));
        assert!(is_acyclic(&snowflake(4, 3)));
        assert!(is_acyclic(&chain(6, 3)));
    }

    #[test]
    fn cyclic_families_are_cyclic() {
        assert!(!is_acyclic(&cycle(10)));
        assert!(!is_acyclic(&grid(3, 3)));
        assert!(!is_acyclic(&clique(5)));
    }

    #[test]
    fn sizes_are_as_requested() {
        assert_eq!(cycle(10).num_edges(), 10);
        assert_eq!(path(7).num_edges(), 7);
        assert_eq!(star(9).num_edges(), 9);
        assert_eq!(snowflake(4, 2).num_edges(), 5);
        assert_eq!(grid(3, 4).num_edges(), 17);
        assert_eq!(clique(6).num_edges(), 15);
        assert_eq!(random_csp(1, 20, 30, 4).num_edges(), 30);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_csp(42, 20, 25, 5);
        let b = random_csp(42, 20, 25, 5);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edge_ids() {
            assert_eq!(a.edge(e), b.edge(e));
        }
        let c = chorded_cycle(12, 3, 7);
        let d = chorded_cycle(12, 3, 7);
        for e in c.edge_ids() {
            assert_eq!(c.edge(e), d.edge(e));
        }
    }

    #[test]
    fn disjoint_union_offsets_vertices() {
        let h = disjoint_union(&[cycle(4), path(2)]);
        assert_eq!(h.num_edges(), 6);
        assert_eq!(h.num_vertices(), 7);
        // No edge straddles the part boundary.
        for e in h.edge_ids() {
            let left = h.edge(e).iter().all(|v| v.0 < 4);
            let right = h.edge(e).iter().all(|v| v.0 >= 4);
            assert!(left || right, "edge straddles the union boundary");
        }
    }

    #[test]
    fn chain_shares_exactly_one_variable() {
        let h = chain(5, 3);
        assert_eq!(h.num_edges(), 5);
        // Adjacent edges overlap in exactly 1 vertex.
        for i in 0..4u32 {
            let a = h.edge(hypergraph::Edge(i));
            let b = h.edge(hypergraph::Edge(i + 1));
            assert_eq!(a.intersection_len(b), 1);
        }
    }
}
