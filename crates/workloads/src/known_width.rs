//! Ground-truth instances: hypergraphs generated *from* a random HD.
//!
//! The generator first draws a random decomposition tree and invents the
//! edges of each node's λ-label; the hypergraph is exactly the set of
//! invented edges. Because every bag is defined as `χ(u) = ⋃λ(u)`, the
//! special condition holds trivially and the generated tree is a certified
//! HD, so `hw ≤ k` by construction. Child bags draw their shared vertices
//! only from the parent's bag, which yields the connectedness condition by
//! induction.
//!
//! These instances give the test suite exact upper bounds to verify
//! solvers against, and give the corpus (Appendix-D-style `HB_large`) a
//! supply of large instances with known moderate width.

use decomp::Decomposition;
use hypergraph::{Edge, Hypergraph, Vertex, VertexSet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters for [`known_width`].
#[derive(Clone, Copy, Debug)]
pub struct KnownWidthConfig {
    /// RNG seed.
    pub seed: u64,
    /// Exact number of edges to generate.
    pub num_edges: usize,
    /// Width bound: every node carries between 1 and `k` edges.
    pub k: usize,
    /// Maximum arity of generated edges.
    pub max_arity: usize,
    /// Probability that a parent-bag vertex is offered to a child edge.
    pub share: f64,
}

impl KnownWidthConfig {
    /// A reasonable default shape for `num_edges` edges at width ≤ `k`.
    pub fn new(seed: u64, num_edges: usize, k: usize) -> Self {
        KnownWidthConfig {
            seed,
            num_edges,
            k,
            max_arity: 4,
            share: 0.5,
        }
    }
}

/// Generates a hypergraph together with a *witness HD* of width ≤ `k`.
///
/// The returned decomposition is a valid HD of the returned hypergraph
/// (checked by the crate tests with the full validator).
pub fn known_width(cfg: KnownWidthConfig) -> (Hypergraph, Decomposition) {
    assert!(cfg.k >= 1 && cfg.num_edges >= 1 && cfg.max_arity >= 2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut edge_lists: Vec<Vec<u32>> = Vec::with_capacity(cfg.num_edges);
    let mut next_vertex: u32 = 0;
    // Per tree node: (edge ids, bag vertices, parent index).
    let mut node_edges: Vec<Vec<u32>> = Vec::new();
    let mut node_bags: Vec<Vec<u32>> = Vec::new();
    let mut node_parent: Vec<Option<usize>> = Vec::new();

    while edge_lists.len() < cfg.num_edges {
        let node = node_edges.len();
        let parent = if node == 0 {
            None
        } else {
            Some(rng.random_range(0..node))
        };

        // Vertices a child may share with its parent.
        let offered: Vec<u32> = match parent {
            None => Vec::new(),
            Some(p) => node_bags[p]
                .iter()
                .copied()
                .filter(|_| rng.random_bool(cfg.share))
                .collect(),
        };

        let budget = cfg.num_edges - edge_lists.len();
        let count = rng.random_range(1..=cfg.k.min(budget));
        let mut bag: Vec<u32> = Vec::new();
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let arity = rng.random_range(2..=cfg.max_arity);
            let mut edge: Vec<u32> = Vec::with_capacity(arity);
            for _ in 0..arity {
                // Mix: offered parent vertices, this node's own vertices
                // (edge overlap within the bag), or fresh ones.
                let roll = rng.random_range(0..10u32);
                let pick = if roll < 3 && !offered.is_empty() {
                    offered[rng.random_range(0..offered.len())]
                } else if roll < 5 && !bag.is_empty() {
                    bag[rng.random_range(0..bag.len())]
                } else {
                    let v = next_vertex;
                    next_vertex += 1;
                    v
                };
                if !edge.contains(&pick) {
                    edge.push(pick);
                }
            }
            if edge.len() < 2 {
                edge.push(next_vertex);
                next_vertex += 1;
            }
            edge.sort_unstable();
            for &v in &edge {
                if !bag.contains(&v) {
                    bag.push(v);
                }
            }
            ids.push(edge_lists.len() as u32);
            edge_lists.push(edge);
        }
        node_edges.push(ids);
        node_bags.push(bag);
        node_parent.push(parent);
    }

    let hg = Hypergraph::from_edge_lists(&edge_lists);
    let n = hg.num_vertices();

    // Materialise the witness decomposition.
    let labels: Vec<(Vec<Edge>, VertexSet)> = node_edges
        .iter()
        .zip(&node_bags)
        .map(|(ids, bag)| {
            let lambda: Vec<Edge> = ids.iter().map(|&i| Edge(i)).collect();
            let chi = VertexSet::from_iter(n, bag.iter().map(|&v| Vertex(v)));
            (lambda, chi)
        })
        .collect();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); node_edges.len()];
    for (i, p) in node_parent.iter().enumerate() {
        if let Some(p) = p {
            children[*p].push(i as u32);
        }
    }
    let witness = Decomposition::from_parts(labels, children, 0);
    (hg, witness)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate_hd_width;

    #[test]
    fn witness_is_a_valid_hd_of_requested_width() {
        for seed in 0..30u64 {
            for k in 1..=4usize {
                let cfg = KnownWidthConfig::new(seed, 20, k);
                let (hg, witness) = known_width(cfg);
                assert_eq!(hg.num_edges(), 20);
                validate_hd_width(&hg, &witness, k)
                    .unwrap_or_else(|e| panic!("seed={seed} k={k}: {e}"));
            }
        }
    }

    #[test]
    fn exact_edge_counts() {
        for m in [1usize, 5, 17, 60, 101] {
            let (hg, _) = known_width(KnownWidthConfig::new(9, m, 3));
            assert_eq!(hg.num_edges(), m);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let (a, _) = known_width(KnownWidthConfig::new(123, 30, 3));
        let (b, _) = known_width(KnownWidthConfig::new(123, 30, 3));
        for e in a.edge_ids() {
            assert_eq!(a.edge(e), b.edge(e));
        }
    }
}
