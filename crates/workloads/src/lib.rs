//! HyperBench-like workload generators.
//!
//! The paper evaluates on HyperBench (3648 CQ/CSP hypergraphs). That corpus
//! is not redistributable here, so this crate deterministically generates a
//! stand-in with the same documented structure — see `DESIGN.md` §5 for the
//! substitution rationale.
//!
//! * [`families`] — structured generators (cycles, grids, chains, stars,
//!   snowflakes, cliques, random CSPs);
//! * [`known_width`](mod@known_width) — hypergraphs generated *from* a random HD, with the
//!   witness decomposition returned for ground truth;
//! * [`corpus`] — the Table-1-shaped corpus and the `HB_large` analogue.

pub mod corpus;
pub mod export;
pub mod families;
pub mod known_width;

pub use corpus::{
    hb_large_like, hyperbench_like, wide_corpus, CorpusConfig, Instance, Origin, SizeBand,
    WideConfig, HYPERBENCH_GROUPS,
};
pub use export::{export_corpus, ExportFormat};
pub use known_width::{known_width, KnownWidthConfig};
