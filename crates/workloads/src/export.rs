//! Corpus export: write generated instances to disk in HyperBench or PACE
//! format, with an index file, so external decomposition tools can be run
//! on exactly the same inputs.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use hypergraph::{write_hyperbench, write_pace};

use crate::corpus::Instance;

/// On-disk format for [`export_corpus`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExportFormat {
    /// HyperBench atom-list files (`.hg`).
    HyperBench,
    /// PACE 2019 `htd` files (`.htd`).
    Pace,
}

/// Writes every instance to `dir` plus an `index.csv` with the metadata
/// (name, origin, edges, vertices, certified width upper bound).
pub fn export_corpus(
    corpus: &[Instance],
    dir: &Path,
    format: ExportFormat,
) -> io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut index = String::from("name,origin,edges,vertices,width_upper\n");
    let mut paths = Vec::with_capacity(corpus.len());
    for inst in corpus {
        let (ext, body) = match format {
            ExportFormat::HyperBench => ("hg", write_hyperbench(&inst.hg)),
            ExportFormat::Pace => ("htd", write_pace(&inst.hg)),
        };
        let path = dir.join(format!("{}.{ext}", inst.name));
        std::fs::write(&path, body)?;
        let _ = writeln!(
            index,
            "{},{},{},{},{}",
            inst.name,
            inst.origin,
            inst.hg.num_edges(),
            inst.hg.num_vertices(),
            inst.width_upper.map(|w| w.to_string()).unwrap_or_default()
        );
        paths.push(path);
    }
    std::fs::write(dir.join("index.csv"), index)?;
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{hyperbench_like, CorpusConfig};
    use hypergraph::{parse_hyperbench, parse_pace};

    fn tiny_corpus() -> Vec<Instance> {
        hyperbench_like(CorpusConfig {
            seed: 5,
            scale: 1.0 / 500.0,
        })
    }

    #[test]
    fn export_roundtrips_hyperbench() {
        let dir = std::env::temp_dir().join("lkd_export_hb_test");
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = tiny_corpus();
        let paths = export_corpus(&corpus, &dir, ExportFormat::HyperBench).unwrap();
        assert_eq!(paths.len(), corpus.len());
        for (path, inst) in paths.iter().zip(&corpus) {
            let text = std::fs::read_to_string(path).unwrap();
            let back = parse_hyperbench(&text).unwrap();
            assert_eq!(back.num_edges(), inst.hg.num_edges(), "{}", inst.name);
        }
        assert!(dir.join("index.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn export_roundtrips_pace() {
        let dir = std::env::temp_dir().join("lkd_export_pace_test");
        let _ = std::fs::remove_dir_all(&dir);
        let corpus = tiny_corpus();
        let paths = export_corpus(&corpus, &dir, ExportFormat::Pace).unwrap();
        for (path, inst) in paths.iter().zip(&corpus) {
            let text = std::fs::read_to_string(path).unwrap();
            let back = parse_pace(&text).unwrap();
            assert_eq!(back.num_edges(), inst.hg.num_edges(), "{}", inst.name);
        }
        let index = std::fs::read_to_string(dir.join("index.csv")).unwrap();
        assert_eq!(index.lines().count(), corpus.len() + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
