//! A HyperBench-shaped benchmark corpus.
//!
//! HyperBench (Fischl et al., JEA 2021) is not redistributable inside this
//! repository, so the harness generates a *deterministic* corpus that
//! mirrors its documented structure: hypergraphs from applications (CQs:
//! chains, stars, snowflakes, mildly cyclic queries) and synthetically
//! generated ones (random CSPs, grids, cliques, bounded-width instances),
//! distributed over the same origin × edge-count groups as Table 1 of the
//! paper and in the same proportions. `scale` shrinks every group count
//! uniformly so the whole evaluation fits in CI-class time budgets.

use hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::families;
use crate::known_width::{known_width, KnownWidthConfig};

/// Where an instance (nominally) comes from, as in Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Origin {
    /// CQ-shaped instances from applications.
    Application,
    /// Synthetically generated CSP instances.
    Synthetic,
}

impl std::fmt::Display for Origin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Origin::Application => write!(f, "Application"),
            Origin::Synthetic => write!(f, "Synthetic"),
        }
    }
}

/// Edge-count bands of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SizeBand {
    /// `|E| ≤ 10`
    UpTo10,
    /// `10 < |E| ≤ 50`
    To50,
    /// `50 < |E| ≤ 75`
    To75,
    /// `75 < |E| ≤ 100`
    To100,
    /// `|E| > 100`
    Over100,
}

impl SizeBand {
    /// Classifies an edge count.
    pub fn of(m: usize) -> SizeBand {
        match m {
            0..=10 => SizeBand::UpTo10,
            11..=50 => SizeBand::To50,
            51..=75 => SizeBand::To75,
            76..=100 => SizeBand::To100,
            _ => SizeBand::Over100,
        }
    }

    /// Display label in the paper's notation.
    pub fn label(self) -> &'static str {
        match self {
            SizeBand::UpTo10 => "|E| <= 10",
            SizeBand::To50 => "10 < |E| <= 50",
            SizeBand::To75 => "50 < |E| <= 75",
            SizeBand::To100 => "75 < |E| <= 100",
            SizeBand::Over100 => "|E| > 100",
        }
    }
}

/// A corpus instance.
pub struct Instance {
    /// Stable, human-readable identifier.
    pub name: String,
    /// Origin group.
    pub origin: Origin,
    /// The hypergraph.
    pub hg: Hypergraph,
    /// A certified upper bound on `hw`, if the generator provides one.
    pub width_upper: Option<usize>,
}

impl Instance {
    /// Edge-count band of this instance.
    pub fn band(&self) -> SizeBand {
        SizeBand::of(self.hg.num_edges())
    }
}

/// Corpus generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct CorpusConfig {
    /// Master seed; same seed ⇒ identical corpus.
    pub seed: u64,
    /// Fraction of HyperBench's group sizes to generate (e.g. `1.0/12.0`
    /// yields ≈ 300 instances with the paper's proportions).
    pub scale: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xB0BA_CAFE,
            scale: 1.0 / 12.0,
        }
    }
}

/// HyperBench group sizes from Table 1: (origin, band, count).
pub const HYPERBENCH_GROUPS: &[(Origin, SizeBand, usize)] = &[
    (Origin::Application, SizeBand::To100, 405),
    (Origin::Application, SizeBand::To75, 514),
    (Origin::Application, SizeBand::To50, 369),
    (Origin::Application, SizeBand::UpTo10, 915),
    (Origin::Synthetic, SizeBand::Over100, 66),
    (Origin::Synthetic, SizeBand::To100, 422),
    (Origin::Synthetic, SizeBand::To75, 215),
    (Origin::Synthetic, SizeBand::To50, 647),
    (Origin::Synthetic, SizeBand::UpTo10, 95),
];

fn band_edge_count(rng: &mut StdRng, band: SizeBand) -> usize {
    match band {
        SizeBand::UpTo10 => rng.random_range(2..=10),
        SizeBand::To50 => rng.random_range(11..=50),
        SizeBand::To75 => rng.random_range(51..=75),
        SizeBand::To100 => rng.random_range(76..=100),
        SizeBand::Over100 => rng.random_range(101..=160),
    }
}

/// Generates the full HyperBench-shaped corpus.
pub fn hyperbench_like(cfg: CorpusConfig) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::new();
    for &(origin, band, full_count) in HYPERBENCH_GROUPS {
        let count = ((full_count as f64 * cfg.scale).round() as usize).max(1);
        for i in 0..count {
            let m = band_edge_count(&mut rng, band);
            let mut inst = match origin {
                Origin::Application => application_instance(&mut rng, i, m),
                Origin::Synthetic => synthetic_instance(&mut rng, i, m),
            };
            // Structured families (grids, cliques, snowflakes) can only hit
            // certain edge counts; when one drifts out of its band, replace
            // it by an exact-size bounded-width instance so the corpus
            // keeps the paper's group proportions.
            if inst.band() != band {
                let seed = rng.random::<u64>();
                let k = match origin {
                    Origin::Application => 1 + (seed % 3) as usize,
                    Origin::Synthetic => 3 + (seed % 4) as usize,
                };
                let (hg, _) = known_width(KnownWidthConfig::new(seed, m, k));
                inst = Instance {
                    name: format!(
                        "{}_bounded_{m:03}e_{i:04}",
                        if origin == Origin::Application {
                            "app"
                        } else {
                            "syn"
                        }
                    ),
                    origin,
                    hg,
                    width_upper: Some(k),
                };
            }
            out.push(inst);
        }
    }
    out
}

fn application_instance(rng: &mut StdRng, i: usize, m: usize) -> Instance {
    let m32 = m as u32;
    let seed = rng.random::<u64>();
    let (kind, hg, width_upper): (&str, Hypergraph, Option<usize>) = match i % 6 {
        0 => ("chain", families::chain(m32, 3), Some(1)),
        1 => ("star", families::star(m32), Some(1)),
        2 if m >= 2 => (
            "snowflake",
            families::snowflake(m32 - 1, 1 + (seed % 3) as u32),
            Some(1),
        ),
        3 if m >= 5 => (
            "cyclic_cq",
            families::chorded_cycle(m32 - m32 / 5, m32 / 5, seed),
            None,
        ),
        4 if m >= 3 => ("cycle_cq", families::cycle(m32), Some(2)),
        _ => {
            let k = 1 + (seed % 3) as usize; // widths 1..3: CQ-like
            let (hg, _) = known_width(KnownWidthConfig::new(seed, m, k));
            ("join_tree", hg, Some(k))
        }
    };
    Instance {
        name: format!("app_{kind}_{m:03}e_{i:04}"),
        origin: Origin::Application,
        hg,
        width_upper,
    }
}

fn synthetic_instance(rng: &mut StdRng, i: usize, m: usize) -> Instance {
    let m32 = m as u32;
    let seed = rng.random::<u64>();
    let (kind, hg, width_upper): (&str, Hypergraph, Option<usize>) = match i % 5 {
        0 => {
            // Random CSP, density tuned to keep width moderate-but-varied.
            let n = (m32 * 2).max(4);
            ("csp", families::random_csp(seed, n, m32, 3), None)
        }
        1 if m >= 4 => {
            // Grid with roughly m edges: m ≈ 2·r·c − r − c.
            let rows = (2..=6u32)
                .rev()
                .find(|r| (m32 + r) / (2 * r).max(1) >= 2)
                .unwrap_or(2);
            let cols = ((m32 + rows) / (2 * rows)).max(2);
            ("grid", families::grid(rows, cols), None)
        }
        2 if m >= 10 => {
            // Clique with q(q−1)/2 ≈ m edges: high width on purpose.
            let q = (1..=20u32).find(|q| q * (q + 1) / 2 >= m32).unwrap_or(20) + 1;
            ("clique", families::clique(q.max(5)), None)
        }
        3 => {
            let k = 3 + (seed % 4) as usize; // widths 3..6
            let (hg, _) = known_width(KnownWidthConfig::new(seed, m, k));
            ("bounded", hg, Some(k))
        }
        _ => {
            // Dense random CSP: fewer vertices, higher width pressure.
            let n = (m32).max(4);
            ("dense_csp", families::random_csp(seed, n, m32, 4), None)
        }
    };
    let _ = rng;
    Instance {
        name: format!("syn_{kind}_{m:03}e_{i:04}"),
        origin: Origin::Synthetic,
        hg,
        width_upper,
    }
}

/// Configuration for the wide-instance corpus.
#[derive(Clone, Copy, Debug)]
pub struct WideConfig {
    /// Master seed for the randomized families.
    pub seed: u64,
}

impl Default for WideConfig {
    fn default() -> Self {
        WideConfig { seed: 0xD1DE_CAFE }
    }
}

/// The wide-instance corpus: HyperBench's `|V| > 100` tail, which the
/// Table-1 corpus under-represents because its bands are keyed on *edge*
/// counts. Every instance has hundreds of vertices, so its bitsets span
/// many 64-bit words — the regime the lane-chunked kernels target, and
/// the one where the λp incremental mode's `Auto` threshold trips.
///
/// Instances with `width_upper: Some(_)` are known-width CQ shapes that
/// decompose quickly; the rest (grids, hypercube, overlap-heavy CSPs) are
/// kernel-level stressors that differential suites should bound by edge
/// count or skip in favour of the benches.
pub fn wide_corpus(cfg: WideConfig) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::new();
    let mut push = |name: &str, origin: Origin, hg: Hypergraph, width_upper: Option<usize>| {
        out.push(Instance {
            name: name.to_string(),
            origin,
            hg,
            width_upper,
        });
    };

    // Realistic wide CQ shapes: acyclic or near-acyclic, fast to solve.
    push(
        "wide_band_262v",
        Origin::Application,
        families::band_cq(130, 4, 2),
        Some(1),
    );
    push(
        "wide_bandcycle_260v",
        Origin::Application,
        families::band_cycle(130, 4, 2),
        None,
    );
    push(
        "wide_chain_271v",
        Origin::Application,
        families::chain(90, 4),
        Some(1),
    );
    push(
        "wide_snowflake_325v",
        Origin::Application,
        families::snowflake(65, 4),
        Some(1),
    );
    push(
        "wide_star_301v",
        Origin::Application,
        families::star(300),
        Some(1),
    );
    push(
        "wide_cycle_260v",
        Origin::Application,
        families::cycle(260),
        Some(2),
    );

    // Adversarial generators promoted from the differential suites'
    // proptest shapes, scaled to many-word bitsets.
    push(
        "wide_spill_260v",
        Origin::Synthetic,
        families::spill(rng.random(), 2, 10, 48, 3, 5),
        None,
    );
    push(
        "wide_overlap_320v",
        Origin::Synthetic,
        families::overlap_heavy(rng.random(), 320, 32, 20, 48),
        None,
    );
    push(
        "wide_csp_300v",
        Origin::Synthetic,
        families::random_csp(rng.random(), 300, 130, 4),
        None,
    );

    // Certified bounded-width wide instance: ground truth for k-search.
    let (hg, _) = known_width(KnownWidthConfig::new(rng.random(), 150, 4));
    push("wide_bounded_k4", Origin::Synthetic, hg, Some(4));

    // Kernel-level stressors: high width, hundreds of vertices, many
    // hundreds of edges. Solving these exactly is out of scope for test
    // time budgets; they exist for the bench suites and for exercising
    // BFS/fold kernels at scale.
    push(
        "wide_grid_3x90",
        Origin::Synthetic,
        families::grid(3, 90),
        None,
    );
    push(
        "wide_grid3d_3x3x30",
        Origin::Synthetic,
        families::grid3d(3, 3, 30),
        None,
    );
    push(
        "wide_hypercube_q8",
        Origin::Synthetic,
        families::hypercube(8),
        None,
    );

    out
}

/// The `HB_large` analogue of Section 5.2: instances with more than 50
/// edges known to have `hw ≤ 6`. Used by the scaling study (Figure 1) and
/// the hybrid-metric study (Table 2).
pub fn hb_large_like(seed: u64, count: usize) -> Vec<Instance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let m = rng.random_range(51..=110);
        let inst = match i % 3 {
            0 => {
                let k = 2 + (i / 3) % 4; // widths 2..5
                let s = rng.random::<u64>();
                let (hg, _) = known_width(KnownWidthConfig::new(s, m, k));
                Instance {
                    name: format!("hblarge_bounded_{m:03}e_{i:04}"),
                    origin: Origin::Synthetic,
                    hg,
                    width_upper: Some(k),
                }
            }
            1 => {
                let s = rng.random::<u64>();
                Instance {
                    name: format!("hblarge_cyclic_{m:03}e_{i:04}"),
                    origin: Origin::Application,
                    hg: families::chorded_cycle(m as u32 - m as u32 / 6, m as u32 / 6, s),
                    width_upper: Some(6),
                }
            }
            _ => Instance {
                name: format!("hblarge_cycle_{m:03}e_{i:04}"),
                origin: Origin::Application,
                hg: families::cycle(m as u32),
                width_upper: Some(2),
            },
        };
        out.push(inst);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_group_quotas() {
        let cfg = CorpusConfig {
            seed: 1,
            scale: 1.0 / 50.0,
        };
        let corpus = hyperbench_like(cfg);
        for &(origin, band, full) in HYPERBENCH_GROUPS {
            let want = ((full as f64 / 50.0).round() as usize).max(1);
            let got = corpus
                .iter()
                .filter(|i| i.origin == origin && i.band() == band)
                .count();
            assert!(
                got >= want,
                "group {origin:?}/{band:?}: got {got}, want at least {want}"
            );
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let cfg = CorpusConfig {
            seed: 7,
            scale: 1.0 / 100.0,
        };
        let a = hyperbench_like(cfg);
        let b = hyperbench_like(cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.hg.num_edges(), y.hg.num_edges());
        }
    }

    #[test]
    fn bands_classify_correctly() {
        assert_eq!(SizeBand::of(5), SizeBand::UpTo10);
        assert_eq!(SizeBand::of(10), SizeBand::UpTo10);
        assert_eq!(SizeBand::of(11), SizeBand::To50);
        assert_eq!(SizeBand::of(75), SizeBand::To75);
        assert_eq!(SizeBand::of(100), SizeBand::To100);
        assert_eq!(SizeBand::of(101), SizeBand::Over100);
    }

    #[test]
    fn instances_live_in_their_band() {
        let corpus = hyperbench_like(CorpusConfig {
            seed: 3,
            scale: 1.0 / 60.0,
        });
        for inst in &corpus {
            assert!(inst.hg.num_edges() > 0, "{} is empty", inst.name);
            // Structured families (grid/clique/snowflake) may deviate a
            // little from the drawn edge count, but must stay in a sane
            // range; the table groups them by their *actual* band anyway.
            assert!(inst.hg.num_edges() <= 250, "{} too large", inst.name);
        }
    }

    #[test]
    fn wide_corpus_is_wide_and_deterministic() {
        let a = wide_corpus(WideConfig::default());
        let b = wide_corpus(WideConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            for e in x.hg.edge_ids() {
                assert_eq!(x.hg.edge(e), y.hg.edge(e));
            }
        }
        for inst in &a {
            assert!(
                inst.hg.num_vertices() >= 250,
                "{} has only {} vertices",
                inst.name,
                inst.hg.num_vertices()
            );
            // Bound the corpus so CI-class runs stay tractable.
            assert!(inst.hg.num_edges() <= 1100, "{} too large", inst.name);
        }
        // The corpus must cross the multi-word bitset threshold: > 256
        // vertices means more than four 64-bit blocks per vertex set.
        assert!(a.iter().filter(|i| i.hg.num_vertices() > 256).count() >= 5);
    }

    #[test]
    fn hb_large_instances_are_large() {
        let v = hb_large_like(11, 12);
        assert_eq!(v.len(), 12);
        for inst in &v {
            assert!(inst.hg.num_edges() > 50, "{}", inst.name);
            assert!(inst.width_upper.unwrap_or(6) <= 6);
        }
    }
}
