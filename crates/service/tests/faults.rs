//! Fault-injection isolation tests (the acceptance suite for the
//! service's robustness claims): deterministic panics, stalls and
//! spurious cancellations injected at named solver checkpoints must
//! stay contained to one request — concurrent and subsequent requests
//! on the *same* server, sharing the same table hub and pool, keep
//! succeeding.
#![cfg(feature = "fault-injection")]

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use decomp::faults::{self, Fault};
use htdserve::{Outcome, Request, Server, ServerConfig};
use workloads::families;

/// End-to-end latency bound for cooperative stops (generous for CI).
const STOP_LATENCY: Duration = Duration::from_secs(5);

/// The fault registry is process-global: serialise the tests and leave
/// the registry clean on both entry and exit (even after a failure).
fn armed() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    let g = GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    faults::reset();
    g
}

fn cycle(n: u32) -> Arc<hypergraph::Hypergraph> {
    Arc::new(families::cycle(n))
}

/// A panic at the very first solver checkpoint is contained: the victim
/// request reports `Panicked` with the injected message, and subsequent
/// requests on the same server — sharing the same (now exercised) table
/// hub — succeed.
#[test]
fn injected_panic_is_contained_to_one_request() {
    let _g = armed();
    let server = Server::start(ServerConfig {
        executors: 1, // deterministic dequeue order: the victim fires
        max_retries: 0,
        ..ServerConfig::default()
    });
    let hg = cycle(12);

    faults::arm("logk/solve", 1, Fault::Panic);
    let victim = server.submit(Request::decide(Arc::clone(&hg), 2)).unwrap();
    let bystander = server.submit(Request::decide(Arc::clone(&hg), 2)).unwrap();

    match victim.wait().outcome {
        Outcome::Panicked { message } => {
            assert!(
                message.contains("deliberate panic at `logk/solve`"),
                "unexpected panic message: {message}"
            );
        }
        other => panic!("victim should have panicked, got {other:?}"),
    }
    // The fault disarmed itself after firing; the bystander runs clean.
    match bystander.wait().outcome {
        Outcome::Decided {
            witness: Some(_), ..
        } => {}
        other => panic!("bystander must succeed, got {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.panicked, 1, "{stats}");
    assert_eq!(stats.failed, 1, "{stats}");
    assert_eq!(stats.completed, 1, "{stats}");
    assert_eq!(stats.retried, 0, "{stats}");
    faults::reset();
}

/// Same containment under real concurrency: several executors race on
/// one armed site; exactly one request absorbs the panic, all others
/// succeed, and the server finishes healthy.
#[test]
fn injected_panic_under_concurrency() {
    let _g = armed();
    let server = Server::start(ServerConfig {
        executors: 3,
        max_retries: 0,
        ..ServerConfig::default()
    });
    let hg = cycle(16);

    faults::arm("logk/solve", 1, Fault::Panic);
    let tickets: Vec<_> = (0..6)
        .map(|_| server.submit(Request::decide(Arc::clone(&hg), 2)).unwrap())
        .collect();

    let (mut panicked, mut decided) = (0, 0);
    for t in tickets {
        match t.wait().outcome {
            Outcome::Panicked { .. } => panicked += 1,
            Outcome::Decided {
                witness: Some(_), ..
            } => decided += 1,
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(
        panicked, 1,
        "exactly one request absorbs the one-shot fault"
    );
    assert_eq!(decided, 5);

    let stats = server.shutdown();
    assert_eq!(stats.failed, 1, "{stats}");
    assert_eq!(stats.completed, 5, "{stats}");
    faults::reset();
}

/// With retries enabled, a transient panic costs one retry and the
/// request still completes — the caller never sees the panic.
#[test]
fn transient_panic_is_retried_to_success() {
    let _g = armed();
    let server = Server::start(ServerConfig {
        executors: 1,
        max_retries: 1,
        ..ServerConfig::default()
    });

    faults::arm("logk/solve", 1, Fault::Panic);
    let t = server.submit(Request::decide(cycle(12), 2)).unwrap();
    let resp = t.wait();
    match resp.outcome {
        Outcome::Decided {
            witness: Some(_), ..
        } => {}
        other => panic!("retried request must succeed, got {other:?}"),
    }
    assert_eq!(resp.retries, 1);

    let stats = server.shutdown();
    assert_eq!(stats.panicked, 1, "{stats}");
    assert_eq!(stats.retried, 1, "{stats}");
    assert_eq!(stats.completed, 1, "{stats}");
    assert_eq!(stats.failed, 0, "{stats}");
    faults::reset();
}

/// Poison-recovery regression: a panic injected *inside a shared cache
/// shard's critical section* poisons that mutex mid-insert. The shared
/// pair survives — a subsequent request on the same instance and width
/// checks the *same* tables out of the hub and must solve cleanly
/// through the poisoned-and-recovered lock.
#[test]
fn poisoned_shared_cache_recovers() {
    let _g = armed();
    let server = Server::start(ServerConfig {
        executors: 1,
        max_retries: 0,
        ..ServerConfig::default()
    });
    let hg = cycle(14);

    faults::arm("striped/insert_locked", 1, Fault::Panic);
    let victim = server.submit(Request::decide(Arc::clone(&hg), 2)).unwrap();
    match victim.wait().outcome {
        Outcome::Panicked { message } => {
            assert!(message.contains("striped/insert_locked"), "{message}");
        }
        // The first insert may come late enough that the verdict landed
        // first on some engines; tolerate a success but require the
        // fault to have actually fired below.
        Outcome::Decided { .. } => {}
        other => panic!("unexpected outcome {other:?}"),
    }
    assert_eq!(
        faults::hits("striped/insert_locked"),
        1,
        "fault never fired"
    );

    // Same content, same width → the hub hands out the same pair whose
    // shard mutex was poisoned above.
    let again = server.submit(Request::decide(Arc::clone(&hg), 2)).unwrap();
    match again.wait().outcome {
        Outcome::Decided {
            witness: Some(_), ..
        } => {}
        other => panic!("post-poison request must succeed, got {other:?}"),
    }
    let hub = server.hub_snapshot();
    assert_eq!(
        hub.hits, 1,
        "second request must reuse the poisoned pair: {hub:?}"
    );
    server.shutdown();
    faults::reset();
}

/// A stalled solve (injected delay far past the deadline) surfaces as
/// `TimedOut` within the latency bound, and the executor moves on.
#[test]
fn injected_stall_hits_the_deadline() {
    let _g = armed();
    let server = Server::start(ServerConfig {
        executors: 1,
        ..ServerConfig::default()
    });

    faults::arm(
        "logk/engine/poll",
        1,
        Fault::Delay(Duration::from_millis(120)),
    );
    // The instance must keep polling after the stall: deadline expiry is
    // noticed at the next clock-stride checkpoint, which a trivial solve
    // would finish (late but correct) before reaching. A refutation
    // search on a chorded cycle polls thousands of times.
    let hard = Arc::new(families::chorded_cycle(64, 24, 7));
    let started = Instant::now();
    let t = server
        .submit(Request::decide(hard, 3).with_deadline(Duration::from_millis(20)))
        .unwrap();
    match t.wait().outcome {
        Outcome::TimedOut => {}
        other => panic!("stalled request must time out, got {other:?}"),
    }
    assert!(
        started.elapsed() < STOP_LATENCY,
        "timeout verdict took {:?}",
        started.elapsed()
    );

    let ok = server.submit(Request::decide(cycle(12), 2)).unwrap();
    assert!(matches!(
        ok.wait().outcome,
        Outcome::Decided {
            witness: Some(_),
            ..
        }
    ));
    let stats = server.shutdown();
    assert_eq!(stats.timed_out, 1, "{stats}");
    assert_eq!(stats.completed, 1, "{stats}");
    faults::reset();
}

/// A spurious cancellation (external kill mid-search) yields a
/// `Cancelled` verdict for that request only.
#[test]
fn injected_cancel_is_request_scoped() {
    let _g = armed();
    let server = Server::start(ServerConfig {
        executors: 1,
        ..ServerConfig::default()
    });
    let hg = cycle(12);

    faults::arm("logk/solve", 1, Fault::Cancel);
    let victim = server.submit(Request::decide(Arc::clone(&hg), 2)).unwrap();
    let bystander = server.submit(Request::decide(Arc::clone(&hg), 2)).unwrap();

    assert!(matches!(victim.wait().outcome, Outcome::Cancelled));
    assert!(matches!(
        bystander.wait().outcome,
        Outcome::Decided {
            witness: Some(_),
            ..
        }
    ));
    let stats = server.shutdown();
    assert_eq!(stats.cancelled, 1, "{stats}");
    assert_eq!(stats.completed, 1, "{stats}");
    faults::reset();
}

/// Shutdown while an injected stall holds an executor: the cancel
/// reaches the sleeping solve at its next checkpoint and shutdown still
/// completes within the bound, answering every admitted request.
#[test]
fn shutdown_reaches_a_stalled_solve() {
    let _g = armed();
    let server = Server::start(ServerConfig {
        executors: 1,
        queue_depth: 4,
        ..ServerConfig::default()
    });

    faults::arm(
        "logk/engine/poll",
        1,
        Fault::Delay(Duration::from_millis(150)),
    );
    let stalled = server.submit(Request::decide(cycle(12), 2)).unwrap();
    let queued = server.submit(Request::decide(cycle(12), 2)).unwrap();
    // Let the executor enter the stalled solve.
    std::thread::sleep(Duration::from_millis(30));

    let started = Instant::now();
    let stats = server.shutdown();
    assert!(
        started.elapsed() < STOP_LATENCY,
        "shutdown took {:?}",
        started.elapsed()
    );
    assert_eq!(stats.admitted, 2, "{stats}");
    assert_eq!(stats.cancelled, 2, "{stats}");
    assert!(matches!(stalled.wait().outcome, Outcome::Cancelled));
    assert!(matches!(queued.wait().outcome, Outcome::Cancelled));
    faults::reset();
}

/// Deterministic coalescing: a `Delay` at the leader's first solver
/// checkpoint holds it in flight while content-equal duplicates are
/// dequeued by the second executor — all of them must park on the
/// leader and share its verdict, giving exactly one solve for four
/// requests.
#[test]
fn duplicates_coalesce_onto_delayed_leader() {
    let _g = armed();
    let server = Server::start(ServerConfig {
        executors: 2,
        ..ServerConfig::default()
    });
    let hg = || Arc::new(families::grid(6, 6));

    faults::arm("logk/solve", 1, Fault::Delay(Duration::from_millis(300)));
    let leader = server.submit(Request::decide(hg(), 2)).unwrap();
    // Let the leader enter the delayed solve before the duplicates
    // arrive (fresh allocations: coalescing keys on content).
    std::thread::sleep(Duration::from_millis(50));
    let dups: Vec<_> = (0..3)
        .map(|_| server.submit(Request::decide(hg(), 2)).unwrap())
        .collect();

    assert!(matches!(
        leader.wait().outcome,
        Outcome::Decided { witness: None, .. }
    ));
    for (i, t) in dups.into_iter().enumerate() {
        let resp = t.wait();
        assert!(
            matches!(resp.outcome, Outcome::Decided { witness: None, .. }),
            "duplicate {i}: {:?}",
            resp.outcome
        );
    }

    let stats = server.shutdown();
    assert_eq!(stats.admitted, 4, "{stats}");
    assert_eq!(stats.completed, 4, "{stats}");
    assert_eq!(stats.coalesced, 3, "one solve, three shared replies: {stats}");
    faults::reset();
}

/// A leader's timeout is a fact about *its* deadline, not the instance:
/// the waiter parked on it must be promoted and solve to its own clean
/// verdict, never inherit the leader's `TimedOut`.
#[test]
fn leader_timeout_promotes_live_waiter() {
    let _g = armed();
    let server = Server::start(ServerConfig {
        executors: 2,
        ..ServerConfig::default()
    });
    let hg = || Arc::new(families::grid(6, 6));

    // The delay outlasts the leader's deadline, so its post-delay
    // checkpoint observes `Timeout` — deterministically non-shareable.
    faults::arm("logk/solve", 1, Fault::Delay(Duration::from_millis(400)));
    let leader = server
        .submit(Request::decide(hg(), 2).with_deadline(Duration::from_millis(100)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let waiter = server.submit(Request::decide(hg(), 2)).unwrap();

    assert!(matches!(leader.wait().outcome, Outcome::TimedOut));
    match waiter.wait().outcome {
        Outcome::Decided { witness: None, .. } => {}
        other => panic!("promoted waiter must reach its own verdict, got {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.timed_out, 1, "{stats}");
    assert_eq!(stats.completed, 1, "{stats}");
    assert_eq!(stats.coalesced, 0, "a timeout must not be shared: {stats}");
    assert_eq!(
        stats.admitted,
        stats.completed + stats.timed_out + stats.cancelled + stats.failed,
        "drain invariant: {stats}"
    );
    faults::reset();
}

/// A panicking portfolio racer is contained on its own thread: the
/// surviving engines' verdict wins the race and the request completes.
#[test]
fn panicking_racer_does_not_poison_the_race() {
    let _g = armed();
    let server = Server::start(ServerConfig {
        max_retries: 0,
        ..ServerConfig::default()
    });

    faults::arm("portfolio/engine", 1, Fault::Panic);
    let t = server.submit(Request::race(cycle(12), 2)).unwrap();
    match t.wait().outcome {
        Outcome::Raced {
            witness: Some(_), ..
        } => {}
        other => panic!("survivors' verdict must win, got {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.completed, 1, "{stats}");
    assert_eq!(stats.failed, 0, "the panic stays inside the race: {stats}");
    assert_eq!(stats.races, 1, "{stats}");
    faults::reset();
}
