//! Baseline server behaviour (no fault injection): verdict
//! correctness, deadline scoping, admission control, shutdown/drain
//! semantics, cross-request table sharing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use htdserve::{Job, Outcome, Rejected, Request, Server, ServerConfig};
use workloads::families;

/// How long a cooperative stop may take end-to-end in these tests.
/// Checkpoints fire every few hundred candidate steps, so real latency
/// is microseconds; the bound is generous for loaded CI boxes.
const STOP_LATENCY: Duration = Duration::from_secs(5);

fn cycle(n: u32) -> Arc<hypergraph::Hypergraph> {
    Arc::new(families::cycle(n))
}

/// A cycle hypergraph C_n has hw = 2 for n ≥ 4: k = 1 is refuted,
/// k = 2 is witnessed. The server must reproduce both verdicts.
#[test]
fn decide_round_trip() {
    let server = Server::start(ServerConfig::default());
    let hg = cycle(12);

    let yes = server.submit(Request::decide(Arc::clone(&hg), 2)).unwrap();
    let no = server.submit(Request::decide(Arc::clone(&hg), 1)).unwrap();

    match yes.wait().outcome {
        Outcome::Decided {
            k: 2,
            witness: Some(_),
        } => {}
        other => panic!("expected witnessed k=2 verdict, got {other:?}"),
    }
    match no.wait().outcome {
        Outcome::Decided {
            k: 1,
            witness: None,
        } => {}
        other => panic!("expected refuted k=1 verdict, got {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed + stats.timed_out + stats.cancelled, 0);
}

/// Minimal-width requests return exact anytime bounds when there is no
/// deadline pressure.
#[test]
fn minimal_width_exact() {
    let server = Server::start(ServerConfig::default());
    let ticket = server.submit(Request::minimal_width(cycle(10), 4)).unwrap();
    match ticket.wait().outcome {
        Outcome::Width(b) => {
            assert!(b.exact(), "unpressured sweep must certify: {b}");
            assert_eq!(b.best_upper, Some(2));
            assert!(b.witness.is_some());
        }
        other => panic!("expected width bounds, got {other:?}"),
    }
    server.shutdown();
}

/// Content-equal instances submitted as *distinct* allocations share
/// one canonical instance and its table pair.
#[test]
fn content_equal_requests_share_tables() {
    let server = Server::start(ServerConfig::default());
    for _ in 0..3 {
        // A fresh allocation each time: sharing must be by content.
        let t = server.submit(Request::decide(cycle(16), 2)).unwrap();
        assert!(matches!(
            t.wait().outcome,
            Outcome::Decided {
                witness: Some(_),
                ..
            }
        ));
    }
    let hub = server.hub_snapshot();
    assert_eq!(hub.instances, 1, "one canonical instance: {hub:?}");
    assert_eq!(hub.misses, 1, "one pair built: {hub:?}");
    assert_eq!(hub.hits, 2, "later requests reuse it: {hub:?}");
    server.shutdown();
}

/// An already-expired deadline is shed at admission, not queued to die.
#[test]
fn expired_deadline_shed_at_admission() {
    let server = Server::start(ServerConfig {
        min_headroom: Duration::from_millis(1),
        ..ServerConfig::default()
    });
    let err = server
        .submit(Request::decide(cycle(8), 2).with_deadline(Duration::ZERO))
        .unwrap_err();
    assert!(matches!(err, Rejected::Expired { .. }), "got {err:?}");
    let stats = server.shutdown();
    assert_eq!(stats.shed_expired, 1);
    assert_eq!(stats.admitted, 0);
}

/// A full queue sheds with `Overloaded`; draining afterwards still
/// answers everything that *was* admitted.
#[test]
fn overload_sheds_then_drains() {
    // One executor, tiny queue, and a big enough instance that the
    // executor stays busy while we stuff the queue.
    let server = Server::start(ServerConfig {
        executors: 1,
        queue_depth: 2,
        ..ServerConfig::default()
    });
    let hg = cycle(40);
    let mut tickets = Vec::new();
    let mut overloaded = 0;
    // 1 in-flight + 2 queued slots; 16 submits must overflow.
    for _ in 0..16 {
        match server.submit(Request::decide(Arc::clone(&hg), 2)) {
            Ok(t) => tickets.push(t),
            Err(Rejected::Overloaded { queue_depth }) => {
                assert_eq!(queue_depth, 2);
                overloaded += 1;
            }
            Err(other) => panic!("unexpected rejection {other:?}"),
        }
    }
    assert!(
        overloaded > 0,
        "16 rapid submits never overflowed a 2-slot queue"
    );
    let admitted = tickets.len() as u64;
    for t in tickets {
        assert!(matches!(
            t.wait().outcome,
            Outcome::Decided {
                witness: Some(_),
                ..
            }
        ));
    }
    let stats = server.drain();
    assert_eq!(stats.admitted, admitted);
    assert_eq!(stats.completed, admitted);
    assert_eq!(stats.shed_overload, overloaded);
}

/// A request whose deadline expires mid-solve reports `TimedOut` and
/// does not wedge the executor; a subsequent request succeeds.
#[test]
fn deadline_times_out_in_flight() {
    let server = Server::start(ServerConfig::default());
    // Large chorded instance at a width that forces a long refutation
    // search; 5 ms cannot finish it.
    let hard = Arc::new(families::chorded_cycle(64, 24, 7));
    let t = server
        .submit(Request::decide(hard, 3).with_deadline(Duration::from_millis(5)))
        .unwrap();
    let started = Instant::now();
    let resp = t.wait();
    assert!(
        matches!(resp.outcome, Outcome::TimedOut),
        "got {:?}",
        resp.outcome
    );
    assert!(
        started.elapsed() < STOP_LATENCY,
        "timeout not honoured within bound: {:?}",
        started.elapsed()
    );

    // The executor is fine: an easy request still completes.
    let ok = server.submit(Request::decide(cycle(8), 2)).unwrap();
    assert!(matches!(
        ok.wait().outcome,
        Outcome::Decided {
            witness: Some(_),
            ..
        }
    ));
    let stats = server.shutdown();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.completed, 1);
}

/// A deadline-pressured minimal-width sweep still returns the bounds it
/// proved (anytime semantics), not nothing.
#[test]
fn minimal_width_partial_under_pressure() {
    let server = Server::start(ServerConfig {
        // Give each width a tiny slice so the sweep visits several
        // widths instead of burning the whole budget on k = 1.
        width_slice: Some(Duration::from_millis(4)),
        ..ServerConfig::default()
    });
    let hard = Arc::new(families::chorded_cycle(64, 24, 7));
    let t = server
        .submit(Request::minimal_width(hard, 3).with_deadline(Duration::from_millis(30)))
        .unwrap();
    match t.wait().outcome {
        Outcome::Width(b) => {
            // Whatever happened, the invariant must hold: the lower
            // bound only reflects exhaustively refuted widths.
            assert!(b.proven_lower >= 1);
            if let Some(u) = b.best_upper {
                assert!(u >= b.proven_lower);
                assert!(b.witness.is_some());
            }
        }
        other => panic!("expected width bounds, got {other:?}"),
    }
    server.shutdown();
}

/// `shutdown` cancels queued *and* in-flight requests through the
/// control chain within the latency bound, and every admitted request
/// still receives a response.
#[test]
fn shutdown_cancels_in_flight_and_queued() {
    let server = Server::start(ServerConfig {
        executors: 1,
        queue_depth: 4,
        ..ServerConfig::default()
    });
    let hard = Arc::new(families::chorded_cycle(72, 28, 11));
    // No deadline: only the shutdown cancel can stop these.
    let tickets: Vec<_> = (0..3)
        .map(|_| {
            server
                .submit(Request::decide(Arc::clone(&hard), 3))
                .unwrap()
        })
        .collect();
    // Let the executor actually start solving the first one.
    std::thread::sleep(Duration::from_millis(30));

    let started = Instant::now();
    let stats = server.shutdown();
    assert!(
        started.elapsed() < STOP_LATENCY,
        "shutdown took {:?}",
        started.elapsed()
    );
    assert_eq!(
        stats.admitted, 3,
        "queued requests must be answered, not dropped"
    );
    assert_eq!(stats.cancelled, 3, "{stats}");
    for t in tickets {
        assert!(matches!(t.wait().outcome, Outcome::Cancelled));
    }
}

/// Submitting after shutdown is rejected (via a second handle pattern:
/// drop-based stop also closes admission).
#[test]
fn reject_after_close() {
    let server = Server::start(ServerConfig::default());
    let t = server.submit(Request::decide(cycle(8), 2)).unwrap();
    t.wait();
    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    // The handle is consumed by shutdown; nothing further to submit to.
    // (Admission-after-close is covered by the closed flag internally;
    // the type system already prevents use-after-shutdown here.)
}

/// Deadline-ordered admission: with the single executor pinned by a
/// long-running request, a later-submitted request with an *earlier*
/// deadline overtakes an earlier-submitted request with a later
/// deadline.
#[test]
fn queue_is_deadline_ordered_not_fifo() {
    let server = Server::start(ServerConfig {
        executors: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    // Pin the executor: a refutation search that runs out its 300 ms
    // deadline (chorded cycles at low k search exhaustively).
    let hard = Arc::new(families::chorded_cycle(64, 24, 7));
    let blocker = server
        .submit(Request::decide(hard, 3).with_deadline(Duration::from_millis(300)))
        .unwrap();
    // Queue two easy requests while the executor is busy: FIFO would run
    // `patient` first; EDF must run `urgent` first.
    let patient = server
        .submit(Request::decide(cycle(12), 2).with_deadline(Duration::from_secs(60)))
        .unwrap();
    let urgent = server
        .submit(Request::decide(cycle(12), 2).with_deadline(Duration::from_secs(5)))
        .unwrap();

    // Responses arrive in execution order; queue_wait is measured from
    // submit to dequeue, so the overtaking request must show a *smaller*
    // gap between its wait and the blocker's runtime.
    let urgent_resp = urgent.wait();
    let patient_resp = patient.wait();
    assert!(matches!(
        urgent_resp.outcome,
        Outcome::Decided {
            witness: Some(_),
            ..
        }
    ));
    assert!(matches!(
        patient_resp.outcome,
        Outcome::Decided {
            witness: Some(_),
            ..
        }
    ));
    assert!(
        urgent_resp.queue_wait < patient_resp.queue_wait,
        "urgent (submitted later, wait {:?}) must dequeue before patient \
         (wait {:?})",
        urgent_resp.queue_wait,
        patient_resp.queue_wait,
    );
    blocker.wait();
    let stats = server.shutdown();
    assert_eq!(stats.completed + stats.timed_out, 3, "{stats}");
}

/// A request whose deadline passes while it is queued is shed at
/// dequeue — counted in `expired_in_queue` (and in `timed_out`, keeping
/// the admitted-class invariant), with no solve started.
#[test]
fn queued_past_deadline_is_shed_at_dequeue() {
    let server = Server::start(ServerConfig {
        executors: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let hard = Arc::new(families::chorded_cycle(64, 24, 7));
    // Pin the executor for ~150 ms...
    let blocker = server
        .submit(Request::decide(hard, 3).with_deadline(Duration::from_millis(150)))
        .unwrap();
    // Let the executor actually dequeue the blocker — otherwise EDF runs
    // the short-deadline request first, while it is still live.
    std::thread::sleep(Duration::from_millis(40));
    // ...and queue a request that can only expire behind it.
    let doomed = server
        .submit(Request::decide(cycle(12), 2).with_deadline(Duration::from_millis(20)))
        .unwrap();
    assert!(matches!(doomed.wait().outcome, Outcome::TimedOut));
    assert!(matches!(blocker.wait().outcome, Outcome::TimedOut));

    let stats = server.shutdown();
    assert_eq!(stats.expired_in_queue, 1, "{stats}");
    // Both timed out, but only the queued one counts as in-queue expiry;
    // the invariant admitted = completed + timed_out + cancelled + failed
    // still holds with the split counter.
    assert_eq!(stats.timed_out, 2, "{stats}");
    assert_eq!(
        stats.admitted,
        stats.completed + stats.timed_out + stats.cancelled + stats.failed,
        "{stats}"
    );
    assert!(stats.expired_in_queue <= stats.timed_out);
    assert_eq!(stats.shed_expired, 0, "at-submit shedding is separate");
}

/// Deadline-less requests keep FIFO order among themselves and never
/// starve: they run after deadlined work, in submission order.
#[test]
fn deadline_less_requests_fifo_after_deadlined() {
    let server = Server::start(ServerConfig {
        executors: 1,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let hard = Arc::new(families::chorded_cycle(64, 24, 7));
    let blocker = server
        .submit(Request::decide(hard, 3).with_deadline(Duration::from_millis(200)))
        .unwrap();
    let no_deadline = server.submit(Request::decide(cycle(12), 2)).unwrap();
    let deadlined = server
        .submit(Request::decide(cycle(12), 2).with_deadline(Duration::from_secs(60)))
        .unwrap();
    let no_deadline_resp = no_deadline.wait();
    let deadlined_resp = deadlined.wait();
    assert!(
        deadlined_resp.queue_wait < no_deadline_resp.queue_wait,
        "deadlined request (wait {:?}) must overtake the deadline-less \
         one (wait {:?})",
        deadlined_resp.queue_wait,
        no_deadline_resp.queue_wait,
    );
    assert!(matches!(
        no_deadline_resp.outcome,
        Outcome::Decided {
            witness: Some(_),
            ..
        }
    ));
    blocker.wait();
    server.shutdown();
}

/// The parallel configuration (shared pool across executors) produces
/// the same verdicts as sequential.
#[test]
fn parallel_pool_round_trip() {
    let server = Server::start(ServerConfig {
        executors: 2,
        workers: 2,
        ..ServerConfig::default()
    });
    let hg = cycle(20);
    let tickets: Vec<_> = (0..4)
        .map(|i| {
            let k = if i % 2 == 0 { 2 } else { 1 };
            server
                .submit(Request {
                    hg: Arc::clone(&hg),
                    job: Job::Decide { k },
                    deadline: None,
                })
                .unwrap()
        })
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        match t.wait().outcome {
            Outcome::Decided { witness, .. } => {
                assert_eq!(witness.is_some(), i % 2 == 0, "request {i}");
            }
            other => panic!("request {i}: {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 4);
}

/// `Job::Race` runs the full portfolio and reports the winning engine;
/// both polarities come back definitive on an unpressured instance.
#[test]
fn race_round_trip() {
    let server = Server::start(ServerConfig::default());
    let hg = cycle(12);

    let yes = server.submit(Request::race(Arc::clone(&hg), 2)).unwrap();
    let no = server.submit(Request::race(Arc::clone(&hg), 1)).unwrap();

    match yes.wait().outcome {
        Outcome::Raced {
            k: 2,
            winner,
            witness: Some(_),
        } => {
            // Winner is whichever engine got there first; it must be a
            // registered one.
            assert!(portfolio::EngineKind::ALL.contains(&winner));
        }
        other => panic!("expected raced k=2 witness, got {other:?}"),
    }
    assert!(matches!(
        no.wait().outcome,
        Outcome::Raced {
            k: 1,
            witness: None,
            ..
        }
    ));

    let stats = server.shutdown();
    assert_eq!(stats.races, 2, "{stats}");
    assert_eq!(stats.completed, 2, "{stats}");
    let wins: u64 = stats.races_won_by.iter().sum();
    assert_eq!(wins, 2, "every definitive race names a winner: {stats}");
}

/// Duplicate in-flight requests coalesce onto one solve: with two
/// executors, the duplicates of a slow refutation park on the leader
/// and share its verdict instead of redoing the search. (The exact
/// count is pinned deterministically in the fault-injection suite; here
/// the leader's multi-millisecond solve dwarfs the attach window.)
#[test]
fn duplicate_requests_coalesce_onto_one_solve() {
    let server = Server::start(ServerConfig {
        executors: 2,
        ..ServerConfig::default()
    });
    // Fresh allocation each submit: coalescing must key on content.
    let grid = || Arc::new(families::grid(10, 10));
    let tickets: Vec<_> = (0..4)
        .map(|_| server.submit(Request::decide(grid(), 2)).unwrap())
        .collect();
    for t in tickets {
        match t.wait().outcome {
            Outcome::Decided {
                k: 2,
                witness: None,
            } => {}
            other => panic!("expected refuted k=2, got {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.admitted, 4, "{stats}");
    assert_eq!(stats.completed, 4, "{stats}");
    assert!(
        stats.coalesced >= 1,
        "duplicates should have parked on the in-flight leader: {stats}"
    );
    assert_eq!(
        stats.admitted,
        stats.completed + stats.timed_out + stats.cancelled + stats.failed,
        "drain invariant: {stats}"
    );
}
