//! Cross-request memo-table sharing with soundness enforcement.
//!
//! Cached subproblem verdicts are only valid relative to one hypergraph
//! (its edge numbering) and one width bound `k` — sharing them across
//! *different* instances or widths would be unsound. The [`TableHub`]
//! therefore keys [`SharedTables`] pairs by *instance content* and `k`:
//! content-equal hypergraphs submitted by different clients are
//! canonicalised to one `Arc`, so their requests genuinely warm each
//! other's caches, while everything else gets (and pollutes) only its
//! own tables.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hypergraph::{Hypergraph, Ix};
use logk::SharedTables;

/// One canonicalised instance: the `Arc` every content-equal submission
/// is rewritten to, plus its per-width table pairs.
struct InstanceEntry {
    /// Canonical copy — all [`SharedTables::for_instance`] pairs below
    /// are bound to *this* allocation, so `LogK`'s address check passes
    /// for every sharer.
    hg: Arc<Hypergraph>,
    /// Width-keyed table pairs, built lazily per requested `k`.
    pairs: HashMap<usize, SharedTables>,
    /// LRU tick of the last checkout.
    last_used: u64,
}

/// Registry of shared memo tables, keyed by `(instance content, k)`.
///
/// Byte budget: each pair caps its subproblem cache at the configured
/// per-pair budget, and the hub holds at most `max_instances` instances
/// (LRU-evicted), so total cache memory is bounded by
/// `max_instances × widths-per-instance × cache_bytes`.
pub struct TableHub {
    cache_bytes: usize,
    detk_cache_cap: usize,
    max_instances: usize,
    inner: Mutex<HashMap<u64, InstanceEntry>>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Counter snapshot of a [`TableHub`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HubSnapshot {
    /// Distinct canonicalised instances currently held.
    pub instances: u64,
    /// Table pairs currently held across all instances.
    pub pairs: u64,
    /// Checkouts that found an existing pair.
    pub hits: u64,
    /// Checkouts that built a fresh pair.
    pub misses: u64,
    /// Instances evicted by the LRU cap.
    pub evictions: u64,
}

impl TableHub {
    /// A hub handing out pairs with the given per-pair budgets, holding
    /// at most `max_instances` distinct instances.
    pub fn new(cache_bytes: usize, detk_cache_cap: usize, max_instances: usize) -> Self {
        TableHub {
            cache_bytes,
            detk_cache_cap,
            max_instances: max_instances.max(1),
            inner: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Checks out the table pair for (`hg`, `k`): the canonical `Arc`
    /// for `hg`'s content plus the pair bound to it, building either on
    /// first sight. Solve with the *returned* hypergraph — the pair's
    /// soundness check is by address against it.
    ///
    /// Fingerprint collisions (content-distinct instances hashing alike)
    /// degrade safely: the newcomer gets a fresh *unshared* pair bound
    /// to its own `Arc`, and the incumbent keeps its slot.
    pub fn checkout(&self, hg: &Arc<Hypergraph>, k: usize) -> (Arc<Hypergraph>, SharedTables) {
        let fp = fingerprint(hg);
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match map.get_mut(&fp) {
            Some(entry) if same_instance(&entry.hg, hg) => {
                entry.last_used = now;
                let canonical = Arc::clone(&entry.hg);
                let mut built = false;
                let pair = entry
                    .pairs
                    .entry(k)
                    .or_insert_with(|| {
                        built = true;
                        SharedTables::for_instance(
                            Arc::clone(&canonical),
                            k,
                            self.cache_bytes,
                            self.detk_cache_cap,
                        )
                    })
                    .clone();
                let counter = if built { &self.misses } else { &self.hits };
                counter.fetch_add(1, Ordering::Relaxed);
                (canonical, pair)
            }
            Some(_) => {
                // Fingerprint collision: don't share, don't evict.
                self.misses.fetch_add(1, Ordering::Relaxed);
                let canonical = Arc::clone(hg);
                let pair = SharedTables::for_instance(
                    Arc::clone(&canonical),
                    k,
                    self.cache_bytes,
                    self.detk_cache_cap,
                );
                (canonical, pair)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let canonical = Arc::clone(hg);
                let pair = SharedTables::for_instance(
                    Arc::clone(&canonical),
                    k,
                    self.cache_bytes,
                    self.detk_cache_cap,
                );
                let mut pairs = HashMap::new();
                pairs.insert(k, pair.clone());
                map.insert(
                    fp,
                    InstanceEntry {
                        hg: Arc::clone(&canonical),
                        pairs,
                        last_used: now,
                    },
                );
                if map.len() > self.max_instances {
                    // Evict the least-recently checked-out instance
                    // (never the one just inserted: its tick is `now`).
                    if let Some((&old, _)) = map.iter().min_by_key(|(_, e)| e.last_used) {
                        map.remove(&old);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                (canonical, pair)
            }
        }
    }

    /// Counter snapshot.
    pub fn snapshot(&self) -> HubSnapshot {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        HubSnapshot {
            instances: map.len() as u64,
            pairs: map.values().map(|e| e.pairs.len() as u64).sum(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for TableHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableHub")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// Content fingerprint: vertex count plus every edge's vertex list, in
/// edge order (edge numbering is part of verdict identity, so order
/// matters — no sorting). Doubles as the in-flight coalescing key in
/// `server` (paired with [`same_instance`] against collisions).
pub(crate) fn fingerprint(hg: &Hypergraph) -> u64 {
    let mut h = DefaultHasher::new();
    hg.num_vertices().hash(&mut h);
    hg.num_edges().hash(&mut h);
    for e in hg.edge_ids() {
        for v in hg.edge(e).iter() {
            v.index().hash(&mut h);
        }
        // Edge delimiter, so [{1,2},{3}] and [{1},{2,3}] differ.
        usize::MAX.hash(&mut h);
    }
    h.finish()
}

/// Exact content equality (guards against fingerprint collisions).
pub(crate) fn same_instance(a: &Hypergraph, b: &Hypergraph) -> bool {
    if std::ptr::eq(a, b) {
        return true;
    }
    a.num_vertices() == b.num_vertices()
        && a.num_edges() == b.num_edges()
        && a.edge_ids().all(|e| a.edge(e).iter().eq(b.edge(e).iter()))
}
