//! The decomposition server: bounded admission, deadline-scoped
//! execution, panic containment, graceful drain.
//!
//! # Request lifecycle
//!
//! ```text
//! submit ──(closed? headroom? queue full?)──▶ bounded EDF queue
//!                   │ shed                        │
//!                   ▼                             ▼ executor dequeues
//!              Err(Rejected)               pre-flight checkpoint
//!                                                 │
//!                                       catch_unwind(solve) ⟲ retry
//!                                                 │
//!                                          Response { Outcome }
//! ```
//!
//! The queue is **deadline-ordered** (earliest effective deadline first,
//! FIFO among deadline-less requests — see [`crate::queue`]): under
//! backlog, urgent work overtakes patient work, and a request that
//! expired while queued is the first thing an executor sees — it is shed
//! at the pre-flight checkpoint (counted in
//! [`ServiceStats::expired_in_queue`]) before any solve starts.
//!
//! Every request gets a [`decomp::Control`] *child* of the server's root
//! control at submit time, capped at the request's deadline — the
//! deadline therefore spans queue wait, and [`Server::shutdown`]
//! cancelling the root cooperatively stops every queued *and* in-flight
//! solve through the parent link, without tearing down threads.
//!
//! Panics inside a solve (including ones surfacing through the shared
//! rayon pool's scope) are contained per request with
//! [`std::panic::catch_unwind`]: the request gets an
//! [`Outcome::Panicked`] verdict (after up to
//! [`ServerConfig::max_retries`] re-executions) and the executor moves
//! on. A second panic *while containing the first* aborts the process
//! rather than unwinding into unaccounted state.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::process;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use decomp::{Control, Decomposition, Interrupted};
use hypergraph::Hypergraph;
use logk::{
    LogK, SharedTables, Variant, WidthBounds, DEFAULT_CACHE_BYTES, DEFAULT_DETK_CACHE_CAP,
};
use portfolio::{EngineKind, Portfolio};
use rayon::ThreadPool;

use crate::queue::{DeadlineQueue, PushError};
use crate::stats::{add_duration, ServiceCounters, ServiceStats};
use crate::tables::{fingerprint, same_instance, HubSnapshot, TableHub};

/// Tuning knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Executor threads dequeuing and running requests (≥ 1 enforced).
    /// Each runs one request at a time, so this bounds solve concurrency.
    pub executors: usize,
    /// Worker threads of the shared work-stealing pool. `> 0` runs every
    /// solve as [`Variant::Parallel`] on one process-wide pool shared by
    /// all executors; `0` runs [`Self::solver`] as configured, on the
    /// executor thread.
    pub workers: usize,
    /// Bounded queue capacity (≥ 1 enforced); a full queue sheds with
    /// [`Rejected::Overloaded`] instead of buffering unboundedly.
    pub queue_depth: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Option<Duration>,
    /// Admission headroom: a request whose deadline leaves `≤` this much
    /// time at submit is shed as [`Rejected::Expired`] rather than
    /// queued to die.
    pub min_headroom: Duration,
    /// Re-executions granted after a contained panic (the deadline keeps
    /// running; a retry is only attempted while the request's control is
    /// still live).
    pub max_retries: u32,
    /// Per-pair byte budget of each shared subproblem cache.
    pub cache_bytes: usize,
    /// Per-pair entry cap of each shared `det-k-decomp` memo.
    pub detk_cache_cap: usize,
    /// Distinct instances the table hub keeps warm (LRU beyond this).
    pub max_instances: usize,
    /// Per-width sub-deadline for minimal-width sweeps (see
    /// [`logk::width_bounds_with`]); `None` lets each width run to the
    /// request deadline.
    pub width_slice: Option<Duration>,
    /// Concurrent width probes a minimal-width sweep may keep in flight
    /// ([`logk::width_bounds_racing`]). `≤ 1` keeps the sequential
    /// sweep. When the server runs a shared pool (`workers > 0`) the
    /// effective value is capped at `workers` — parallel probe solves
    /// beyond that would serialise on the pool and only burn slices.
    pub speculation: usize,
    /// Solver template; each request's engine is built from a clone with
    /// the hub's shared tables (and the shared pool, when `workers > 0`)
    /// attached.
    pub solver: LogK,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            executors: 2,
            workers: 0,
            queue_depth: 64,
            default_deadline: None,
            min_headroom: Duration::ZERO,
            max_retries: 1,
            cache_bytes: DEFAULT_CACHE_BYTES,
            detk_cache_cap: DEFAULT_DETK_CACHE_CAP,
            max_instances: 4,
            width_slice: None,
            speculation: 2,
            solver: LogK::sequential(),
        }
    }
}

/// What to compute for one hypergraph.
///
/// `Hash`/`Eq` because `(instance fingerprint, Job)` keys the in-flight
/// coalescing registry: two admitted requests coalesce only when they
/// ask the *same question* of the *same instance*.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Job {
    /// Decide `hw(H) ≤ k`, returning a witness when it holds.
    Decide {
        /// Width bound to decide.
        k: usize,
    },
    /// Anytime minimal-width sweep up to `k_max` (see [`WidthBounds`]).
    MinimalWidth {
        /// Largest width the sweep tries.
        k_max: usize,
    },
    /// Decide `hw(H) ≤ k` by racing the full algorithm portfolio
    /// ([`portfolio::Portfolio`]): every engine attacks the same
    /// question, the first definitive verdict cancels the rest.
    Race {
        /// Width bound to race.
        k: usize,
    },
}

/// One unit of work offered to [`Server::submit`].
#[derive(Clone, Debug)]
pub struct Request {
    /// The instance. Content-equal submissions share memo tables (the
    /// hub canonicalises them), so resubmitting the same query is cheap.
    pub hg: Arc<Hypergraph>,
    /// What to compute.
    pub job: Job,
    /// Deadline budget, measured from submit (spans queue wait). `None`
    /// falls back to [`ServerConfig::default_deadline`].
    pub deadline: Option<Duration>,
}

impl Request {
    /// A `hw(H) ≤ k` decision request.
    pub fn decide(hg: Arc<Hypergraph>, k: usize) -> Self {
        Request {
            hg,
            job: Job::Decide { k },
            deadline: None,
        }
    }

    /// A minimal-width request sweeping `k = 1..=k_max`.
    pub fn minimal_width(hg: Arc<Hypergraph>, k_max: usize) -> Self {
        Request {
            hg,
            job: Job::MinimalWidth { k_max },
            deadline: None,
        }
    }

    /// A `hw(H) ≤ k` decision raced across the algorithm portfolio.
    pub fn race(hg: Arc<Hypergraph>, k: usize) -> Self {
        Request {
            hg,
            job: Job::Race { k },
            deadline: None,
        }
    }

    /// Caps the request at `budget` from submit time.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }
}

/// Terminal verdict of an executed request.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The decision ran to completion: `witness` is `Some` iff
    /// `hw(H) ≤ k`.
    Decided {
        /// The width bound that was decided.
        k: usize,
        /// Validated-by-construction decomposition, when one exists.
        witness: Option<Decomposition>,
    },
    /// Minimal-width verdict — possibly partial bounds if the sweep was
    /// cut short (check [`WidthBounds::interrupted`]).
    Width(WidthBounds),
    /// A portfolio race reached a definitive verdict: `witness` is
    /// `Some` iff `hw(H) ≤ k`, and `winner` names the engine whose
    /// verdict it is. Races cut short by the deadline report
    /// [`Outcome::TimedOut`] / [`Outcome::Cancelled`] like any solve.
    Raced {
        /// The width bound that was raced.
        k: usize,
        /// The engine that produced the winning verdict.
        winner: EngineKind,
        /// Validated witness decomposition, when one exists.
        witness: Option<Decomposition>,
    },
    /// The deadline expired before a verdict (possibly while queued).
    TimedOut,
    /// The request's control was cancelled (server shutdown, or the
    /// deadline chain's parent firing).
    Cancelled,
    /// Every execution attempt panicked; the panic was contained and the
    /// server kept serving.
    Panicked {
        /// The final attempt's panic payload, when it was a string.
        message: String,
    },
}

impl Outcome {
    /// The witness decomposition, for outcomes that carry one.
    pub fn witness(&self) -> Option<&Decomposition> {
        match self {
            Outcome::Decided { witness, .. } => witness.as_ref(),
            Outcome::Raced { witness, .. } => witness.as_ref(),
            Outcome::Width(b) => b.witness.as_ref(),
            _ => None,
        }
    }
}

/// A finished request: the verdict plus per-request accounting.
#[derive(Clone, Debug)]
pub struct Response {
    /// Server-assigned request id (matches [`Ticket::id`]).
    pub id: u64,
    /// The verdict.
    pub outcome: Outcome,
    /// Time spent queued between admission and execution start.
    pub queue_wait: Duration,
    /// Wall-clock execution time (including retries).
    pub solve_time: Duration,
    /// Contained-panic re-executions this request consumed.
    pub retries: u32,
}

impl Response {
    /// Synthetic response for a request whose executor went away without
    /// replying (only possible after a containment abort).
    fn severed(id: u64) -> Self {
        Response {
            id,
            outcome: Outcome::Cancelled,
            queue_wait: Duration::ZERO,
            solve_time: Duration::ZERO,
            retries: 0,
        }
    }
}

/// Why [`Server::submit`] shed a request at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded queue is full — retry later or against another
    /// server. Load shedding, not failure: nothing was enqueued.
    Overloaded {
        /// The configured queue capacity that was exhausted.
        queue_depth: usize,
    },
    /// The deadline leaves less than the configured admission headroom.
    Expired {
        /// Time the deadline had left at submit.
        remaining: Duration,
    },
    /// The server is shutting down and admits nothing new.
    ShuttingDown,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::Overloaded { queue_depth } => {
                write!(f, "queue full ({queue_depth} slots)")
            }
            Rejected::Expired { remaining } => {
                write!(f, "deadline leaves only {remaining:?} at admission")
            }
            Rejected::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Claim check for an admitted request.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// The server-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request finishes. Admitted requests always get
    /// a response — shutdown cancels rather than drops them.
    pub fn wait(self) -> Response {
        let id = self.id;
        self.rx.recv().unwrap_or_else(|_| Response::severed(id))
    }

    /// Non-blocking poll; `None` while the request is still queued or
    /// running.
    pub fn try_wait(&self) -> Option<Response> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Response::severed(self.id)),
        }
    }
}

/// An admitted request travelling from `submit` to an executor.
struct Queued {
    hg: Arc<Hypergraph>,
    job: Job,
    ctrl: Arc<Control>,
    reply: mpsc::Sender<Response>,
    enqueued: Instant,
    id: u64,
}

/// Coalescing key: instance content fingerprint plus the exact job.
type CoalesceKey = (u64, Job);

/// A request parked on another in-flight request's verdict.
struct Waiter {
    q: Queued,
    /// The waiter's own measured queue wait (for its response).
    queue_wait: Duration,
    /// When it attached — its response's `solve_time` is the span from
    /// here to delivery (time spent waiting on the shared solve).
    attached: Instant,
}

/// Registry slot for one in-flight `(instance, job)` solve.
struct InflightEntry {
    /// The leader's instance, for exact-content confirmation (the
    /// fingerprint alone could collide).
    hg: Arc<Hypergraph>,
    waiters: Vec<Waiter>,
}

/// What [`Inner::coalesce_claim`] decided for a dequeued request.
enum Claim {
    /// First in: registered under the key; caller solves and answers
    /// any waiters that accumulate meanwhile.
    Lead(Queued),
    /// Fingerprint collision with a different in-flight instance: solve
    /// unregistered (correct, just not shared).
    Standalone(Queued),
    /// Parked on the in-flight leader; its executor delivers the reply.
    Attached,
}

/// State shared between the handle, the submit path and the executors.
struct Inner {
    cfg: ServerConfig,
    /// Root of the control chain: every request control is a child, so
    /// cancelling this cooperatively stops the whole server's work.
    root: Arc<Control>,
    counters: ServiceCounters,
    hub: TableHub,
    /// Shared work-stealing pool (when `workers > 0`); all executors'
    /// parallel solves run on it concurrently.
    pool: Option<Arc<ThreadPool>>,
    /// In-flight coalescing registry: `(fingerprint, job)` → the leader
    /// currently solving it plus the requests parked on its verdict.
    /// Entries live exactly as long as their leader is inside
    /// `execute_one`, so a drained server always has an empty registry.
    inflight: Mutex<HashMap<CoalesceKey, InflightEntry>>,
    closed: AtomicBool,
    next_id: AtomicU64,
}

/// Long-running decomposition service.
///
/// Owns the executor threads, the shared worker pool and the shared
/// memo-table hub. See the [module docs](self) for the request
/// lifecycle; see `crates/harness`'s `serve` binary for a demo driver
/// and the `htdwire` crate for the TCP frontend.
pub struct Server {
    inner: Arc<Inner>,
    /// Deadline-ordered admission queue; closed on stop.
    queue: Arc<DeadlineQueue<Queued>>,
    /// Executor join handles, drained exactly once by whichever stop
    /// path runs first (interior mutability so a frontend holding the
    /// server behind an `Arc` can stop it through `&self`).
    executors: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Starts the executor threads (and the shared pool, if configured)
    /// and begins accepting requests.
    pub fn start(cfg: ServerConfig) -> Server {
        let pool = (cfg.workers > 0).then(|| logk::shared_pool(cfg.workers));
        let queue = Arc::new(DeadlineQueue::new(cfg.queue_depth));
        let executors = cfg.executors.max(1);
        let inner = Arc::new(Inner {
            root: Arc::new(Control::unlimited()),
            counters: ServiceCounters::default(),
            hub: TableHub::new(cfg.cache_bytes, cfg.detk_cache_cap, cfg.max_instances),
            pool,
            inflight: Mutex::new(HashMap::new()),
            closed: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            cfg,
        });
        let executors = (0..executors)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("htdserve-exec-{i}"))
                    .spawn(move || run_executor(&inner, &queue))
                    .expect("executor thread spawn cannot fail under normal limits")
            })
            .collect();
        Server {
            inner,
            queue,
            executors: Mutex::new(executors),
        }
    }

    /// Offers a request. Admission control runs here: a closed server,
    /// an (almost-)spent deadline, or a full queue shed the request
    /// *synchronously* with the reason — nothing is buffered beyond the
    /// bounded queue.
    pub fn submit(&self, req: Request) -> Result<Ticket, Rejected> {
        let inner = &self.inner;
        inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        if inner.closed.load(Ordering::Acquire) {
            inner
                .counters
                .rejected_closed
                .fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::ShuttingDown);
        }
        // The control is created at submit so the deadline covers queue
        // wait, and as a child of the root so shutdown reaches it.
        let ctrl = match req.deadline.or(inner.cfg.default_deadline) {
            Some(budget) => inner.root.child_with_timeout(budget),
            None => inner.root.child(),
        };
        if let Some(remaining) = ctrl.remaining() {
            if remaining <= inner.cfg.min_headroom {
                inner.counters.shed_expired.fetch_add(1, Ordering::Relaxed);
                return Err(Rejected::Expired { remaining });
            }
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = mpsc::channel();
        let deadline = ctrl.deadline();
        let queued = Queued {
            hg: req.hg,
            job: req.job,
            ctrl,
            reply,
            enqueued: Instant::now(),
            id,
        };
        match self.queue.try_push(deadline, queued) {
            Ok(()) => Ok(Ticket { id, rx }),
            Err(PushError::Full(_)) => {
                inner.counters.shed_overload.fetch_add(1, Ordering::Relaxed);
                Err(Rejected::Overloaded {
                    queue_depth: inner.cfg.queue_depth.max(1),
                })
            }
            Err(PushError::Closed(_)) => {
                inner
                    .counters
                    .rejected_closed
                    .fetch_add(1, Ordering::Relaxed);
                Err(Rejected::ShuttingDown)
            }
        }
    }

    /// Counter snapshot (cheap; callable at any time).
    pub fn stats(&self) -> ServiceStats {
        self.inner.counters.snapshot()
    }

    /// Shared-table hub counters.
    pub fn hub_snapshot(&self) -> HubSnapshot {
        self.inner.hub.snapshot()
    }

    /// Stops accepting, **cancels** every queued and in-flight request
    /// through the control chain, waits for the executors to finish
    /// delivering (cancellation) responses, and returns the final stats.
    pub fn shutdown(self) -> ServiceStats {
        self.halt(true)
    }

    /// Graceful variant of [`Self::shutdown`]: stops accepting but lets
    /// queued and in-flight requests run to their natural verdicts.
    pub fn drain(self) -> ServiceStats {
        self.halt(false)
    }

    /// Closes admission *without* stopping the executors: subsequent
    /// submits shed with [`Rejected::ShuttingDown`] while queued and
    /// in-flight requests run to their natural verdicts. First phase of
    /// a graceful frontend drain — follow with [`Self::halt`] (or
    /// [`Self::drain`]) once attached clients have been seen off.
    pub fn begin_drain(&self) {
        self.inner.closed.store(true, Ordering::Release);
    }

    /// Closes admission **and** cancels every queued and in-flight
    /// request through the control chain, without stopping the
    /// executors: blocked [`Ticket::wait`]s resolve to
    /// [`Outcome::Cancelled`] promptly. First phase of a frontend
    /// shutdown — follow with [`Self::halt`] (or [`Self::shutdown`]).
    pub fn begin_shutdown(&self) {
        self.inner.closed.store(true, Ordering::Release);
        self.inner.root.cancel();
    }

    /// Full stop through a shared reference (for frontends holding the
    /// server behind an `Arc`): closes admission, cancels when `cancel`,
    /// closes the queue, joins the executors, and returns the final
    /// stats. Idempotent — later calls (and the drop guard) see the
    /// executor list already drained and return immediately.
    pub fn halt(&self, cancel: bool) -> ServiceStats {
        self.stop(cancel);
        self.inner.counters.snapshot()
    }

    fn stop(&self, cancel: bool) {
        self.inner.closed.store(true, Ordering::Release);
        if cancel {
            self.inner.root.cancel();
        }
        // Closing the queue lets executors drain the backlog, then stop.
        self.queue.close();
        let handles: Vec<_> = {
            let mut ex = self.executors.lock().unwrap_or_else(|e| e.into_inner());
            ex.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    /// Dropping the handle shuts the server down (cancelling, like
    /// [`Self::shutdown`]) — a `Server` never leaks detached executors.
    fn drop(&mut self) {
        self.stop(true);
    }
}

impl Inner {
    /// Builds the solver for one checkout: the configured template with
    /// the request's shared tables — and the shared pool, when the
    /// server runs one — attached.
    fn solver_for(&self, tables: SharedTables) -> LogK {
        let mut solver = self.cfg.solver.clone().with_shared_tables(tables);
        if let Some(pool) = &self.pool {
            solver.variant = Variant::Parallel;
            solver = solver.with_pool(Arc::clone(pool));
        }
        solver
    }

    /// Width probes a minimal-width sweep keeps in flight: the
    /// configured speculation, capped at the pool's worker count when
    /// one is running (beyond that, parallel probe solves serialise on
    /// the pool and speculation only burns deadline slices).
    fn effective_speculation(&self) -> usize {
        match self.cfg.workers {
            0 => self.cfg.speculation,
            w => self.cfg.speculation.min(w),
        }
    }

    /// Runs one request to a verdict (the panic-unsafe part wrapped by
    /// `execute_one`'s `catch_unwind`).
    fn solve(&self, q: &Queued) -> Outcome {
        match q.job {
            Job::Decide { k } => {
                let (hg, tables) = self.hub.checkout(&q.hg, k);
                match self.solver_for(tables).decompose(&hg, k, &q.ctrl) {
                    Ok(witness) => Outcome::Decided { k, witness },
                    Err(Interrupted::Timeout) => Outcome::TimedOut,
                    Err(Interrupted::Cancelled) => Outcome::Cancelled,
                }
            }
            Job::MinimalWidth { k_max } => {
                // Canonicalise once so the sweep solves the instance the
                // per-width table pairs are bound to.
                let (hg, _) = self.hub.checkout(&q.hg, 1);
                let bounds = logk::width_bounds_racing(
                    &hg,
                    k_max,
                    &q.ctrl,
                    self.cfg.width_slice,
                    self.effective_speculation(),
                    |k| {
                        let (_, tables) = self.hub.checkout(&q.hg, k);
                        self.solver_for(tables)
                    },
                );
                let c = &self.counters;
                c.race_cancels
                    .fetch_add(bounds.race.race_cancels, Ordering::Relaxed);
                c.speculative_wasted
                    .fetch_add(bounds.race.speculative_wasted, Ordering::Relaxed);
                Outcome::Width(bounds)
            }
            Job::Race { k } => {
                let (hg, tables) = self.hub.checkout(&q.hg, k);
                let threads = self.cfg.workers.max(1);
                let registry = Portfolio::full(threads).with_shared_tables(tables);
                let c = &self.counters;
                c.races.fetch_add(1, Ordering::Relaxed);
                let out = registry.race(&hg, k, &q.ctrl);
                c.race_cancels
                    .fetch_add(out.stats.race_cancels, Ordering::Relaxed);
                c.speculative_wasted
                    .fetch_add(out.stats.speculative_wasted, Ordering::Relaxed);
                match out.verdict {
                    Ok(witness) => {
                        let winner = out.winner.expect("definitive verdicts name their engine");
                        c.races_won_by[winner.index()].fetch_add(1, Ordering::Relaxed);
                        Outcome::Raced { k, winner, witness }
                    }
                    Err(Interrupted::Timeout) => Outcome::TimedOut,
                    Err(Interrupted::Cancelled) => Outcome::Cancelled,
                }
            }
        }
    }

    /// Registers a dequeued request in the coalescing registry, or parks
    /// it on the in-flight solve already answering its exact question.
    fn coalesce_claim(&self, key: CoalesceKey, q: Queued, queue_wait: Duration) -> Claim {
        let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        match map.get_mut(&key) {
            Some(entry) if same_instance(&entry.hg, &q.hg) => {
                entry.waiters.push(Waiter {
                    q,
                    queue_wait,
                    attached: Instant::now(),
                });
                Claim::Attached
            }
            Some(_) => Claim::Standalone(q),
            None => {
                map.insert(
                    key,
                    InflightEntry {
                        hg: Arc::clone(&q.hg),
                        waiters: Vec::new(),
                    },
                );
                Claim::Lead(q)
            }
        }
    }

    /// Unregisters a finished leader, collecting the waiters that
    /// attached while it solved.
    fn coalesce_finish(&self, key: &CoalesceKey) -> Vec<Waiter> {
        let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        map.remove(key).map(|e| e.waiters).unwrap_or_default()
    }
}

/// Executor main loop: dequeue most-urgent-first, execute, repeat until
/// the queue closes and drains.
fn run_executor(inner: &Arc<Inner>, queue: &Arc<DeadlineQueue<Queued>>) {
    while let Some(q) = queue.pop() {
        execute_one(inner, q);
    }
}

/// Runs one dequeued request: pre-flight deadline check, coalescing
/// claim, panic-contained execution with retries, accounting, reply.
///
/// # Coalescing
///
/// After pre-flight, the request claims its `(fingerprint, job)` slot in
/// the in-flight registry. A request whose exact question is already
/// being solved parks as a *waiter* and this call returns — the leader's
/// executor delivers its reply. The leader solves, unregisters, and:
///
/// * a **shareable** verdict (a definitive decision, race win, or
///   completed sweep — sound facts about the instance, independent of
///   whose deadline computed them) is broadcast to every waiter, each
///   counted in `coalesced` and classified terminally like any request;
/// * a **non-shareable** verdict (timeout, cancellation, panic — those
///   are facts about the *leader's* run, not the instance) is delivered
///   to the leader alone, and the first waiter whose control is still
///   live is promoted to solve under its own deadline; dead waiters are
///   shed terminally along the way. Promoted leaders run unregistered —
///   new duplicates arriving meanwhile simply elect a fresh leader.
///
/// Every waiter is answered before the leader's `execute_one` returns,
/// so draining the queue drains the registry too (the drain invariant:
/// `admitted = completed + timed_out + cancelled + failed` holds with
/// coalescing exactly as without).
fn execute_one(inner: &Arc<Inner>, q: Queued) {
    let c = &inner.counters;
    c.admitted.fetch_add(1, Ordering::Relaxed);
    let queue_wait = q.enqueued.elapsed();
    add_duration(&c.queue_wait_ns, queue_wait);

    // Pre-flight: the deadline may have expired (or shutdown fired)
    // while the request sat queued — don't start a doomed solve. With
    // EDF ordering, expired requests are the most urgent of all, so a
    // backlog of hopeless work is shed here in one cheap pass instead of
    // interleaving with live solves.
    match q.ctrl.checkpoint() {
        Ok(()) => {}
        Err(Interrupted::Timeout) => {
            c.expired_in_queue.fetch_add(1, Ordering::Relaxed);
            deliver(c, q, Outcome::TimedOut, queue_wait, Duration::ZERO, 0);
            return;
        }
        Err(Interrupted::Cancelled) => {
            deliver(c, q, Outcome::Cancelled, queue_wait, Duration::ZERO, 0);
            return;
        }
    }

    let key = (fingerprint(&q.hg), q.job);
    let (mut lead, mut registered) = match inner.coalesce_claim(key, q, queue_wait) {
        Claim::Attached => return,
        Claim::Lead(q) => (q, true),
        Claim::Standalone(q) => (q, false),
    };
    let mut lead_wait = queue_wait;
    let mut waiters: Vec<Waiter> = Vec::new();

    loop {
        let started = Instant::now();
        let (outcome, retries) = solve_contained(inner, &lead);
        let solve_time = started.elapsed();
        add_duration(&c.solve_ns, solve_time);
        if registered {
            waiters.extend(inner.coalesce_finish(&key));
            registered = false;
        }
        let share = shareable(&outcome);
        let shared = outcome.clone();
        deliver(c, lead, outcome, lead_wait, solve_time, retries);
        if waiters.is_empty() {
            return;
        }
        if share {
            for w in waiters {
                c.coalesced.fetch_add(1, Ordering::Relaxed);
                deliver(
                    c,
                    w.q,
                    shared.clone(),
                    w.queue_wait,
                    w.attached.elapsed(),
                    0,
                );
            }
            return;
        }
        // Non-shareable: promote the first waiter still worth solving
        // for; shed the ones whose controls already fired.
        loop {
            let w = waiters.remove(0);
            match w.q.ctrl.checkpoint() {
                Ok(()) => {
                    lead = w.q;
                    lead_wait = w.queue_wait;
                    break;
                }
                Err(e) => {
                    let o = match e {
                        Interrupted::Timeout => {
                            c.expired_in_queue.fetch_add(1, Ordering::Relaxed);
                            Outcome::TimedOut
                        }
                        Interrupted::Cancelled => Outcome::Cancelled,
                    };
                    deliver(c, w.q, o, w.queue_wait, w.attached.elapsed(), 0);
                    if waiters.is_empty() {
                        return;
                    }
                }
            }
        }
    }
}

/// Panic-contained execution with retries (the solve loop previously
/// inline in `execute_one`, shared by leaders and promoted waiters).
fn solve_contained(inner: &Arc<Inner>, q: &Queued) -> (Outcome, u32) {
    let c = &inner.counters;
    let mut retries = 0u32;
    loop {
        match panic::catch_unwind(AssertUnwindSafe(|| inner.solve(q))) {
            Ok(outcome) => return (outcome, retries),
            Err(payload) => {
                // A panic *while containing this panic* (exotic payload
                // Drop, poisoned accounting) must abort the process, not
                // unwind the executor into silence.
                let guard = AbortOnPanic;
                let message = panic_message(payload.as_ref());
                drop(payload);
                c.panicked.fetch_add(1, Ordering::Relaxed);
                let retry = retries < inner.cfg.max_retries && q.ctrl.checkpoint().is_ok();
                std::mem::forget(guard);
                if retry {
                    retries += 1;
                    c.retried.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                return (Outcome::Panicked { message }, retries);
            }
        }
    }
}

/// Whether a leader's verdict is a sound answer for *every* request
/// asking the same question — definitive decisions, race wins and
/// completed sweeps are facts about the instance; timeouts,
/// cancellations and panics are facts about one run.
fn shareable(o: &Outcome) -> bool {
    match o {
        Outcome::Decided { .. } | Outcome::Raced { .. } => true,
        Outcome::Width(b) => b.exact() || b.interrupted.is_none(),
        Outcome::TimedOut | Outcome::Cancelled | Outcome::Panicked { .. } => false,
    }
}

/// Classifies `outcome` into its terminal counter and sends the reply.
fn deliver(
    c: &ServiceCounters,
    q: Queued,
    outcome: Outcome,
    queue_wait: Duration,
    solve_time: Duration,
    retries: u32,
) {
    let class = match &outcome {
        Outcome::Decided { .. } | Outcome::Raced { .. } => &c.completed,
        // A sweep counts as completed when it proved what it was asked
        // (exact) or ran out of widths, as timed-out/cancelled when the
        // interruption cut it short of that.
        Outcome::Width(b) => match (b.exact(), b.interrupted) {
            (true, _) | (false, None) => &c.completed,
            (false, Some(Interrupted::Timeout)) => &c.timed_out,
            (false, Some(Interrupted::Cancelled)) => &c.cancelled,
        },
        Outcome::TimedOut => &c.timed_out,
        Outcome::Cancelled => &c.cancelled,
        Outcome::Panicked { .. } => &c.failed,
    };
    class.fetch_add(1, Ordering::Relaxed);

    // A dropped ticket just means nobody is waiting; not an error.
    let _ = q.reply.send(Response {
        id: q.id,
        outcome,
        queue_wait,
        solve_time,
        retries,
    });
}

/// Aborts the process if dropped; disarm with [`std::mem::forget`].
struct AbortOnPanic;

impl Drop for AbortOnPanic {
    fn drop(&mut self) {
        eprintln!("htdserve: panic while containing a panic; aborting");
        process::abort();
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
