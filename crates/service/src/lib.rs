//! `htdserve` — decomposition-as-a-service over the `log-k-decomp`
//! engines.
//!
//! A [`Server`] turns the one-shot solvers of [`logk`] into a
//! long-running, failure-isolated service:
//!
//! * **Bounded admission** — requests enter a bounded queue;
//!   [`Server::submit`] sheds synchronously ([`Rejected::Overloaded`],
//!   [`Rejected::Expired`]) instead of buffering unboundedly.
//! * **Deadline scoping** — each request runs under a child of the
//!   server's root [`decomp::Control`], created at submit so the
//!   deadline covers queue wait; shutdown cancels the root and every
//!   queued/in-flight solve stops cooperatively at its next checkpoint.
//! * **Panic containment** — a panicking solve yields
//!   [`Outcome::Panicked`] for *that* request (after bounded retries);
//!   the executors, the shared pool and every other request keep going.
//! * **Shared warmth** — content-equal instances are canonicalised by
//!   the [`TableHub`] so concurrent and repeated requests share
//!   width-matched subproblem caches and `det-k-decomp` memos, without
//!   ever sharing tables across *different* instances or widths (which
//!   would be unsound).
//! * **Anytime answers** — [`Job::MinimalWidth`] returns
//!   [`logk::WidthBounds`]: whatever the sweep proved before the
//!   deadline, not nothing. With [`ServerConfig::speculation`] `> 1`
//!   the sweep races adjacent widths concurrently
//!   ([`logk::width_bounds_racing`]) and cancels probes a neighbour's
//!   verdict makes redundant.
//! * **Portfolio racing** — [`Job::Race`] answers `hw(H) ≤ k` by
//!   racing every engine in the workspace ([`portfolio::Portfolio`]);
//!   the first definitive verdict cancels the losers, and
//!   [`ServiceStats::races_won_by`] records which engine carries which
//!   workload.
//! * **In-flight coalescing** — admitted requests asking the exact
//!   question of the exact instance another executor is *currently*
//!   solving park on that solve and share its verdict (one solve, N
//!   replies; [`ServiceStats::coalesced`]). Only sound, run-independent
//!   verdicts are shared — a leader's timeout promotes a live waiter
//!   instead of condemning it.
//!
//! ```no_run
//! use std::sync::Arc;
//! use std::time::Duration;
//! use htdserve::{Request, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default());
//! let hg = Arc::new(hypergraph::Hypergraph::from_edge_lists(&[
//!     vec![0, 1, 2],
//!     vec![2, 3],
//!     vec![3, 4, 5],
//!     vec![5, 0],
//! ]));
//! let ticket = server
//!     .submit(Request::decide(hg, 2).with_deadline(Duration::from_secs(5)))
//!     .expect("admitted");
//! let response = ticket.wait();
//! println!("{:?}", response.outcome);
//! server.shutdown();
//! ```
//!
//! With the `fault-injection` feature (see [`decomp::faults`]) the
//! isolation properties above are *tested*, not just claimed: the suite
//! injects deterministic panics, stalls and spurious cancellations at
//! named solver checkpoints and asserts the blast radius stays one
//! request wide.

pub mod queue;
pub mod server;
pub mod stats;
pub mod tables;

pub use server::{Job, Outcome, Rejected, Request, Response, Server, ServerConfig, Ticket};
pub use stats::ServiceStats;
pub use tables::{HubSnapshot, TableHub};
