//! Bounded, deadline-ordered admission queue.
//!
//! PR 6 queued admitted requests FIFO through an `mpsc::sync_channel`,
//! which is exactly wrong under deadline pressure: a burst of
//! short-deadline requests parks behind earlier long-deadline work and
//! expires in the queue while the executors burn time on requests that
//! could have afforded to wait. `DeadlineQueue` replaces it with
//! earliest-deadline-first ordering:
//!
//! * entries are ordered by their control's **effective deadline**
//!   (parent deadlines already folded in), earliest first;
//! * deadline-less entries sort after every deadline and FIFO among
//!   themselves (submission sequence breaks all ties, so ordering is
//!   total and starvation-free for equal deadlines);
//! * capacity is a hard bound enforced at push — the submit path sheds
//!   with `Overloaded` exactly as the old bounded channel did;
//! * already-expired entries are the *first* thing an executor sees
//!   (an expired deadline is the earliest deadline of all), so hopeless
//!   requests are shed at dequeue in O(log n) each, before any solve
//!   starts, instead of lingering behind live work.
//!
//! The queue is a plain `Mutex<BinaryHeap>` + `Condvar`. Admission and
//! dequeue are O(log n) with one uncontended lock each; the executors'
//! solve time dwarfs that by orders of magnitude (the queue hand-off
//! replaced an mpsc channel that also took a lock per transfer).

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Why [`DeadlineQueue::try_push`] refused an item.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushError<T> {
    /// The queue holds `capacity` items; nothing was enqueued.
    Full(T),
    /// [`DeadlineQueue::close`] was called; nothing was enqueued.
    Closed(T),
}

struct Entry<T> {
    /// Effective deadline; `None` sorts after every `Some`.
    deadline: Option<Instant>,
    /// Submission sequence number: total-order tie-break (FIFO among
    /// equal deadlines and among deadline-less entries).
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    /// `BinaryHeap` is a max-heap, so "greatest" must mean "dequeue
    /// next": earlier deadlines (and, within a deadline class, earlier
    /// sequence numbers) compare *greater*.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let urgency = match (self.deadline, other.deadline) {
            (Some(a), Some(b)) => b.cmp(&a),
            (Some(_), None) => std::cmp::Ordering::Greater,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (None, None) => std::cmp::Ordering::Equal,
        };
        urgency.then_with(|| other.seq.cmp(&self.seq))
    }
}

struct State<T> {
    heap: BinaryHeap<Entry<T>>,
    closed: bool,
    next_seq: u64,
}

/// Bounded earliest-deadline-first queue (see the module docs).
pub(crate) struct DeadlineQueue<T> {
    state: Mutex<State<T>>,
    /// Signalled on push and on close.
    ready: Condvar,
    capacity: usize,
}

impl<T> DeadlineQueue<T> {
    /// An open queue holding at most `capacity.max(1)` items.
    pub(crate) fn new(capacity: usize) -> Self {
        DeadlineQueue {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                closed: false,
                next_seq: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item` under `deadline`, or sheds it synchronously.
    pub(crate) fn try_push(&self, deadline: Option<Instant>, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.heap.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        s.heap.push(Entry {
            deadline,
            seq,
            item,
        });
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the most urgent item; `None` once the queue is closed
    /// **and** drained (items enqueued before `close` are still handed
    /// out — the drain path depends on that).
    pub(crate) fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(e) = s.heap.pop() {
                return Some(e.item);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: pushes fail from now on, and every blocked and
    /// future `pop` returns `None` once the backlog is drained.
    pub(crate) fn close(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.closed = true;
        drop(s);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn orders_by_deadline_then_fifo() {
        let q = DeadlineQueue::new(8);
        let t0 = Instant::now();
        let at = |ms| Some(t0 + Duration::from_millis(ms));
        q.try_push(at(300), "late").unwrap();
        q.try_push(None, "never-a").unwrap();
        q.try_push(at(100), "early").unwrap();
        q.try_push(None, "never-b").unwrap();
        q.try_push(at(200), "mid").unwrap();
        q.close();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["early", "mid", "late", "never-a", "never-b"]);
    }

    #[test]
    fn equal_deadlines_stay_fifo() {
        let q = DeadlineQueue::new(8);
        let d = Some(Instant::now() + Duration::from_millis(50));
        for i in 0..5 {
            q.try_push(d, i).unwrap();
        }
        q.close();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn capacity_sheds_and_close_rejects() {
        let q = DeadlineQueue::new(2);
        q.try_push(None, 1).unwrap();
        q.try_push(None, 2).unwrap();
        assert_eq!(q.try_push(None, 3), Err(PushError::Full(3)));
        q.close();
        assert_eq!(q.try_push(None, 4), Err(PushError::Closed(4)));
        // The backlog survives the close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(DeadlineQueue::<u32>::new(2));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(None, 7).unwrap();
        q.close();
        let mut got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, [None, None, Some(7)]);
    }
}
