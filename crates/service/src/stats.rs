//! Service-level counters.
//!
//! One `ServiceCounters` value lives inside the server and is bumped
//! lock-free from the submit path and the executor threads; callers read
//! consistent-enough [`ServiceStats`] snapshots at any time (each field
//! is individually atomic — a snapshot taken mid-request may be ahead on
//! one counter and behind on another, which is fine for monitoring).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Internal atomic counters; see [`ServiceStats`] for field semantics.
#[derive(Debug, Default)]
pub(crate) struct ServiceCounters {
    pub submitted: AtomicU64,
    pub shed_overload: AtomicU64,
    pub shed_expired: AtomicU64,
    pub rejected_closed: AtomicU64,
    pub admitted: AtomicU64,
    pub expired_in_queue: AtomicU64,
    pub completed: AtomicU64,
    pub timed_out: AtomicU64,
    pub cancelled: AtomicU64,
    pub panicked: AtomicU64,
    pub failed: AtomicU64,
    pub retried: AtomicU64,
    pub coalesced: AtomicU64,
    pub races: AtomicU64,
    pub races_won_by: [AtomicU64; portfolio::EngineKind::COUNT],
    pub race_cancels: AtomicU64,
    pub speculative_wasted: AtomicU64,
    pub queue_wait_ns: AtomicU64,
    pub solve_ns: AtomicU64,
}

impl ServiceCounters {
    pub(crate) fn snapshot(&self) -> ServiceStats {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServiceStats {
            submitted: ld(&self.submitted),
            shed_overload: ld(&self.shed_overload),
            shed_expired: ld(&self.shed_expired),
            rejected_closed: ld(&self.rejected_closed),
            admitted: ld(&self.admitted),
            expired_in_queue: ld(&self.expired_in_queue),
            completed: ld(&self.completed),
            timed_out: ld(&self.timed_out),
            cancelled: ld(&self.cancelled),
            panicked: ld(&self.panicked),
            failed: ld(&self.failed),
            retried: ld(&self.retried),
            coalesced: ld(&self.coalesced),
            races: ld(&self.races),
            races_won_by: std::array::from_fn(|i| ld(&self.races_won_by[i])),
            race_cancels: ld(&self.race_cancels),
            speculative_wasted: ld(&self.speculative_wasted),
            queue_wait: Duration::from_nanos(ld(&self.queue_wait_ns)),
            solve_time: Duration::from_nanos(ld(&self.solve_ns)),
        }
    }
}

/// Bumps `counter` by `d` (saturating at `u64::MAX` nanoseconds — ~584
/// years of aggregate time, i.e. never in practice).
pub(crate) fn add_duration(counter: &AtomicU64, d: Duration) {
    let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    counter.fetch_add(ns, Ordering::Relaxed);
}

/// Point-in-time snapshot of a server's request accounting.
///
/// The request-count invariants (once the server has drained):
///
/// * `submitted = shed_overload + shed_expired + rejected_closed +
///   admitted`, and
/// * `admitted = completed + timed_out + cancelled + failed`.
///
/// [`Self::panicked`] counts *panic events contained* (per attempt), not
/// requests: a request that panics once and succeeds on retry moves
/// `panicked`, `retried` *and* `completed`. [`Self::failed`] counts
/// requests whose final outcome was a panic verdict.
///
/// Deadline expiry is split by *where* it was caught:
/// [`Self::shed_expired`] counts requests shed **at submit** (they were
/// never admitted), while [`Self::expired_in_queue`] counts admitted
/// requests whose deadline passed **while queued** — those are shed at
/// the executor's pre-flight checkpoint without starting a solve, and
/// their terminal outcome is `TimedOut`, so `expired_in_queue ≤
/// timed_out` always (the difference is requests that expired
/// mid-solve).
///
/// Coalescing does not bend the invariants: a coalesced request is still
/// an *admitted* request and still lands in exactly one terminal class
/// (it shares the leader's verdict, so in practice `completed`) —
/// [`Self::coalesced`] only records that its verdict was computed once
/// rather than per-copy, hence `coalesced ≤ completed`.
///
/// Race accounting ([`Self::races`], [`Self::races_won_by`],
/// [`Self::race_cancels`], [`Self::speculative_wasted`]) aggregates over
/// both racing shapes the server runs: the multi-engine portfolio behind
/// [`crate::Job::Race`], and the speculative width sweep behind
/// [`crate::Job::MinimalWidth`] when the configured speculation admits
/// it (the sweep contributes cancel/waste counts but no `races` /
/// `races_won_by` entries — its racers are widths, not engines).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests offered to [`crate::Server::submit`].
    pub submitted: u64,
    /// Requests shed at admission because the queue was full.
    pub shed_overload: u64,
    /// Requests shed at admission because their deadline left less than
    /// the configured headroom (or had already passed).
    pub shed_expired: u64,
    /// Requests rejected because the server was shutting down.
    pub rejected_closed: u64,
    /// Requests dequeued by an executor (admission succeeded).
    pub admitted: u64,
    /// Admitted requests whose deadline had already passed at dequeue;
    /// shed at pre-flight (no solve started). A subset of
    /// [`Self::timed_out`].
    pub expired_in_queue: u64,
    /// Requests that ran to a verdict ([`crate::Outcome::Decided`], or a
    /// [`crate::Outcome::Width`] sweep that was not cut short).
    pub completed: u64,
    /// Requests whose final outcome was a deadline expiry.
    pub timed_out: u64,
    /// Requests whose final outcome was a cancellation (their own
    /// control's, or the server-wide cancel on shutdown).
    pub cancelled: u64,
    /// Panic events contained by an executor (per attempt; see type docs).
    pub panicked: u64,
    /// Requests whose final outcome was [`crate::Outcome::Panicked`].
    pub failed: u64,
    /// Re-executions after a contained panic.
    pub retried: u64,
    /// Admitted requests answered from another in-flight request's
    /// verdict (same instance content, same job) instead of their own
    /// solve. See the type docs; always `≤ completed`.
    pub coalesced: u64,
    /// Portfolio races run ([`crate::Job::Race`] solves that reached the
    /// racing coordinator; pre-flight sheds don't count).
    pub races: u64,
    /// Race wins per engine, indexed by
    /// [`portfolio::EngineKind::index`]. Sums to the number of races
    /// that produced a definitive verdict (`≤ races`).
    pub races_won_by: [u64; portfolio::EngineKind::COUNT],
    /// Racers (portfolio engines or speculative sweep probes) cancelled
    /// because a concurrent verdict made them redundant.
    pub race_cancels: u64,
    /// Racers that ran to completion only to find their verdict
    /// redundant — the true overhead of speculation (cancelled racers
    /// stop early; wasted ones burned their full slice).
    pub speculative_wasted: u64,
    /// Aggregate time requests spent queued between admission and
    /// execution start.
    pub queue_wait: Duration,
    /// Aggregate wall-clock time executors spent solving (including
    /// retries).
    pub solve_time: Duration,
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted {} | shed {}+{} | closed {} | admitted {} | \
             completed {} timed-out {} (in-queue {}) cancelled {} failed {} | \
             panics {} retries {} | coalesced {} | races {} (cancels {} wasted {}{}) | \
             queue-wait {:?} solve {:?}",
            self.submitted,
            self.shed_overload,
            self.shed_expired,
            self.rejected_closed,
            self.admitted,
            self.completed,
            self.timed_out,
            self.expired_in_queue,
            self.cancelled,
            self.failed,
            self.panicked,
            self.retried,
            self.coalesced,
            self.races,
            self.race_cancels,
            self.speculative_wasted,
            {
                let mut wins = String::new();
                for (i, &n) in self.races_won_by.iter().enumerate() {
                    if n > 0 {
                        let kind = portfolio::EngineKind::from_index(i).expect("array is sized by COUNT");
                        wins.push_str(&format!("; {} x{}", kind.name(), n));
                    }
                }
                wins
            },
            self.queue_wait,
            self.solve_time,
        )
    }
}
