//! CQ evaluation guided by a hypertree decomposition — the application the
//! paper's introduction motivates: an HD of width k reduces any CQ to an
//! acyclic instance solvable by Yannakakis' algorithm with joins of at
//! most k relations per decomposition node.

use decomp::{Decomposition, NodeId};
use hypergraph::Edge;

use crate::query::{ConjunctiveQuery, Database};
use crate::relation::{Attr, Relation};

/// Naive baseline: left-deep join of all atom relations. Exponential
/// intermediate results on cyclic queries — the foil for Yannakakis.
pub fn evaluate_naive(q: &ConjunctiveQuery, db: &Database) -> Result<Relation, String> {
    let mut acc = Relation::unit();
    for atom in &q.atoms {
        acc = acc.join(&db.atom_relation(atom)?);
    }
    Ok(acc.canonical())
}

/// Full enumeration via Yannakakis' algorithm over the decomposition:
/// per-node joins (≤ width atoms), full semijoin reduction (up then down),
/// then one bottom-up join pass. Returns the set of satisfying assignments
/// over all query variables.
pub fn evaluate_yannakakis(
    q: &ConjunctiveQuery,
    db: &Database,
    d: &Decomposition,
) -> Result<Relation, String> {
    let reduced = reduce(q, db, d)?;
    // Bottom-up join along the tree.
    let mut joined: Vec<Option<Relation>> = vec![None; d.num_nodes()];
    for u in d.postorder() {
        let mut acc = reduced[u.0 as usize].clone();
        for &c in &d.node(u).children {
            acc = acc.join(joined[c.0 as usize].as_ref().expect("postorder"));
        }
        joined[u.0 as usize] = Some(acc);
    }
    let root = joined[d.root().0 as usize].take().expect("root joined");
    Ok(root.canonical())
}

/// Boolean evaluation: satisfiability only, skipping the final join pass
/// (linear in the data, as in the classic algorithm).
pub fn is_satisfiable(
    q: &ConjunctiveQuery,
    db: &Database,
    d: &Decomposition,
) -> Result<bool, String> {
    let reduced = reduce(q, db, d)?;
    Ok(!reduced[d.root().0 as usize].is_empty())
}

/// Builds the per-node relations and performs the two semijoin passes.
fn reduce(q: &ConjunctiveQuery, db: &Database, d: &Decomposition) -> Result<Vec<Relation>, String> {
    // Atom relations, indexed like the hypergraph's edges.
    let atom_rels: Vec<Relation> = q
        .atoms
        .iter()
        .map(|a| db.atom_relation(a))
        .collect::<Result<_, _>>()?;

    // Per-node relation: ⋈ λ(u) projected onto χ(u).
    let mut rels: Vec<Relation> = Vec::with_capacity(d.num_nodes());
    for u in 0..d.num_nodes() {
        let node = d.node(NodeId(u as u32));
        let mut acc = Relation::unit();
        for &Edge(e) in &node.lambda {
            acc = acc.join(&atom_rels[e as usize]);
        }
        let chi_attrs: Vec<Attr> = node.chi.iter().map(|v| v.0).collect();
        // χ(u) ⊆ ⋃λ(u) for valid decompositions, so the projection is
        // well-defined; `positions_of` would panic otherwise.
        rels.push(acc.project(&chi_attrs));
    }

    // Enforce every atom at a covering node (condition (1) of HDs
    // guarantees one exists).
    'atoms: for (e, atom_rel) in atom_rels.iter().enumerate() {
        let vars = &q.atoms[e].vars;
        for u in d.preorder() {
            let chi = &d.node(u).chi;
            if vars.iter().all(|&v| chi.contains(hypergraph::Vertex(v))) {
                rels[u.0 as usize] = rels[u.0 as usize].semijoin(atom_rel);
                continue 'atoms;
            }
        }
        return Err(format!(
            "decomposition does not cover atom {}",
            q.atoms[e].relation
        ));
    }

    // Bottom-up semijoin pass.
    for u in d.postorder() {
        for &c in &d.node(u).children {
            let child = rels[c.0 as usize].clone();
            rels[u.0 as usize] = rels[u.0 as usize].semijoin(&child);
        }
    }
    // Top-down semijoin pass.
    for u in d.preorder() {
        let parent = rels[u.0 as usize].clone();
        for &c in &d.node(u).children {
            rels[c.0 as usize] = rels[c.0 as usize].semijoin(&parent);
        }
    }
    Ok(rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::Control;
    use logk::LogK;

    fn decompose(q: &ConjunctiveQuery, k: usize) -> Decomposition {
        let hg = q.hypergraph();
        LogK::sequential()
            .decompose(&hg, k, &Control::unlimited())
            .unwrap()
            .expect("query decomposable at this width")
    }

    #[test]
    fn triangle_query_matches_naive() {
        let q = ConjunctiveQuery::parse("r(x,y), s(y,z), t(z,x)").unwrap();
        let mut db = Database::new();
        db.insert("r", vec![vec![1, 2], vec![2, 3], vec![4, 5]]);
        db.insert("s", vec![vec![2, 3], vec![3, 1], vec![5, 6]]);
        db.insert("t", vec![vec![3, 1], vec![1, 2], vec![6, 4]]);
        let d = decompose(&q, 2);
        let naive = evaluate_naive(&q, &db).unwrap();
        let yann = evaluate_yannakakis(&q, &db, &d).unwrap();
        assert_eq!(naive, yann);
        assert!(!naive.is_empty());
        assert!(is_satisfiable(&q, &db, &d).unwrap());
    }

    #[test]
    fn empty_answer_detected() {
        let q = ConjunctiveQuery::parse("r(x,y), s(y,z)").unwrap();
        let mut db = Database::new();
        db.insert("r", vec![vec![1, 2]]);
        db.insert("s", vec![vec![3, 4]]); // no joining value
        let d = decompose(&q, 1);
        assert!(!is_satisfiable(&q, &db, &d).unwrap());
        assert!(evaluate_yannakakis(&q, &db, &d).unwrap().is_empty());
        assert!(evaluate_naive(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn chain_query_matches_naive() {
        let q = ConjunctiveQuery::parse("a(x,y), b(y,z), c(z,w)").unwrap();
        let mut db = Database::new();
        db.insert("a", vec![vec![1, 2], vec![9, 2], vec![5, 5]]);
        db.insert("b", vec![vec![2, 3], vec![5, 5]]);
        db.insert("c", vec![vec![3, 4], vec![5, 5], vec![3, 7]]);
        let d = decompose(&q, 1);
        assert_eq!(
            evaluate_naive(&q, &db).unwrap(),
            evaluate_yannakakis(&q, &db, &d).unwrap()
        );
    }

    #[test]
    fn self_join_query() {
        let q = ConjunctiveQuery::parse("e(x,y), e(y,z)").unwrap();
        let mut db = Database::new();
        db.insert("e", vec![vec![1, 2], vec![2, 3], vec![3, 1]]);
        let d = decompose(&q, 1);
        let naive = evaluate_naive(&q, &db).unwrap();
        let yann = evaluate_yannakakis(&q, &db, &d).unwrap();
        assert_eq!(naive, yann);
        assert_eq!(naive.len(), 3); // 1-2-3, 2-3-1, 3-1-2
    }

    #[test]
    fn cycle5_random_data_matches_naive() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let q = ConjunctiveQuery::parse("r0(a,b), r1(b,c), r2(c,d), r3(d,e), r4(e,a)").unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut db = Database::new();
        for i in 0..5 {
            let tuples: Vec<Vec<u64>> = (0..40)
                .map(|_| vec![rng.random_range(0..6u64), rng.random_range(0..6u64)])
                .collect();
            db.insert(&format!("r{i}"), tuples);
        }
        let d = decompose(&q, 2);
        assert_eq!(
            evaluate_naive(&q, &db).unwrap(),
            evaluate_yannakakis(&q, &db, &d).unwrap()
        );
    }
}
