//! Mini relational engine: conjunctive-query evaluation guided by
//! hypertree decompositions.
//!
//! This crate demonstrates the downstream application that motivates the
//! paper: once an HD of low width is available, any CQ is evaluated in
//! polynomial time by Yannakakis' algorithm over the decomposition's join
//! tree (joins of at most *width* relations per node, then semijoin
//! reduction). See `examples/query_evaluation.rs` for the end-to-end flow
//! `CQ → hypergraph → log-k-decomp → Yannakakis`.
//!
//! * [`relation`] — set-semantics relations with join/semijoin/project;
//! * [`query`] — CQ parsing, query hypergraphs (`H_φ`), databases;
//! * [`yannakakis`] — HD-guided evaluation plus the naive-join baseline.

pub mod query;
pub mod relation;
pub mod yannakakis;

pub use query::{Atom, ConjunctiveQuery, Database};
pub use relation::{Attr, Relation, Value};
pub use yannakakis::{evaluate_naive, evaluate_yannakakis, is_satisfiable};
