//! Conjunctive queries, their hypergraphs, and databases.

use std::collections::HashMap;

use hypergraph::{Hypergraph, HypergraphBuilder};

use crate::relation::{Attr, Relation, Value};

/// One atom `R(x, y, …)` of a conjunctive query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Variables, as indices into [`ConjunctiveQuery::variables`].
    pub vars: Vec<Attr>,
}

/// A Boolean conjunctive query: a conjunction of atoms.
#[derive(Clone, Debug, Default)]
pub struct ConjunctiveQuery {
    /// Variable names; `Attr` values index into this vector.
    pub variables: Vec<String>,
    /// The atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Parses `"r1(x,y), r2(y,z)"`-style atom lists.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut q = ConjunctiveQuery::default();
        let mut var_ids: HashMap<String, Attr> = HashMap::new();
        for piece in split_atoms(text)? {
            let open = piece.find('(').ok_or("atom without '('")?;
            let name = piece[..open].trim();
            if name.is_empty() {
                return Err("empty relation name".into());
            }
            let close = piece.rfind(')').ok_or("atom without ')'")?;
            let vars: Vec<Attr> = piece[open + 1..close]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|v| {
                    *var_ids.entry(v.to_string()).or_insert_with(|| {
                        q.variables.push(v.to_string());
                        (q.variables.len() - 1) as Attr
                    })
                })
                .collect();
            if vars.is_empty() {
                return Err(format!("atom {name} has no variables"));
            }
            q.atoms.push(Atom {
                relation: name.to_string(),
                vars,
            });
        }
        if q.atoms.is_empty() {
            return Err("no atoms".into());
        }
        Ok(q)
    }

    /// The query hypergraph `H_φ`: vertices = variables, edges = atoms
    /// (Section 2 of the paper). Atom order matches edge-id order.
    pub fn hypergraph(&self) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for (i, atom) in self.atoms.iter().enumerate() {
            let names: Vec<&str> = atom
                .vars
                .iter()
                .map(|&v| self.variables[v as usize].as_str())
                .collect();
            b.add_edge(&format!("{}#{i}", atom.relation), &names);
        }
        // Variables are interned in first-occurrence order, matching Attr.
        b.build()
    }
}

fn split_atoms(text: &str) -> Result<Vec<&str>, String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.checked_sub(1).ok_or("unbalanced ')'")?,
            ',' if depth == 0 => {
                out.push(text[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err("unbalanced '('".into());
    }
    let last = text[start..].trim().trim_end_matches('.').trim();
    if !last.is_empty() {
        out.push(last);
    }
    Ok(out.into_iter().filter(|s| !s.is_empty()).collect())
}

/// A database: named relation instances. An atom `R(x,y)` is matched
/// against the instance stored under `R` with columns bound positionally.
#[derive(Clone, Default, Debug)]
pub struct Database {
    relations: HashMap<String, Vec<Vec<Value>>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (replaces) a relation instance.
    pub fn insert(&mut self, name: &str, tuples: Vec<Vec<Value>>) {
        self.relations.insert(name.to_string(), tuples);
    }

    /// Returns the tuples of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&Vec<Vec<Value>>> {
        self.relations.get(name)
    }

    /// Materialises an atom as a [`Relation`] over its variables.
    /// Repeated variables within an atom act as equality selections.
    pub fn atom_relation(&self, atom: &Atom) -> Result<Relation, String> {
        let tuples = self
            .relations
            .get(&atom.relation)
            .ok_or_else(|| format!("unknown relation {}", atom.relation))?;
        // Distinct variables, first-occurrence positions.
        let mut schema: Vec<Attr> = Vec::new();
        let mut first_pos: Vec<usize> = Vec::new();
        for (i, &v) in atom.vars.iter().enumerate() {
            if !schema.contains(&v) {
                schema.push(v);
                first_pos.push(i);
            }
        }
        let mut rows = Vec::new();
        'tuples: for t in tuples {
            if t.len() != atom.vars.len() {
                return Err(format!(
                    "arity mismatch for {}: tuple has {} values, atom has {} variables",
                    atom.relation,
                    t.len(),
                    atom.vars.len()
                ));
            }
            // Enforce repeated-variable equality.
            for (i, &v) in atom.vars.iter().enumerate() {
                let first = atom.vars.iter().position(|&x| x == v).expect("present");
                if t[i] != t[first] {
                    continue 'tuples;
                }
            }
            rows.push(first_pos.iter().map(|&p| t[p]).collect());
        }
        Ok(Relation::new(schema, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_and_builds_hypergraph() {
        let q = ConjunctiveQuery::parse("r1(x,y), r2(y,z), r3(z,x).").unwrap();
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.variables, vec!["x", "y", "z"]);
        let hg = q.hypergraph();
        assert_eq!(hg.num_edges(), 3);
        assert_eq!(hg.num_vertices(), 3);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ConjunctiveQuery::parse("").is_err());
        assert!(ConjunctiveQuery::parse("r1(x,y").is_err());
        assert!(ConjunctiveQuery::parse("r1()").is_err());
    }

    #[test]
    fn atom_relation_binds_positionally() {
        let q = ConjunctiveQuery::parse("r(x,y)").unwrap();
        let mut db = Database::new();
        db.insert("r", vec![vec![1, 2], vec![3, 4]]);
        let rel = db.atom_relation(&q.atoms[0]).unwrap();
        assert_eq!(rel.schema, vec![0, 1]);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn repeated_variables_select_equal_columns() {
        let q = ConjunctiveQuery::parse("r(x,x)").unwrap();
        let mut db = Database::new();
        db.insert("r", vec![vec![1, 1], vec![1, 2], vec![3, 3]]);
        let rel = db.atom_relation(&q.atoms[0]).unwrap();
        assert_eq!(rel.rows, vec![vec![1], vec![3]]);
    }

    #[test]
    fn missing_relation_is_an_error() {
        let q = ConjunctiveQuery::parse("r(x,y)").unwrap();
        let db = Database::new();
        assert!(db.atom_relation(&q.atoms[0]).is_err());
    }

    #[test]
    fn same_relation_twice_is_fine() {
        let q = ConjunctiveQuery::parse("e(x,y), e(y,z)").unwrap();
        let hg = q.hypergraph();
        assert_eq!(hg.num_edges(), 2);
        // Edge names are disambiguated by atom index.
        assert!(hg.edge_by_name("e#0").is_some());
        assert!(hg.edge_by_name("e#1").is_some());
    }
}
