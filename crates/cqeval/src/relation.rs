//! Set-semantics relations over integer domains, with the three operators
//! Yannakakis' algorithm needs: natural join, semijoin and projection.

use std::collections::{HashMap, HashSet};

/// An attribute (CQ variable) identifier.
pub type Attr = u32;

/// A domain value.
pub type Value = u64;

/// A relation instance: a schema of attributes and a set of rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    /// Attribute of each column; no duplicates.
    pub schema: Vec<Attr>,
    /// Rows, deduplicated (set semantics).
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Creates a relation, deduplicating rows.
    pub fn new(schema: Vec<Attr>, mut rows: Vec<Vec<Value>>) -> Self {
        debug_assert!(
            {
                let mut s = schema.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate attribute in schema"
        );
        debug_assert!(rows.iter().all(|r| r.len() == schema.len()));
        rows.sort_unstable();
        rows.dedup();
        Relation { schema, rows }
    }

    /// The empty relation over a schema.
    pub fn empty(schema: Vec<Attr>) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The relation with zero attributes and one (empty) row — the join
    /// identity.
    pub fn unit() -> Self {
        Relation {
            schema: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn positions_of(&self, attrs: &[Attr]) -> Vec<usize> {
        attrs
            .iter()
            .map(|a| {
                self.schema
                    .iter()
                    .position(|x| x == a)
                    .expect("attribute present in schema")
            })
            .collect()
    }

    /// Attributes shared with `other`, in this relation's schema order.
    pub fn shared_attrs(&self, other: &Relation) -> Vec<Attr> {
        self.schema
            .iter()
            .copied()
            .filter(|a| other.schema.contains(a))
            .collect()
    }

    /// Natural join (hash join on the shared attributes).
    pub fn join(&self, other: &Relation) -> Relation {
        let shared = self.shared_attrs(other);
        let my_pos = self.positions_of(&shared);
        let their_pos = other.positions_of(&shared);
        // Output schema: self's schema ++ other's private attributes.
        let mut schema = self.schema.clone();
        let their_private: Vec<(usize, Attr)> = other
            .schema
            .iter()
            .enumerate()
            .filter(|(_, a)| !shared.contains(a))
            .map(|(i, &a)| (i, a))
            .collect();
        schema.extend(their_private.iter().map(|&(_, a)| a));

        // Hash the smaller side.
        let mut index: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::new();
        for row in &other.rows {
            let key: Vec<Value> = their_pos.iter().map(|&p| row[p]).collect();
            index.entry(key).or_default().push(row);
        }
        let mut rows = Vec::new();
        for row in &self.rows {
            let key: Vec<Value> = my_pos.iter().map(|&p| row[p]).collect();
            if let Some(matches) = index.get(&key) {
                for m in matches {
                    let mut out = row.clone();
                    out.extend(their_private.iter().map(|&(i, _)| m[i]));
                    rows.push(out);
                }
            }
        }
        Relation::new(schema, rows)
    }

    /// Semijoin: rows of `self` with a matching row in `other`.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        let shared = self.shared_attrs(other);
        if shared.is_empty() {
            return if other.is_empty() {
                Relation::empty(self.schema.clone())
            } else {
                self.clone()
            };
        }
        let my_pos = self.positions_of(&shared);
        let their_pos = other.positions_of(&shared);
        let keys: HashSet<Vec<Value>> = other
            .rows
            .iter()
            .map(|row| their_pos.iter().map(|&p| row[p]).collect())
            .collect();
        let rows = self
            .rows
            .iter()
            .filter(|row| {
                let key: Vec<Value> = my_pos.iter().map(|&p| row[p]).collect();
                keys.contains(&key)
            })
            .cloned()
            .collect();
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Projection onto `attrs` (which must be a subset of the schema),
    /// with deduplication.
    pub fn project(&self, attrs: &[Attr]) -> Relation {
        let pos = self.positions_of(attrs);
        let rows = self
            .rows
            .iter()
            .map(|row| pos.iter().map(|&p| row[p]).collect())
            .collect();
        Relation::new(attrs.to_vec(), rows)
    }

    /// Canonical form for comparisons in tests: sorted schema + rows.
    pub fn canonical(&self) -> Relation {
        let mut order: Vec<usize> = (0..self.schema.len()).collect();
        order.sort_by_key(|&i| self.schema[i]);
        let schema: Vec<Attr> = order.iter().map(|&i| self.schema[i]).collect();
        let rows: Vec<Vec<Value>> = self
            .rows
            .iter()
            .map(|r| order.iter().map(|&i| r[i]).collect())
            .collect();
        Relation::new(schema, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(schema: &[u32], rows: &[&[u64]]) -> Relation {
        Relation::new(schema.to_vec(), rows.iter().map(|r| r.to_vec()).collect())
    }

    #[test]
    fn join_on_shared_attribute() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let s = rel(&[1, 2], &[&[2, 5], &[2, 6], &[9, 9]]);
        let j = r.join(&s);
        assert_eq!(j.schema, vec![0, 1, 2]);
        assert_eq!(j.rows, vec![vec![1, 2, 5], vec![1, 2, 6]]);
    }

    #[test]
    fn join_without_shared_attributes_is_cross_product() {
        let r = rel(&[0], &[&[1], &[2]]);
        let s = rel(&[1], &[&[7]]);
        let j = r.join(&s);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn semijoin_filters() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4], &[5, 2]]);
        let s = rel(&[1], &[&[2]]);
        let f = r.semijoin(&s);
        assert_eq!(f.rows, vec![vec![1, 2], vec![5, 2]]);
    }

    #[test]
    fn semijoin_disjoint_schema_checks_emptiness() {
        let r = rel(&[0], &[&[1]]);
        let nonempty = rel(&[9], &[&[1]]);
        let empty = Relation::empty(vec![9]);
        assert_eq!(r.semijoin(&nonempty), r);
        assert!(r.semijoin(&empty).is_empty());
    }

    #[test]
    fn project_dedups() {
        let r = rel(&[0, 1], &[&[1, 2], &[1, 3]]);
        let p = r.project(&[0]);
        assert_eq!(p.rows, vec![vec![1]]);
    }

    #[test]
    fn unit_is_join_identity() {
        let r = rel(&[0, 1], &[&[1, 2]]);
        assert_eq!(Relation::unit().join(&r).canonical(), r.canonical());
    }

    #[test]
    fn new_dedups_rows() {
        let r = rel(&[0], &[&[1], &[1], &[2]]);
        assert_eq!(r.len(), 2);
    }
}
