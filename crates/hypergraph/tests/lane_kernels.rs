//! Differential tests pinning every lane-chunked kernel bit-identical to
//! a naive scalar loop, at arbitrary block counts — including lengths
//! that are not a multiple of the 4-word lane chunk, so both the
//! `chunks_exact` body and the remainder loop are exercised — and at
//! arbitrary typed-set widths with ragged tails (non-multiples of 256
//! bits). The vectorized substrate is pure strength reduction: it must
//! never change a single bit of any result, flag, or count.

use hypergraph::{lanes, MaskMatrix, Vertex, VertexSet};
use proptest::prelude::*;

/// Same-length random block vectors; lengths straddle the LANES=4 chunk
/// boundary on purpose (0..=11 covers 0–2 full chunks plus every
/// remainder length).
fn blocks4() -> impl Strategy<Value = (Vec<u64>, Vec<u64>, Vec<u64>, Vec<u64>)> {
    (0usize..12).prop_flat_map(|len| {
        (
            prop::collection::vec(0u64..=u64::MAX, len),
            prop::collection::vec(0u64..=u64::MAX, len),
            prop::collection::vec(0u64..=u64::MAX, len),
            prop::collection::vec(0u64..=u64::MAX, len),
        )
    })
}

/// Typed sets of a shared ragged width: `n` avoids multiples of 256 by
/// construction often enough, and explicitly includes single-word and
/// sub-word tails via the 1..=530 range.
fn typed_sets() -> impl Strategy<Value = (usize, VertexSet, VertexSet, VertexSet, VertexSet)> {
    (1usize..=530).prop_flat_map(|n| {
        let set = move || {
            prop::collection::vec(0u32..n as u32, 0..64)
                .prop_map(move |v| VertexSet::from_iter(n, v.into_iter().map(Vertex)))
        };
        (Just(n), set(), set(), set(), set())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // ---- raw block kernels vs per-word scalar loops ----

    #[test]
    fn raw_kernels_match_scalar_loops((a, b, c, d) in blocks4()) {
        let n = a.len();

        let mut dst = a.clone();
        lanes::or_assign(&mut dst, &b);
        prop_assert_eq!(&dst, &(0..n).map(|i| a[i] | b[i]).collect::<Vec<_>>());

        let mut dst = a.clone();
        lanes::and_assign(&mut dst, &b);
        prop_assert_eq!(&dst, &(0..n).map(|i| a[i] & b[i]).collect::<Vec<_>>());

        let mut dst = a.clone();
        lanes::andnot_assign(&mut dst, &b);
        prop_assert_eq!(&dst, &(0..n).map(|i| a[i] & !b[i]).collect::<Vec<_>>());

        let (mut d1, mut d2) = (a.clone(), b.clone());
        lanes::or_assign2(&mut d1, &mut d2, &c);
        prop_assert_eq!(&d1, &(0..n).map(|i| a[i] | c[i]).collect::<Vec<_>>());
        prop_assert_eq!(&d2, &(0..n).map(|i| b[i] | c[i]).collect::<Vec<_>>());

        let mut dst = d.clone();
        lanes::assign_and(&mut dst, &a, &b);
        prop_assert_eq!(&dst, &(0..n).map(|i| a[i] & b[i]).collect::<Vec<_>>());

        let mut dst = d.clone();
        lanes::assign_diff_and(&mut dst, &a, &b, &c);
        prop_assert_eq!(&dst, &(0..n).map(|i| (a[i] & !b[i]) & c[i]).collect::<Vec<_>>());

        let mut dst = d.clone();
        lanes::assign_and3(&mut dst, &a, &b, &c);
        prop_assert_eq!(&dst, &(0..n).map(|i| a[i] & b[i] & c[i]).collect::<Vec<_>>());
    }

    #[test]
    fn raw_counting_and_probe_kernels_match((a, b, c, _d) in blocks4()) {
        let n = a.len();

        let ones: u32 = a.iter().map(|w| w.count_ones()).sum();
        prop_assert_eq!(lanes::count_ones(&a), ones as usize);

        let and: u32 = (0..n).map(|i| (a[i] & b[i]).count_ones()).sum();
        prop_assert_eq!(lanes::and_count(&a, &b), and as usize);

        let cao: u32 = (0..n).map(|i| ((a[i] & b[i]) | c[i]).count_ones()).sum();
        prop_assert_eq!(lanes::count_and_or(&a, &b, &c), cao as usize);

        prop_assert_eq!(lanes::any_and(&a, &b), (0..n).any(|i| a[i] & b[i] != 0));
        prop_assert_eq!(lanes::any_andnot(&a, &b), (0..n).any(|i| a[i] & !b[i] != 0));
        prop_assert_eq!(
            lanes::any_and_andnot(&a, &b, &c),
            (0..n).any(|i| (a[i] & b[i]) & !c[i] != 0)
        );
    }

    #[test]
    fn raw_lp_bad_kernel_matches((up, uc, vs, cuc) in blocks4()) {
        let n = up.len();
        let mut dst = vec![0u64; n];
        let nonzero = lanes::lp_bad_assign(&mut dst, &up, &uc, &vs, &cuc);
        let want: Vec<u64> = (0..n)
            .map(|i| ((up[i] & !uc[i]) & vs[i]) | (cuc[i] & !up[i]))
            .collect();
        prop_assert_eq!(&dst, &want);
        prop_assert_eq!(nonzero, want.iter().any(|&w| w != 0));
    }

    // ---- typed fused methods vs chained public set algebra ----

    #[test]
    fn fused_typed_methods_match_chained_ops((n, a, b, c, d) in typed_sets()) {
        // |(a ∩ b) ∪ c|
        prop_assert_eq!(
            a.count_intersect_union(&b, &c),
            a.intersection(&b).union(&c).len()
        );

        let mut out = VertexSet::empty(n);
        out.assign_and(&a, &b);
        prop_assert_eq!(&out, &a.intersection(&b));
        prop_assert!(out.tail_invariant_ok());

        out.assign_diff_and(&a, &b, &c);
        prop_assert_eq!(&out, &a.difference(&b).intersection(&c));
        prop_assert!(out.tail_invariant_ok());

        out.assign_and3(&a, &b, &c);
        prop_assert_eq!(&out, &a.intersection(&b).intersection(&c));
        prop_assert!(out.tail_invariant_ok());

        // bad = ((up \ uc) ∩ vs) ∪ (cuc \ up), with (up, uc, vs, cuc) =
        // (a, b, c, d): the λp pre-filter's one-pass kernel.
        let (_, nonempty) = out.assign_lp_bad(&a, &b, &c, &d);
        let want = a.difference(&b).intersection(&c).union(&d.difference(&a));
        prop_assert_eq!(&out, &want);
        prop_assert_eq!(nonempty, !want.is_empty());
        prop_assert!(out.tail_invariant_ok());

        let (mut x, mut y) = (a.clone(), b.clone());
        VertexSet::union_into_both(&mut x, &mut y, &c);
        prop_assert_eq!(&x, &a.union(&c));
        prop_assert_eq!(&y, &b.union(&c));
        prop_assert!(x.tail_invariant_ok() && y.tail_invariant_ok());
    }

    // ---- SoA matrix rows vs the typed sets they mirror ----

    #[test]
    fn matrix_rows_agree_with_typed_sets((n, a, b, c, _d) in typed_sets()) {
        let mut m = MaskMatrix::<Vertex>::new();
        m.reset(2, n);
        m.set_row(0, &a);
        m.set_row(1, &b);

        prop_assert_eq!(m.row_len(0), a.len());
        prop_assert_eq!(m.row_is_empty(1), b.is_empty());
        prop_assert_eq!(m.row_intersects(0, &b), a.intersects(&b));
        prop_assert_eq!(
            m.row_count_and_or(0, &b, &c),
            a.intersection(&b).union(&c).len()
        );

        let mut out = c.clone();
        m.or_row_into(0, &mut out);
        prop_assert_eq!(&out, &a.union(&c));
        prop_assert!(out.tail_invariant_ok());

        let mut copied = VertexSet::empty(1);
        m.copy_row_into(0, &mut copied);
        prop_assert_eq!(&copied, &a);
        prop_assert!(copied.tail_invariant_ok());

        m.or_row_with(1, &a);
        let mut both = VertexSet::empty(1);
        m.copy_row_into(1, &mut both);
        prop_assert_eq!(&both, &a.union(&b));
    }
}
