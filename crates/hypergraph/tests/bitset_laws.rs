//! Property-based laws for the typed bitsets — the substrate every hot
//! loop in the workspace relies on.

use hypergraph::{Vertex, VertexSet};
use proptest::prelude::*;

const N: usize = 130; // spans three 64-bit blocks, with a ragged tail

fn arb_set() -> impl Strategy<Value = VertexSet> {
    prop::collection::vec(0u32..N as u32, 0..40)
        .prop_map(|v| VertexSet::from_iter(N, v.into_iter().map(Vertex)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_is_commutative_and_idempotent(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
    }

    #[test]
    fn intersection_distributes_over_union(a in arb_set(), b in arb_set(), c in arb_set()) {
        let lhs = a.intersection(&b.union(&c));
        let rhs = a.intersection(&b).union(&a.intersection(&c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn de_morgan_via_difference(a in arb_set(), b in arb_set(), c in arb_set()) {
        // a \ (b ∪ c) = (a \ b) ∩ (a \ c)
        let lhs = a.difference(&b.union(&c));
        let rhs = a.difference(&b).intersection(&a.difference(&c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn subset_iff_difference_empty(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.is_subset_of(&b), a.difference(&b).is_empty());
    }

    #[test]
    fn intersects_outside_matches_naive(a in arb_set(), b in arb_set(), u in arb_set()) {
        let naive = !a.intersection(&b).difference(&u).is_empty();
        prop_assert_eq!(a.intersects_outside(&b, &u), naive);
    }

    #[test]
    fn len_matches_iteration(a in arb_set()) {
        prop_assert_eq!(a.len(), a.iter().count());
    }

    #[test]
    fn iteration_is_sorted_and_unique(a in arb_set()) {
        let v: Vec<u32> = a.iter().map(|x| x.0).collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(v, sorted);
    }

    #[test]
    fn intersection_len_matches(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.intersection_len(&b), a.intersection(&b).len());
    }

    #[test]
    fn insert_remove_roundtrip(a in arb_set(), v in 0u32..N as u32) {
        let mut s = a.clone();
        let had = s.contains(Vertex(v));
        s.insert(Vertex(v));
        prop_assert!(s.contains(Vertex(v)));
        s.remove(Vertex(v));
        prop_assert!(!s.contains(Vertex(v)));
        if !had {
            prop_assert_eq!(s, a);
        }
    }

    #[test]
    fn pop_first_drains_in_order(a in arb_set()) {
        let mut s = a.clone();
        let mut drained = Vec::new();
        while let Some(v) = s.pop_first() {
            drained.push(v);
        }
        prop_assert_eq!(drained, a.to_vec());
        prop_assert!(s.is_empty());
    }
}
