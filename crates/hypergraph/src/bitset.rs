//! Dense, typed bitsets over a fixed universe.
//!
//! Component computation, cover checks and connectedness checks are the hot
//! loops of every decomposition algorithm in this workspace; all of them
//! reduce to word-parallel operations on these sets. The `I: Ix` type
//! parameter statically separates vertex sets from edge sets so that an
//! `EdgeSet` can never be intersected with a `VertexSet` by accident.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

use crate::lanes;

/// An index newtype usable inside a [`TypedBitSet`].
pub trait Ix: Copy + Eq {
    /// Converts the index to a `usize` position.
    fn index(self) -> usize;
    /// Builds the index from a `usize` position.
    fn from_index(i: usize) -> Self;
}

/// A vertex of a hypergraph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Vertex(pub u32);

/// A (hyper)edge of a hypergraph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge(pub u32);

impl Ix for Vertex {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        Vertex(i as u32)
    }
}

impl Ix for Edge {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        Edge(i as u32)
    }
}

const BITS: usize = u64::BITS as usize;

/// A fixed-capacity bitset over indices of type `I`.
///
/// All binary operations require both operands to have the same capacity
/// (the universe size of the hypergraph they belong to); this is checked
/// with `debug_assert!` in the hot paths.
///
/// # Tail invariant
///
/// `blocks.len() == nbits.div_ceil(64)` and every bit at position
/// `>= nbits` of the last block is **zero**. Every constructor
/// establishes this and every mutating operation preserves it (asserted
/// in debug builds via [`Self::tail_invariant_ok`]). The
/// [`crate::lanes`] kernels rely on it: counting kernels popcount raw
/// blocks without re-masking, and equality/hashing compare raw blocks.
pub struct TypedBitSet<I> {
    blocks: Vec<u64>,
    nbits: usize,
    _tag: PhantomData<fn(I) -> I>,
}

impl<I> Default for TypedBitSet<I> {
    /// The empty set over the empty universe; sized on first `reset`.
    fn default() -> Self {
        TypedBitSet {
            blocks: Vec::new(),
            nbits: 0,
            _tag: PhantomData,
        }
    }
}

impl<I> Clone for TypedBitSet<I> {
    fn clone(&self) -> Self {
        TypedBitSet {
            blocks: self.blocks.clone(),
            nbits: self.nbits,
            _tag: PhantomData,
        }
    }

    /// Reuses `self`'s block storage when capacities allow — the solvers'
    /// scratch buffers rely on this to stay allocation-free in the steady
    /// state.
    fn clone_from(&mut self, other: &Self) {
        self.blocks.clone_from(&other.blocks);
        self.nbits = other.nbits;
    }
}

/// Set of vertices of a hypergraph.
pub type VertexSet = TypedBitSet<Vertex>;
/// Set of edges of a hypergraph.
pub type EdgeSet = TypedBitSet<Edge>;

impl<I: Ix> TypedBitSet<I> {
    /// Creates an empty set over a universe of `nbits` elements.
    pub fn empty(nbits: usize) -> Self {
        TypedBitSet {
            blocks: vec![0; nbits.div_ceil(BITS)],
            nbits,
            _tag: PhantomData,
        }
    }

    /// Creates the full set over a universe of `nbits` elements.
    pub fn full(nbits: usize) -> Self {
        let mut s = Self::empty(nbits);
        for b in &mut s.blocks {
            *b = !0;
        }
        s.mask_tail();
        s
    }

    /// Creates a set from an iterator of indices.
    pub fn from_iter<T: IntoIterator<Item = I>>(nbits: usize, it: T) -> Self {
        let mut s = Self::empty(nbits);
        for i in it {
            s.insert(i);
        }
        s
    }

    #[inline]
    fn mask_tail(&mut self) {
        let used = self.nbits % BITS;
        if used != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }

    /// Checks the tail invariant: the block count matches the universe
    /// size and no bit past `nbits` is set. Constant-time (only the last
    /// block carries tail bits). Mutating operations `debug_assert!`
    /// this; the lane kernels and raw-block consumers rely on it.
    pub fn tail_invariant_ok(&self) -> bool {
        if self.blocks.len() != self.nbits.div_ceil(BITS) {
            return false;
        }
        let used = self.nbits % BITS;
        if used == 0 {
            return true;
        }
        match self.blocks.last() {
            Some(&last) => last & !((1u64 << used) - 1) == 0,
            None => true,
        }
    }

    #[inline]
    fn debug_assert_tail(&self) {
        debug_assert!(
            self.tail_invariant_ok(),
            "bitset tail invariant violated: bits past len {} are set",
            self.nbits
        );
    }

    /// The raw 64-bit blocks backing the set, low indices first. The
    /// tail invariant guarantees bits past [`Self::capacity`] are zero.
    #[inline]
    pub fn as_blocks(&self) -> &[u64] {
        &self.blocks
    }

    #[inline]
    pub(crate) fn as_blocks_mut(&mut self) -> &mut [u64] {
        &mut self.blocks
    }

    /// The universe size this set was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Inserts `i`; returns `true` if it was not present.
    #[inline]
    pub fn insert(&mut self, i: I) -> bool {
        let idx = i.index();
        debug_assert!(idx < self.nbits, "index {idx} out of range {}", self.nbits);
        let (w, b) = (idx / BITS, idx % BITS);
        let had = self.blocks[w] & (1 << b) != 0;
        self.blocks[w] |= 1 << b;
        self.debug_assert_tail();
        !had
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: I) -> bool {
        let idx = i.index();
        debug_assert!(idx < self.nbits);
        let (w, b) = (idx / BITS, idx % BITS);
        let had = self.blocks[w] & (1 << b) != 0;
        self.blocks[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: I) -> bool {
        let idx = i.index();
        if idx >= self.nbits {
            return false;
        }
        self.blocks[idx / BITS] & (1 << (idx % BITS)) != 0
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        lanes::count_ones(&self.blocks)
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes all elements.
    #[inline]
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = 0;
        }
    }

    /// Makes `self` an empty set over a universe of `nbits` elements,
    /// reusing the existing block storage when it is large enough.
    ///
    /// Returns `true` if the buffer had to grow (an allocation happened) —
    /// scratch-workspace users track this to verify steady-state reuse.
    pub fn reset(&mut self, nbits: usize) -> bool {
        let words = nbits.div_ceil(BITS);
        let grew = words > self.blocks.capacity();
        self.blocks.clear();
        self.blocks.resize(words, 0);
        self.nbits = nbits;
        grew
    }

    /// Makes `self` a copy of `other`, reusing the existing block storage
    /// when possible (the in-place counterpart of `clone`).
    ///
    /// Returns `true` if the block buffer had to grow (an allocation
    /// happened) — scratch-workspace users thread this into their regrowth
    /// meters, exactly like [`Self::reset`].
    #[inline]
    pub fn copy_from(&mut self, other: &Self) -> bool {
        let grew = other.blocks.len() > self.blocks.capacity();
        self.clone_from(other);
        grew
    }

    /// In-place union: `self ∪= other`.
    #[inline]
    pub fn union_with(&mut self, other: &Self) {
        debug_assert_eq!(self.nbits, other.nbits);
        lanes::or_assign(&mut self.blocks, &other.blocks);
        self.debug_assert_tail();
    }

    /// In-place intersection: `self ∩= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &Self) {
        debug_assert_eq!(self.nbits, other.nbits);
        lanes::and_assign(&mut self.blocks, &other.blocks);
        self.debug_assert_tail();
    }

    /// In-place difference: `self \= other`.
    #[inline]
    pub fn difference_with(&mut self, other: &Self) {
        debug_assert_eq!(self.nbits, other.nbits);
        lanes::andnot_assign(&mut self.blocks, &other.blocks);
        self.debug_assert_tail();
    }

    /// Unions `src` into both `a` and `b` in one pass over `src`'s
    /// blocks (the component BFS absorbs every member row into the
    /// component's vertex set *and* the next frontier — fused, `src` is
    /// loaded once).
    #[inline]
    pub fn union_into_both(a: &mut Self, b: &mut Self, src: &Self) {
        debug_assert_eq!(a.nbits, src.nbits);
        debug_assert_eq!(b.nbits, src.nbits);
        lanes::or_assign2(&mut a.blocks, &mut b.blocks, &src.blocks);
        a.debug_assert_tail();
        b.debug_assert_tail();
    }

    /// Returns `self ∪ other` as a new set.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns `self ∩ other` as a new set.
    #[inline]
    pub fn intersection(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other` as a new set.
    #[inline]
    pub fn difference(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Subset test: `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        !lanes::any_andnot(&self.blocks, &other.blocks)
    }

    /// Disjointness test: `self ∩ other = ∅`.
    #[inline]
    pub fn is_disjoint_from(&self, other: &Self) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        !lanes::any_and(&self.blocks, &other.blocks)
    }

    /// Non-empty intersection test.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        !self.is_disjoint_from(other)
    }

    /// `(self ∩ other).len()` without allocating.
    #[inline]
    pub fn intersection_len(&self, other: &Self) -> usize {
        debug_assert_eq!(self.nbits, other.nbits);
        lanes::and_count(&self.blocks, &other.blocks)
    }

    /// `|(self ∩ b) ∪ c|` in one pass, nothing materialised — the λp
    /// pre-filter's exclusion count (members touching the inadmissible
    /// set, unioned with the λc-level baseline), previously an
    /// `intersect_with` + `union_with` + `len` chain that destroyed the
    /// mask buffer.
    #[inline]
    pub fn count_intersect_union(&self, b: &Self, c: &Self) -> usize {
        debug_assert_eq!(self.nbits, b.nbits);
        debug_assert_eq!(self.nbits, c.nbits);
        lanes::count_and_or(&self.blocks, &b.blocks, &c.blocks)
    }

    /// `self = a ∩ b` in one fused pass, resizing to `a`'s universe.
    /// Returns `true` if the block buffer had to grow (see
    /// [`Self::reset`]).
    #[inline]
    pub fn assign_and(&mut self, a: &Self, b: &Self) -> bool {
        debug_assert_eq!(a.nbits, b.nbits);
        let grew = self.reset_uninit(a.nbits);
        lanes::assign_and(&mut self.blocks, &a.blocks, &b.blocks);
        self.debug_assert_tail();
        grew
    }

    /// `self = (a \ b) ∩ c` in one fused pass, resizing to `a`'s
    /// universe. Returns the grow flag.
    #[inline]
    pub fn assign_diff_and(&mut self, a: &Self, b: &Self, c: &Self) -> bool {
        debug_assert_eq!(a.nbits, b.nbits);
        debug_assert_eq!(a.nbits, c.nbits);
        let grew = self.reset_uninit(a.nbits);
        lanes::assign_diff_and(&mut self.blocks, &a.blocks, &b.blocks, &c.blocks);
        self.debug_assert_tail();
        grew
    }

    /// `self = a ∩ b ∩ c` in one fused pass, resizing to `a`'s universe.
    /// Returns the grow flag.
    #[inline]
    pub fn assign_and3(&mut self, a: &Self, b: &Self, c: &Self) -> bool {
        debug_assert_eq!(a.nbits, b.nbits);
        debug_assert_eq!(a.nbits, c.nbits);
        let grew = self.reset_uninit(a.nbits);
        lanes::assign_and3(&mut self.blocks, &a.blocks, &b.blocks, &c.blocks);
        self.debug_assert_tail();
        grew
    }

    /// `self = ((up \ uc) ∩ vs) ∪ (cuc \ up)` in one fused pass — the λp
    /// pre-filter's inadmissible-vertex set assembled per candidate pair.
    /// Returns `(grew, nonempty)`.
    #[inline]
    pub fn assign_lp_bad(&mut self, up: &Self, uc: &Self, vs: &Self, cuc: &Self) -> (bool, bool) {
        debug_assert_eq!(up.nbits, uc.nbits);
        debug_assert_eq!(up.nbits, vs.nbits);
        debug_assert_eq!(up.nbits, cuc.nbits);
        let grew = self.reset_uninit(up.nbits);
        let nonempty = lanes::lp_bad_assign(
            &mut self.blocks,
            &up.blocks,
            &uc.blocks,
            &vs.blocks,
            &cuc.blocks,
        );
        self.debug_assert_tail();
        (grew, nonempty)
    }

    /// Sizes `self` for `nbits` without zeroing: every block is about to
    /// be overwritten by a fused assigning kernel. Same grow metering as
    /// [`Self::reset`].
    #[inline]
    fn reset_uninit(&mut self, nbits: usize) -> bool {
        let words = nbits.div_ceil(BITS);
        let grew = words > self.blocks.capacity();
        self.blocks.resize(words, 0);
        self.nbits = nbits;
        grew
    }

    /// Makes `self` the set over `nbits` elements whose raw blocks are
    /// `blocks` (a [`crate::matrix::MaskMatrix`] row). Returns the grow
    /// flag, like [`Self::reset`].
    #[inline]
    pub(crate) fn assign_blocks(&mut self, nbits: usize, blocks: &[u64]) -> bool {
        debug_assert_eq!(blocks.len(), nbits.div_ceil(BITS));
        let grew = self.reset_uninit(nbits);
        self.blocks.copy_from_slice(blocks);
        self.debug_assert_tail();
        grew
    }

    /// `(self \ other).is_empty()` without allocating — i.e. subset test.
    /// Kept as an alias mirroring the paper's `(f1 ∩ f2) \ U ≠ ∅` tests.
    #[inline]
    pub fn difference_is_empty(&self, other: &Self) -> bool {
        self.is_subset_of(other)
    }

    /// True iff `(self ∩ other) \ exclude ≠ ∅`. This is the `[U]`-adjacency
    /// test from Definition 3.2 of the paper, fully word-parallel.
    #[inline]
    pub fn intersects_outside(&self, other: &Self, exclude: &Self) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        debug_assert_eq!(self.nbits, exclude.nbits);
        lanes::any_and_andnot(&self.blocks, &other.blocks, &exclude.blocks)
    }

    /// Number of 64-bit blocks backing the set.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The `w`-th 64-bit block (word-level access for fused hot loops
    /// that intersect two sets while mutating one of them).
    #[inline]
    pub fn block(&self, w: usize) -> u64 {
        self.blocks[w]
    }

    /// Smallest element, if any.
    #[inline]
    pub fn first(&self) -> Option<I> {
        for (w, &b) in self.blocks.iter().enumerate() {
            if b != 0 {
                return Some(I::from_index(w * BITS + b.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Removes and returns the smallest element, if any.
    #[inline]
    pub fn pop_first(&mut self) -> Option<I> {
        let first = self.first()?;
        self.remove(first);
        Some(first)
    }

    /// Iterates the elements in increasing index order.
    pub fn iter(&self) -> Iter<'_, I> {
        Iter {
            blocks: &self.blocks,
            word: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
            _tag: PhantomData,
        }
    }

    /// Collects the elements into a `Vec` in increasing order.
    pub fn to_vec(&self) -> Vec<I> {
        self.iter().collect()
    }
}

/// Iterator over the elements of a [`TypedBitSet`].
pub struct Iter<'a, I> {
    blocks: &'a [u64],
    word: usize,
    bits: u64,
    _tag: PhantomData<fn(I) -> I>,
}

impl<I: Ix> Iterator for Iter<'_, I> {
    type Item = I;

    #[inline]
    fn next(&mut self) -> Option<I> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(I::from_index(self.word * BITS + b));
            }
            self.word += 1;
            if self.word >= self.blocks.len() {
                return None;
            }
            self.bits = self.blocks[self.word];
        }
    }
}

impl<'a, I: Ix> IntoIterator for &'a TypedBitSet<I> {
    type Item = I;
    type IntoIter = Iter<'a, I>;
    fn into_iter(self) -> Iter<'a, I> {
        self.iter()
    }
}

impl<I: Ix> PartialEq for TypedBitSet<I> {
    fn eq(&self, other: &Self) -> bool {
        self.nbits == other.nbits && self.blocks == other.blocks
    }
}

impl<I: Ix> Eq for TypedBitSet<I> {}

impl<I: Ix> Hash for TypedBitSet<I> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.blocks.hash(state);
    }
}

impl<I: Ix> PartialOrd for TypedBitSet<I> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<I: Ix> Ord for TypedBitSet<I> {
    /// Lexicographic order on block content; used only to canonicalise
    /// cache keys, not semantically meaningful.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.blocks.cmp(&other.blocks)
    }
}

impl<I: Ix + fmt::Debug> fmt::Debug for TypedBitSet<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(n: usize, elems: &[u32]) -> VertexSet {
        VertexSet::from_iter(n, elems.iter().map(|&v| Vertex(v)))
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = VertexSet::empty(130);
        assert!(s.insert(Vertex(0)));
        assert!(s.insert(Vertex(64)));
        assert!(s.insert(Vertex(129)));
        assert!(!s.insert(Vertex(129)));
        assert!(s.contains(Vertex(64)));
        assert!(!s.contains(Vertex(63)));
        assert_eq!(s.len(), 3);
        assert!(s.remove(Vertex(64)));
        assert!(!s.remove(Vertex(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_masks_tail() {
        let s = VertexSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(Vertex(69)));
        assert!(!s.contains(Vertex(70)));
    }

    #[test]
    fn set_algebra() {
        let a = vs(100, &[1, 2, 3, 64, 99]);
        let b = vs(100, &[2, 64, 65]);
        assert_eq!(a.intersection(&b), vs(100, &[2, 64]));
        assert_eq!(a.union(&b), vs(100, &[1, 2, 3, 64, 65, 99]));
        assert_eq!(a.difference(&b), vs(100, &[1, 3, 99]));
        assert_eq!(a.intersection_len(&b), 2);
        assert!(vs(100, &[2, 64]).is_subset_of(&a));
        assert!(!b.is_subset_of(&a));
        assert!(a.intersects(&b));
        assert!(vs(100, &[7]).is_disjoint_from(&a));
    }

    #[test]
    fn intersects_outside_matches_definition() {
        // (a ∩ b) \ u ≠ ∅ ?
        let a = vs(80, &[1, 5, 70]);
        let b = vs(80, &[5, 70]);
        let u = vs(80, &[5]);
        assert!(a.intersects_outside(&b, &u)); // 70 survives
        let u2 = vs(80, &[5, 70]);
        assert!(!a.intersects_outside(&b, &u2));
    }

    #[test]
    fn iter_and_first() {
        let s = vs(200, &[3, 64, 128, 199]);
        let v: Vec<u32> = s.iter().map(|x| x.0).collect();
        assert_eq!(v, vec![3, 64, 128, 199]);
        assert_eq!(s.first(), Some(Vertex(3)));
        let mut s2 = s.clone();
        assert_eq!(s2.pop_first(), Some(Vertex(3)));
        assert_eq!(s2.first(), Some(Vertex(64)));
    }

    #[test]
    fn empty_set_behaviour() {
        let s = VertexSet::empty(0);
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert_eq!(s.iter().count(), 0);
    }

    /// Regression for the tail-invariant audit: every mutating op must
    /// keep bits past `len` cleared, at ragged universe sizes straddling
    /// word and lane-chunk boundaries. The lane kernels (raw-block
    /// popcounts, equality on raw blocks) rely on this.
    #[test]
    fn mutating_ops_preserve_tail_invariant() {
        for n in [1usize, 63, 64, 65, 130, 255, 256, 257] {
            let universe: Vec<u32> = (0..n as u32).collect();
            let evens: Vec<u32> = universe.iter().copied().filter(|v| v % 2 == 0).collect();
            let a = vs(n, &evens);
            let b = VertexSet::full(n);
            assert!(a.tail_invariant_ok());
            assert!(b.tail_invariant_ok());

            let mut s = a.clone();
            s.union_with(&b);
            assert!(s.tail_invariant_ok());
            assert_eq!(s.len(), n, "full ∪ evens must be the whole universe");
            s.difference_with(&a);
            assert!(s.tail_invariant_ok());
            s.intersect_with(&b);
            assert!(s.tail_invariant_ok());

            let mut s = VertexSet::default();
            s.assign_and(&a, &b);
            assert!(s.tail_invariant_ok());
            assert_eq!(s, a);
            s.assign_diff_and(&b, &a, &b);
            assert!(s.tail_invariant_ok());
            assert_eq!(s.len(), n - evens.len());
            s.assign_and3(&a, &b, &b);
            assert!(s.tail_invariant_ok());
            let (_, nonempty) = s.assign_lp_bad(&b, &a, &b, &a);
            assert!(s.tail_invariant_ok());
            // ((full \ evens) ∩ full) ∪ (evens \ full) = odds.
            assert_eq!(nonempty, n > 1);
            assert_eq!(s.len(), n - evens.len());

            let mut t = a.clone();
            let mut u = VertexSet::empty(n);
            VertexSet::union_into_both(&mut t, &mut u, &b);
            assert!(t.tail_invariant_ok() && u.tail_invariant_ok());
            assert_eq!(u, b);

            let mut r = b.clone();
            r.insert(Vertex(0));
            r.remove(Vertex(0));
            assert!(r.tail_invariant_ok());
            r.clear();
            assert!(r.tail_invariant_ok());
            r.reset(n + 3);
            assert!(r.tail_invariant_ok());
            r.copy_from(&a);
            assert!(r.tail_invariant_ok());
        }
    }

    /// The fused counting kernels must agree with the materialising
    /// set algebra — including at ragged tails where a stale tail bit
    /// would skew a raw-block popcount.
    #[test]
    fn fused_counts_match_materialised_sets() {
        for n in [5usize, 64, 70, 130, 300] {
            let a = vs(n, &[0, 1, 4, (n as u32) - 1]);
            let b = vs(n, &[1, 4, (n as u32) - 1]);
            let c = vs(n, &[0, 2 % n as u32]);
            assert_eq!(
                a.count_intersect_union(&b, &c),
                a.intersection(&b).union(&c).len()
            );
            assert_eq!(a.intersection_len(&b), a.intersection(&b).len());
            assert_eq!(
                a.intersects_outside(&b, &c),
                !a.intersection(&b).difference(&c).is_empty()
            );
        }
    }

    #[test]
    fn eq_and_hash_ignore_capacity_only_when_equal() {
        let a = vs(100, &[1, 2]);
        let b = vs(100, &[1, 2]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
