//! Dense, typed bitsets over a fixed universe.
//!
//! Component computation, cover checks and connectedness checks are the hot
//! loops of every decomposition algorithm in this workspace; all of them
//! reduce to word-parallel operations on these sets. The `I: Ix` type
//! parameter statically separates vertex sets from edge sets so that an
//! `EdgeSet` can never be intersected with a `VertexSet` by accident.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

/// An index newtype usable inside a [`TypedBitSet`].
pub trait Ix: Copy + Eq {
    /// Converts the index to a `usize` position.
    fn index(self) -> usize;
    /// Builds the index from a `usize` position.
    fn from_index(i: usize) -> Self;
}

/// A vertex of a hypergraph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Vertex(pub u32);

/// A (hyper)edge of a hypergraph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge(pub u32);

impl Ix for Vertex {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        Vertex(i as u32)
    }
}

impl Ix for Edge {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        Edge(i as u32)
    }
}

const BITS: usize = u64::BITS as usize;

/// A fixed-capacity bitset over indices of type `I`.
///
/// All binary operations require both operands to have the same capacity
/// (the universe size of the hypergraph they belong to); this is checked
/// with `debug_assert!` in the hot paths.
pub struct TypedBitSet<I> {
    blocks: Vec<u64>,
    nbits: usize,
    _tag: PhantomData<fn(I) -> I>,
}

impl<I> Default for TypedBitSet<I> {
    /// The empty set over the empty universe; sized on first `reset`.
    fn default() -> Self {
        TypedBitSet {
            blocks: Vec::new(),
            nbits: 0,
            _tag: PhantomData,
        }
    }
}

impl<I> Clone for TypedBitSet<I> {
    fn clone(&self) -> Self {
        TypedBitSet {
            blocks: self.blocks.clone(),
            nbits: self.nbits,
            _tag: PhantomData,
        }
    }

    /// Reuses `self`'s block storage when capacities allow — the solvers'
    /// scratch buffers rely on this to stay allocation-free in the steady
    /// state.
    fn clone_from(&mut self, other: &Self) {
        self.blocks.clone_from(&other.blocks);
        self.nbits = other.nbits;
    }
}

/// Set of vertices of a hypergraph.
pub type VertexSet = TypedBitSet<Vertex>;
/// Set of edges of a hypergraph.
pub type EdgeSet = TypedBitSet<Edge>;

impl<I: Ix> TypedBitSet<I> {
    /// Creates an empty set over a universe of `nbits` elements.
    pub fn empty(nbits: usize) -> Self {
        TypedBitSet {
            blocks: vec![0; nbits.div_ceil(BITS)],
            nbits,
            _tag: PhantomData,
        }
    }

    /// Creates the full set over a universe of `nbits` elements.
    pub fn full(nbits: usize) -> Self {
        let mut s = Self::empty(nbits);
        for b in &mut s.blocks {
            *b = !0;
        }
        s.mask_tail();
        s
    }

    /// Creates a set from an iterator of indices.
    pub fn from_iter<T: IntoIterator<Item = I>>(nbits: usize, it: T) -> Self {
        let mut s = Self::empty(nbits);
        for i in it {
            s.insert(i);
        }
        s
    }

    #[inline]
    fn mask_tail(&mut self) {
        let used = self.nbits % BITS;
        if used != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }

    /// The universe size this set was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Inserts `i`; returns `true` if it was not present.
    #[inline]
    pub fn insert(&mut self, i: I) -> bool {
        let idx = i.index();
        debug_assert!(idx < self.nbits, "index {idx} out of range {}", self.nbits);
        let (w, b) = (idx / BITS, idx % BITS);
        let had = self.blocks[w] & (1 << b) != 0;
        self.blocks[w] |= 1 << b;
        !had
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: I) -> bool {
        let idx = i.index();
        debug_assert!(idx < self.nbits);
        let (w, b) = (idx / BITS, idx % BITS);
        let had = self.blocks[w] & (1 << b) != 0;
        self.blocks[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: I) -> bool {
        let idx = i.index();
        if idx >= self.nbits {
            return false;
        }
        self.blocks[idx / BITS] & (1 << (idx % BITS)) != 0
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes all elements.
    #[inline]
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = 0;
        }
    }

    /// Makes `self` an empty set over a universe of `nbits` elements,
    /// reusing the existing block storage when it is large enough.
    ///
    /// Returns `true` if the buffer had to grow (an allocation happened) —
    /// scratch-workspace users track this to verify steady-state reuse.
    pub fn reset(&mut self, nbits: usize) -> bool {
        let words = nbits.div_ceil(BITS);
        let grew = words > self.blocks.capacity();
        self.blocks.clear();
        self.blocks.resize(words, 0);
        self.nbits = nbits;
        grew
    }

    /// Makes `self` a copy of `other`, reusing the existing block storage
    /// when possible (the in-place counterpart of `clone`).
    ///
    /// Returns `true` if the block buffer had to grow (an allocation
    /// happened) — scratch-workspace users thread this into their regrowth
    /// meters, exactly like [`Self::reset`].
    #[inline]
    pub fn copy_from(&mut self, other: &Self) -> bool {
        let grew = other.blocks.len() > self.blocks.capacity();
        self.clone_from(other);
        grew
    }

    /// In-place union: `self ∪= other`.
    #[inline]
    pub fn union_with(&mut self, other: &Self) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &Self) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place difference: `self \= other`.
    #[inline]
    pub fn difference_with(&mut self, other: &Self) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Returns `self ∪ other` as a new set.
    #[inline]
    pub fn union(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns `self ∩ other` as a new set.
    #[inline]
    pub fn intersection(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other` as a new set.
    #[inline]
    pub fn difference(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Subset test: `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Disjointness test: `self ∩ other = ∅`.
    #[inline]
    pub fn is_disjoint_from(&self, other: &Self) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// Non-empty intersection test.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        !self.is_disjoint_from(other)
    }

    /// `(self ∩ other).len()` without allocating.
    #[inline]
    pub fn intersection_len(&self, other: &Self) -> usize {
        debug_assert_eq!(self.nbits, other.nbits);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `(self \ other).is_empty()` without allocating — i.e. subset test.
    /// Kept as an alias mirroring the paper's `(f1 ∩ f2) \ U ≠ ∅` tests.
    #[inline]
    pub fn difference_is_empty(&self, other: &Self) -> bool {
        self.is_subset_of(other)
    }

    /// True iff `(self ∩ other) \ exclude ≠ ∅`. This is the `[U]`-adjacency
    /// test from Definition 3.2 of the paper, fully word-parallel.
    #[inline]
    pub fn intersects_outside(&self, other: &Self, exclude: &Self) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        debug_assert_eq!(self.nbits, exclude.nbits);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .zip(&exclude.blocks)
            .any(|((a, b), e)| a & b & !e != 0)
    }

    /// Number of 64-bit blocks backing the set.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The `w`-th 64-bit block (word-level access for fused hot loops
    /// that intersect two sets while mutating one of them).
    #[inline]
    pub fn block(&self, w: usize) -> u64 {
        self.blocks[w]
    }

    /// Smallest element, if any.
    #[inline]
    pub fn first(&self) -> Option<I> {
        for (w, &b) in self.blocks.iter().enumerate() {
            if b != 0 {
                return Some(I::from_index(w * BITS + b.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Removes and returns the smallest element, if any.
    #[inline]
    pub fn pop_first(&mut self) -> Option<I> {
        let first = self.first()?;
        self.remove(first);
        Some(first)
    }

    /// Iterates the elements in increasing index order.
    pub fn iter(&self) -> Iter<'_, I> {
        Iter {
            blocks: &self.blocks,
            word: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
            _tag: PhantomData,
        }
    }

    /// Collects the elements into a `Vec` in increasing order.
    pub fn to_vec(&self) -> Vec<I> {
        self.iter().collect()
    }
}

/// Iterator over the elements of a [`TypedBitSet`].
pub struct Iter<'a, I> {
    blocks: &'a [u64],
    word: usize,
    bits: u64,
    _tag: PhantomData<fn(I) -> I>,
}

impl<I: Ix> Iterator for Iter<'_, I> {
    type Item = I;

    #[inline]
    fn next(&mut self) -> Option<I> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(I::from_index(self.word * BITS + b));
            }
            self.word += 1;
            if self.word >= self.blocks.len() {
                return None;
            }
            self.bits = self.blocks[self.word];
        }
    }
}

impl<'a, I: Ix> IntoIterator for &'a TypedBitSet<I> {
    type Item = I;
    type IntoIter = Iter<'a, I>;
    fn into_iter(self) -> Iter<'a, I> {
        self.iter()
    }
}

impl<I: Ix> PartialEq for TypedBitSet<I> {
    fn eq(&self, other: &Self) -> bool {
        self.nbits == other.nbits && self.blocks == other.blocks
    }
}

impl<I: Ix> Eq for TypedBitSet<I> {}

impl<I: Ix> Hash for TypedBitSet<I> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.blocks.hash(state);
    }
}

impl<I: Ix> PartialOrd for TypedBitSet<I> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<I: Ix> Ord for TypedBitSet<I> {
    /// Lexicographic order on block content; used only to canonicalise
    /// cache keys, not semantically meaningful.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.blocks.cmp(&other.blocks)
    }
}

impl<I: Ix + fmt::Debug> fmt::Debug for TypedBitSet<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(n: usize, elems: &[u32]) -> VertexSet {
        VertexSet::from_iter(n, elems.iter().map(|&v| Vertex(v)))
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = VertexSet::empty(130);
        assert!(s.insert(Vertex(0)));
        assert!(s.insert(Vertex(64)));
        assert!(s.insert(Vertex(129)));
        assert!(!s.insert(Vertex(129)));
        assert!(s.contains(Vertex(64)));
        assert!(!s.contains(Vertex(63)));
        assert_eq!(s.len(), 3);
        assert!(s.remove(Vertex(64)));
        assert!(!s.remove(Vertex(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_masks_tail() {
        let s = VertexSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(Vertex(69)));
        assert!(!s.contains(Vertex(70)));
    }

    #[test]
    fn set_algebra() {
        let a = vs(100, &[1, 2, 3, 64, 99]);
        let b = vs(100, &[2, 64, 65]);
        assert_eq!(a.intersection(&b), vs(100, &[2, 64]));
        assert_eq!(a.union(&b), vs(100, &[1, 2, 3, 64, 65, 99]));
        assert_eq!(a.difference(&b), vs(100, &[1, 3, 99]));
        assert_eq!(a.intersection_len(&b), 2);
        assert!(vs(100, &[2, 64]).is_subset_of(&a));
        assert!(!b.is_subset_of(&a));
        assert!(a.intersects(&b));
        assert!(vs(100, &[7]).is_disjoint_from(&a));
    }

    #[test]
    fn intersects_outside_matches_definition() {
        // (a ∩ b) \ u ≠ ∅ ?
        let a = vs(80, &[1, 5, 70]);
        let b = vs(80, &[5, 70]);
        let u = vs(80, &[5]);
        assert!(a.intersects_outside(&b, &u)); // 70 survives
        let u2 = vs(80, &[5, 70]);
        assert!(!a.intersects_outside(&b, &u2));
    }

    #[test]
    fn iter_and_first() {
        let s = vs(200, &[3, 64, 128, 199]);
        let v: Vec<u32> = s.iter().map(|x| x.0).collect();
        assert_eq!(v, vec![3, 64, 128, 199]);
        assert_eq!(s.first(), Some(Vertex(3)));
        let mut s2 = s.clone();
        assert_eq!(s2.pop_first(), Some(Vertex(3)));
        assert_eq!(s2.first(), Some(Vertex(64)));
    }

    #[test]
    fn empty_set_behaviour() {
        let s = VertexSet::empty(0);
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn eq_and_hash_ignore_capacity_only_when_equal() {
        let a = vs(100, &[1, 2]);
        let b = vs(100, &[1, 2]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }
}
