//! GYO (Graham / Yu–Özsoyoğlu) reduction and α-acyclicity.
//!
//! A hypergraph has hypertree width 1 iff it is α-acyclic iff the GYO
//! reduction eliminates all of its edges. The reduction repeatedly
//! 1. removes *ear vertices* — vertices occurring in exactly one edge, and
//! 2. removes an edge contained in another (surviving) edge, recording the
//!    container as its *witness* (which yields a join forest).

use crate::bitset::{Edge, EdgeSet, Vertex, VertexSet};
use crate::graph::Hypergraph;

/// Outcome of running the GYO reduction.
#[derive(Clone, Debug)]
pub struct GyoResult {
    /// Whether the hypergraph is α-acyclic (equivalently, hw ≤ 1).
    pub acyclic: bool,
    /// For each eliminated edge, the surviving edge it was folded into.
    /// Together these parent links form a join forest when `acyclic`.
    pub witness: Vec<Option<Edge>>,
    /// Edges still alive when the reduction got stuck (empty iff acyclic).
    pub residue: EdgeSet,
}

/// Runs the GYO reduction on `hg`.
pub fn gyo(hg: &Hypergraph) -> GyoResult {
    let n = hg.num_vertices();
    let m = hg.num_edges();
    let mut sets: Vec<VertexSet> = hg.edge_ids().map(|e| hg.edge(e).clone()).collect();
    let mut alive = EdgeSet::full(m);
    let mut witness: Vec<Option<Edge>> = vec![None; m];

    // degree[v] = number of alive edges whose *current* set contains v.
    let mut degree = vec![0u32; n];
    for s in &sets {
        for v in s {
            degree[v.0 as usize] += 1;
        }
    }

    let mut changed = true;
    while changed {
        changed = false;

        // Rule 1: drop vertices of degree 1 from their unique edge.
        for v in 0..n as u32 {
            if degree[v as usize] == 1 {
                let holder = alive
                    .iter()
                    .find(|&e| sets[e.0 as usize].contains(Vertex(v)));
                if let Some(e) = holder {
                    sets[e.0 as usize].remove(Vertex(v));
                    degree[v as usize] = 0;
                    changed = true;
                }
            }
        }

        // Rule 2: remove an edge contained in another alive edge
        // (empty edges count: they are contained in anything alive).
        let alive_now: Vec<Edge> = alive.iter().collect();
        'outer: for &e in &alive_now {
            for &f in &alive_now {
                if e == f || !alive.contains(f) || !alive.contains(e) {
                    continue;
                }
                if sets[e.0 as usize].is_subset_of(&sets[f.0 as usize]) {
                    alive.remove(e);
                    witness[e.0 as usize] = Some(f);
                    for v in &sets[e.0 as usize] {
                        degree[v.0 as usize] -= 1;
                    }
                    changed = true;
                    continue 'outer;
                }
            }
        }

        // An empty edge with no other edge alive is trivially removable.
        if alive.len() == 1 {
            let e = alive.first().expect("len checked");
            if sets[e.0 as usize].is_empty()
                || sets[e.0 as usize].iter().all(|v| degree[v.0 as usize] == 1)
            {
                // All remaining vertices are ears: the last edge reduces away.
                for v in &sets[e.0 as usize] {
                    degree[v.0 as usize] = 0;
                }
                alive.remove(e);
                changed = true;
            }
        }
    }

    GyoResult {
        acyclic: alive.is_empty(),
        witness,
        residue: alive,
    }
}

/// Convenience: is `hg` α-acyclic (hw ≤ 1)?
pub fn is_acyclic(hg: &Hypergraph) -> bool {
    gyo(hg).acyclic
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_acyclic() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3]]);
        assert!(is_acyclic(&h));
    }

    #[test]
    fn star_is_acyclic() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1], vec![0, 2], vec![0, 3]]);
        assert!(is_acyclic(&h));
    }

    #[test]
    fn triangle_of_binary_edges_is_cyclic() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 0]]);
        let r = gyo(&h);
        assert!(!r.acyclic);
        assert_eq!(r.residue.len(), 3);
    }

    #[test]
    fn triangle_covered_by_big_edge_is_acyclic() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 0], vec![0, 1, 2]]);
        assert!(is_acyclic(&h));
    }

    #[test]
    fn cycle_ten_is_cyclic() {
        let edges: Vec<Vec<u32>> = (0..10).map(|i| vec![i, (i + 1) % 10]).collect();
        let h = Hypergraph::from_edge_lists(&edges);
        assert!(!is_acyclic(&h));
    }

    #[test]
    fn single_edge_is_acyclic() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1, 2]]);
        assert!(is_acyclic(&h));
    }

    #[test]
    fn disconnected_acyclic_components() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![3, 4], vec![4, 5]]);
        assert!(is_acyclic(&h));
    }

    #[test]
    fn witness_forms_join_forest_on_acyclic_input() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![1, 2, 3]]);
        let r = gyo(&h);
        assert!(r.acyclic);
        // At least one edge must have been folded into another.
        assert!(r.witness.iter().any(|w| w.is_some()));
    }
}
