//! Structure-of-arrays bitset rows in one contiguous allocation.
//!
//! A [`MaskMatrix`] stores a fixed number of equal-universe bitset rows
//! back to back in a single `Vec<u64>`. Compared to a `Vec<TypedBitSet>`
//! it removes one pointer indirection per row and keeps consecutive rows
//! on adjacent cache lines, which is what the λp pre-filter's
//! per-candidate mask walk and the [`crate::Hypergraph`] edge/incidence
//! folds actually iterate: the hot loops stream contiguous lane columns
//! instead of chasing per-row heap allocations.
//!
//! Rows obey the same tail invariant as [`crate::bitset::TypedBitSet`]
//! (bits at positions `>= row_bits` of a row's last word are zero), so
//! the [`crate::lanes`] kernels apply to rows directly. The typed
//! mutators below are the only way to write a row from outside the
//! crate, and each preserves the invariant.

use std::marker::PhantomData;

use crate::bitset::{Ix, TypedBitSet};
use crate::lanes;

const BITS: usize = u64::BITS as usize;

/// A dense matrix of bitset rows over a shared universe, stored as one
/// contiguous block array (structure-of-arrays layout).
///
/// `I` tags the universe exactly as in [`TypedBitSet`]: a
/// `MaskMatrix<Edge>` holds edge-set rows, a `MaskMatrix<Vertex>`
/// vertex-set rows, and the two cannot be mixed up.
pub struct MaskMatrix<I> {
    blocks: Vec<u64>,
    /// Words per row: `nbits.div_ceil(64)`.
    stride: usize,
    /// Universe size of every row.
    nbits: usize,
    rows: usize,
    _tag: PhantomData<fn(I) -> I>,
}

impl<I> Default for MaskMatrix<I> {
    /// A matrix with no rows over the empty universe; sized on first
    /// [`MaskMatrix::reset`].
    fn default() -> Self {
        MaskMatrix {
            blocks: Vec::new(),
            stride: 0,
            nbits: 0,
            rows: 0,
            _tag: PhantomData,
        }
    }
}

impl<I> Clone for MaskMatrix<I> {
    fn clone(&self) -> Self {
        MaskMatrix {
            blocks: self.blocks.clone(),
            stride: self.stride,
            nbits: self.nbits,
            rows: self.rows,
            _tag: PhantomData,
        }
    }
}

impl<I: Ix> MaskMatrix<I> {
    /// An empty matrix (no rows, empty universe).
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes to `rows` zeroed rows over a universe of `nbits`
    /// elements, reusing the block storage when it is large enough.
    ///
    /// Returns `true` if the buffer had to grow (an allocation
    /// happened) — scratch-workspace users thread this into their
    /// regrowth meters, exactly like [`TypedBitSet::reset`].
    pub fn reset(&mut self, rows: usize, nbits: usize) -> bool {
        let stride = nbits.div_ceil(BITS);
        let words = rows * stride;
        let grew = words > self.blocks.capacity();
        self.blocks.clear();
        self.blocks.resize(words, 0);
        self.stride = stride;
        self.nbits = nbits;
        self.rows = rows;
        grew
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Universe size of every row.
    #[inline]
    pub fn row_bits(&self) -> usize {
        self.nbits
    }

    /// Words per row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The raw blocks of row `r`, low words first. The tail invariant
    /// guarantees bits past [`Self::row_bits`] are zero.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        let start = r * self.stride;
        &self.blocks[start..start + self.stride]
    }

    #[inline]
    pub(crate) fn row_mut(&mut self, r: usize) -> &mut [u64] {
        let start = r * self.stride;
        &mut self.blocks[start..start + self.stride]
    }

    /// Sets row `r` to a copy of `src` (same universe required).
    #[inline]
    pub fn set_row(&mut self, r: usize, src: &TypedBitSet<I>) {
        debug_assert_eq!(self.nbits, src.capacity());
        self.row_mut(r).copy_from_slice(src.as_blocks());
    }

    /// Clears row `r`.
    #[inline]
    pub fn clear_row(&mut self, r: usize) {
        self.row_mut(r).fill(0);
    }

    /// Inserts element `i` into row `r`.
    #[inline]
    pub fn row_insert(&mut self, r: usize, i: I) {
        let idx = i.index();
        debug_assert!(idx < self.nbits);
        self.row_mut(r)[idx / BITS] |= 1 << (idx % BITS);
    }

    /// `row(r) |= src`.
    #[inline]
    pub fn or_row_with(&mut self, r: usize, src: &TypedBitSet<I>) {
        debug_assert_eq!(self.nbits, src.capacity());
        let row = self.row_mut(r);
        lanes::or_assign(row, src.as_blocks());
    }

    /// `dst |= row(r)` — fold a row into an accumulator set.
    #[inline]
    pub fn or_row_into(&self, r: usize, dst: &mut TypedBitSet<I>) {
        debug_assert_eq!(self.nbits, dst.capacity());
        let start = r * self.stride;
        lanes::or_assign(
            dst.as_blocks_mut(),
            &self.blocks[start..start + self.stride],
        );
    }

    /// Makes `dst` a copy of row `r` (resizing it to the row universe).
    /// Returns the grow flag, like [`TypedBitSet::reset`].
    #[inline]
    pub fn copy_row_into(&self, r: usize, dst: &mut TypedBitSet<I>) -> bool {
        dst.assign_blocks(self.nbits, self.row(r))
    }

    /// Number of elements in row `r`.
    #[inline]
    pub fn row_len(&self, r: usize) -> usize {
        lanes::count_ones(self.row(r))
    }

    /// Whether row `r` is empty.
    #[inline]
    pub fn row_is_empty(&self, r: usize) -> bool {
        self.row(r).iter().all(|&w| w == 0)
    }

    /// Whether row `r` intersects `other`.
    #[inline]
    pub fn row_intersects(&self, r: usize, other: &TypedBitSet<I>) -> bool {
        debug_assert_eq!(self.nbits, other.capacity());
        lanes::any_and(self.row(r), other.as_blocks())
    }

    /// `|(row(r) ∩ b) ∪ c|` in one pass — the λp exclusion counter run
    /// directly against a candidate's mask row, nothing materialised.
    #[inline]
    pub fn row_count_and_or(&self, r: usize, b: &TypedBitSet<I>, c: &TypedBitSet<I>) -> usize {
        debug_assert_eq!(self.nbits, b.capacity());
        debug_assert_eq!(self.nbits, c.capacity());
        lanes::count_and_or(self.row(r), b.as_blocks(), c.as_blocks())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::{Vertex, VertexSet};

    fn vs(n: usize, elems: &[u32]) -> VertexSet {
        VertexSet::from_iter(n, elems.iter().map(|&v| Vertex(v)))
    }

    #[test]
    fn rows_round_trip_through_bitsets() {
        let mut m: MaskMatrix<Vertex> = MaskMatrix::new();
        m.reset(3, 130);
        m.set_row(0, &vs(130, &[0, 64, 129]));
        m.row_insert(1, Vertex(5));
        m.or_row_with(1, &vs(130, &[64]));
        assert_eq!(m.row_len(0), 3);
        assert_eq!(m.row_len(1), 2);
        assert!(m.row_is_empty(2));

        let mut out = VertexSet::empty(130);
        m.or_row_into(0, &mut out);
        m.or_row_into(1, &mut out);
        assert_eq!(out, vs(130, &[0, 5, 64, 129]));

        let mut cp = VertexSet::default();
        m.copy_row_into(1, &mut cp);
        assert_eq!(cp, vs(130, &[5, 64]));
        assert!(cp.tail_invariant_ok());

        assert!(m.row_intersects(0, &vs(130, &[129])));
        assert!(!m.row_intersects(2, &vs(130, &[129])));
    }

    #[test]
    fn reset_reuses_storage_and_zeroes() {
        let mut m: MaskMatrix<Vertex> = MaskMatrix::new();
        assert!(m.reset(4, 256));
        m.set_row(3, &vs(256, &[255]));
        // Shrinking reuses the buffer and clears stale content.
        assert!(!m.reset(2, 100));
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row_bits(), 100);
        assert!(m.row_is_empty(0));
        assert!(m.row_is_empty(1));
    }

    #[test]
    fn row_count_and_or_matches_setwise() {
        let mut m: MaskMatrix<Vertex> = MaskMatrix::new();
        m.reset(1, 200);
        m.set_row(0, &vs(200, &[1, 2, 70, 199]));
        let b = vs(200, &[2, 70, 100]);
        let c = vs(200, &[0, 2]);
        // (row ∩ b) ∪ c = {2, 70} ∪ {0, 2} = {0, 2, 70}
        assert_eq!(m.row_count_and_or(0, &b, &c), 3);
    }
}
