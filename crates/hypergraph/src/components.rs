//! `[U]`-components of extended subhypergraphs (Definition 3.2).
//!
//! Two (possibly special) edges `f1, f2` are `[U]`-adjacent if
//! `(f1 ∩ f2) \ U ≠ ∅`; `[U]`-connectedness is the transitive closure and
//! a `[U]`-component is a maximal `[U]`-connected subset of `E' ∪ Sp`.
//!
//! The computation is a BFS over vertices outside `U`, using the
//! hypergraph's incidence index for real edges and direct intersection
//! tests for the (few) special edges.
//!
//! Component splitting runs once per candidate separator — it is *the*
//! inner loop of every solver in the workspace. [`separate_into`] therefore
//! writes into caller-owned buffers ([`Scratch`] + a reused
//! [`Separation`]), performing no heap allocation in the steady state;
//! [`separate`] is the allocating convenience wrapper.

use crate::bitset::{EdgeSet, VertexSet};
use crate::extended::{SpecialArena, SpecialId, Subproblem};
use crate::graph::Hypergraph;

/// One `[U]`-component of an extended subhypergraph.
#[derive(Clone, Debug)]
pub struct Component {
    /// Members of the component — real edges and special edges — in the
    /// exact shape the recursion consumes, so recursing on a component
    /// borrows it instead of cloning.
    pub sub: Subproblem,
    /// `V(component)`: union of all member vertex sets (including vertices
    /// that lie inside the separator `U`).
    pub vertices: VertexSet,
}

impl Component {
    /// Real edges in the component.
    #[inline]
    pub fn edges(&self) -> &EdgeSet {
        &self.sub.edges
    }

    /// Special edges in the component.
    #[inline]
    pub fn specials(&self) -> &[SpecialId] {
        &self.sub.specials
    }

    /// `|edges| + |specials|` — the size measure of balancedness checks.
    #[inline]
    pub fn size(&self) -> usize {
        self.sub.size()
    }

    /// Converts the component into a [`Subproblem`] (dropping `vertices`).
    pub fn into_subproblem(self) -> Subproblem {
        self.sub
    }

    /// The component's members as a borrowed [`Subproblem`].
    #[inline]
    pub fn as_subproblem(&self) -> &Subproblem {
        &self.sub
    }

    /// The component's members as an owned [`Subproblem`] clone.
    pub fn to_subproblem(&self) -> Subproblem {
        self.sub.clone()
    }
}

/// Result of splitting a subproblem at a separator `U`.
#[derive(Clone, Debug, Default)]
pub struct Separation {
    /// The `[U]`-components, in deterministic (seed-order) order.
    pub components: Vec<Component>,
    /// Real edges `f` with `f ⊆ U`: they belong to no component.
    pub covered_edges: EdgeSet,
    /// Special edges `s` with `s ⊆ U`.
    pub covered_specials: Vec<SpecialId>,
}

impl Separation {
    /// An empty separation; sized on first use by [`separate_into`].
    pub fn new() -> Self {
        Separation {
            components: Vec::new(),
            covered_edges: EdgeSet::empty(0),
            covered_specials: Vec::new(),
        }
    }

    /// Size of the largest component, or 0 if there are none.
    pub fn max_component_size(&self) -> usize {
        self.components.iter().map(|c| c.size()).max().unwrap_or(0)
    }

    /// Index of the unique component with `size > half`, if any.
    ///
    /// At most one component can exceed half of the subproblem size, since
    /// components are disjoint.
    pub fn oversized_component(&self, subproblem_size: usize) -> Option<usize> {
        self.components
            .iter()
            .position(|c| 2 * c.size() > subproblem_size)
    }
}

/// Reusable buffers for [`separate_into`] — the scratch workspace that
/// keeps component splitting allocation-free across calls.
///
/// A `Scratch` is cheap to create empty; every buffer is sized lazily on
/// first use and reused afterwards. One `Scratch` serves one thread (or
/// one recursion level): calls may not overlap.
#[derive(Debug, Default)]
pub struct Scratch {
    remaining_edges: EdgeSet,
    visited: VertexSet,
    frontier: VertexSet,
    next: VertexSet,
    remaining_specials: Vec<SpecialId>,
    special_alive: Vec<bool>,
    /// Retired [`Component`] slots recycled across calls.
    pool: Vec<Component>,
    /// Number of buffer growth events (allocations) since creation.
    /// Constant once the scratch reaches steady state — asserted by tests
    /// and tracked by the engine's allocation counters.
    pub grow_events: u64,
}

impl Scratch {
    /// Creates an empty scratch workspace.
    pub fn new() -> Self {
        Self::default()
    }

    fn recycled_component(&mut self, hg: &Hypergraph) -> Component {
        let mut c = self.pool.pop().unwrap_or_else(|| {
            self.grow_events += 1;
            Component {
                sub: Subproblem {
                    edges: EdgeSet::empty(0),
                    specials: Vec::new(),
                },
                vertices: VertexSet::empty(0),
            }
        });
        // Count regrowth too: a pooled slot warmed on a smaller hypergraph
        // still reallocates when reused on a larger one. Each buffer is
        // metered individually so two growths report as two events.
        self.grow_events += c.sub.edges.reset(hg.num_edges()) as u64;
        self.grow_events += c.vertices.reset(hg.num_vertices()) as u64;
        c.sub.specials.clear();
        c
    }
}

/// Computes the `[U]`-components of `sub` with separator vertex set `sep`.
///
/// Allocating convenience wrapper around [`separate_into`]; solvers' hot
/// loops should hold a [`Scratch`] and a [`Separation`] and call
/// [`separate_into`] directly.
pub fn separate(
    hg: &Hypergraph,
    arena: &SpecialArena,
    sub: &Subproblem,
    sep: &VertexSet,
) -> Separation {
    let mut scratch = Scratch::new();
    let mut out = Separation::new();
    separate_into(hg, arena, sub, sep, &mut scratch, &mut out);
    out
}

/// Computes the `[U]`-components of `sub` with separator vertex set `sep`,
/// writing the result into `out` and drawing all temporary storage from
/// `scratch`. Performs no heap allocation once both are warm.
pub fn separate_into(
    hg: &Hypergraph,
    arena: &SpecialArena,
    sub: &Subproblem,
    sep: &VertexSet,
    scratch: &mut Scratch,
    out: &mut Separation,
) {
    // Recycle the previous result's component slots.
    scratch.pool.append(&mut out.components);
    scratch.grow_events += out.covered_edges.reset(hg.num_edges()) as u64;
    out.covered_specials.clear();

    // Per-buffer metering: four growing buffers report four events, not
    // one OR-ed event — the meter's resolution matches the allocator's.
    scratch.grow_events += scratch.remaining_edges.reset(hg.num_edges()) as u64;
    scratch.grow_events += scratch.visited.reset(hg.num_vertices()) as u64;
    scratch.grow_events += scratch.frontier.reset(hg.num_vertices()) as u64;
    scratch.grow_events += scratch.next.reset(hg.num_vertices()) as u64;
    scratch.remaining_edges.union_with(&sub.edges);
    scratch.remaining_specials.clear();
    scratch.special_alive.clear();

    // Members fully inside U are "covered": they participate in no component.
    for e in &sub.edges {
        if hg.edge(e).is_subset_of(sep) {
            out.covered_edges.insert(e);
            scratch.remaining_edges.remove(e);
        }
    }
    for &s in &sub.specials {
        if arena.get(s).is_subset_of(sep) {
            out.covered_specials.push(s);
        } else {
            scratch.remaining_specials.push(s);
            scratch.special_alive.push(true);
        }
    }
    let mut alive_specials = scratch.remaining_specials.len();

    loop {
        // Seed: first remaining edge, else first remaining special.
        let mut comp = scratch.recycled_component(hg);
        scratch.frontier.clear();

        if let Some(e) = scratch.remaining_edges.first() {
            scratch.remaining_edges.remove(e);
            comp.sub.edges.insert(e);
            comp.vertices.union_with(hg.edge(e));
            scratch.frontier.union_with(hg.edge(e));
        } else if alive_specials > 0 {
            let idx = scratch
                .special_alive
                .iter()
                .position(|&a| a)
                .expect("counted above");
            scratch.special_alive[idx] = false;
            alive_specials -= 1;
            let s = scratch.remaining_specials[idx];
            comp.sub.specials.push(s);
            comp.vertices.union_with(arena.get(s));
            scratch.frontier.union_with(arena.get(s));
        } else {
            scratch.pool.push(comp);
            break;
        }
        scratch.frontier.difference_with(sep);

        scratch.visited.clear();
        while !scratch.frontier.is_empty() {
            scratch.visited.union_with(&scratch.frontier);
            scratch.next.clear();
            for v in &scratch.frontier {
                // Fused `incident(v) ∩ remaining` walk: one word snapshot
                // per block, no materialised intersection set. Removing a
                // hit from `remaining` only clears bits of the snapshot
                // already taken, so the walk stays exact.
                let incident = hg.incident_edges(v);
                for w in 0..incident.num_blocks() {
                    let mut bits = incident.block(w) & scratch.remaining_edges.block(w);
                    while bits != 0 {
                        let e =
                            crate::bitset::Edge((w * 64 + bits.trailing_zeros() as usize) as u32);
                        bits &= bits - 1;
                        scratch.remaining_edges.remove(e);
                        comp.sub.edges.insert(e);
                        VertexSet::union_into_both(
                            &mut comp.vertices,
                            &mut scratch.next,
                            hg.edge(e),
                        );
                    }
                }
            }
            if alive_specials > 0 {
                for (idx, alive) in scratch.special_alive.iter_mut().enumerate() {
                    let s = scratch.remaining_specials[idx];
                    if *alive && arena.get(s).intersects(&scratch.frontier) {
                        *alive = false;
                        alive_specials -= 1;
                        comp.sub.specials.push(s);
                        VertexSet::union_into_both(
                            &mut comp.vertices,
                            &mut scratch.next,
                            arena.get(s),
                        );
                    }
                }
            }
            scratch.next.difference_with(sep);
            scratch.next.difference_with(&scratch.visited);
            std::mem::swap(&mut scratch.frontier, &mut scratch.next);
        }

        comp.sub.specials.sort_unstable();
        out.components.push(comp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::{Edge, Vertex};

    fn path5() -> Hypergraph {
        // e0={0,1}, e1={1,2}, e2={2,3}, e3={3,4}
        Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]])
    }

    fn vset(hg: &Hypergraph, vs: &[u32]) -> VertexSet {
        VertexSet::from_iter(hg.num_vertices(), vs.iter().map(|&v| Vertex(v)))
    }

    #[test]
    fn empty_separator_single_component() {
        let hg = path5();
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let sep = hg.vertex_set();
        let s = separate(&hg, &arena, &sub, &sep);
        assert_eq!(s.components.len(), 1);
        assert_eq!(s.components[0].size(), 4);
        assert!(s.covered_edges.is_empty());
    }

    #[test]
    fn middle_vertex_splits_path() {
        let hg = path5();
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let sep = vset(&hg, &[2]);
        let s = separate(&hg, &arena, &sub, &sep);
        assert_eq!(s.components.len(), 2);
        let sizes: Vec<usize> = s.components.iter().map(|c| c.size()).collect();
        assert_eq!(sizes, vec![2, 2]);
        // V(comp) includes separator vertices that members touch.
        assert!(s.components[0].vertices.contains(Vertex(2)));
    }

    #[test]
    fn covered_edges_belong_to_no_component() {
        let hg = path5();
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let sep = vset(&hg, &[1, 2]);
        let s = separate(&hg, &arena, &sub, &sep);
        // e1={1,2} ⊆ U is covered.
        assert!(s.covered_edges.contains(Edge(1)));
        assert_eq!(s.components.len(), 2);
        let total: usize = s.components.iter().map(|c| c.size()).sum();
        assert_eq!(total + s.covered_edges.len(), 4);
    }

    #[test]
    fn specials_join_components() {
        let hg = path5();
        let mut arena = SpecialArena::new();
        // A special edge bridging vertices 0 and 4 merges both path halves
        // even across the separator at vertex 2.
        let s_bridge = arena.push(vset(&hg, &[0, 4]));
        let mut sub = Subproblem::whole(&hg);
        sub.specials.push(s_bridge);
        let sep = vset(&hg, &[2]);
        let s = separate(&hg, &arena, &sub, &sep);
        assert_eq!(s.components.len(), 1);
        assert_eq!(s.components[0].size(), 5);
        assert_eq!(s.components[0].specials(), vec![s_bridge]);
    }

    #[test]
    fn covered_special_is_reported() {
        let hg = path5();
        let mut arena = SpecialArena::new();
        let s_cov = arena.push(vset(&hg, &[2, 3]));
        let mut sub = Subproblem::whole(&hg);
        sub.specials.push(s_cov);
        let sep = vset(&hg, &[2, 3]);
        let s = separate(&hg, &arena, &sub, &sep);
        assert_eq!(s.covered_specials, vec![s_cov]);
        assert!(s.components.iter().all(|c| c.specials().is_empty()));
    }

    #[test]
    fn oversized_component_detection() {
        let hg = path5();
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        // Separator at vertex 1: components {e0} and {e1,e2,e3}.
        let s = separate(&hg, &arena, &sub, &vset(&hg, &[1]));
        assert_eq!(s.components.len(), 2);
        let over = s.oversized_component(sub.size());
        assert!(over.is_some());
        assert_eq!(s.components[over.unwrap()].size(), 3);
        // Separator at vertex 2: both components have size 2 = |H'|/2.
        let s2 = separate(&hg, &arena, &sub, &vset(&hg, &[2]));
        assert!(s2.oversized_component(sub.size()).is_none());
    }

    #[test]
    fn separation_is_a_partition() {
        let hg = Hypergraph::from_edge_lists(&[
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4, 5],
            vec![5, 6],
            vec![7, 8],
            vec![1, 7],
        ]);
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let sep = vset(&hg, &[2, 7]);
        let s = separate(&hg, &arena, &sub, &sep);
        let mut seen = hg.edge_set();
        for c in &s.components {
            assert!(seen.is_disjoint_from(c.edges()), "components overlap");
            seen.union_with(c.edges());
        }
        seen.union_with(&s.covered_edges);
        assert_eq!(seen, sub.edges);
    }

    #[test]
    fn separate_into_matches_separate_and_stops_allocating() {
        let hg = Hypergraph::from_edge_lists(&[
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4, 5],
            vec![5, 6],
            vec![7, 8],
            vec![1, 7],
        ]);
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let mut scratch = Scratch::new();
        let mut out = Separation::new();
        let seps: Vec<VertexSet> = (0..hg.num_vertices() as u32)
            .map(|v| vset(&hg, &[v, (v + 2) % hg.num_vertices() as u32]))
            .collect();

        // Warm-up pass sizes every buffer.
        for sep in &seps {
            separate_into(&hg, &arena, &sub, sep, &mut scratch, &mut out);
        }
        let warm = scratch.grow_events;

        for sep in &seps {
            separate_into(&hg, &arena, &sub, sep, &mut scratch, &mut out);
            let reference = separate(&hg, &arena, &sub, sep);
            assert_eq!(out.components.len(), reference.components.len());
            for (a, b) in out.components.iter().zip(&reference.components) {
                assert_eq!(a.sub, b.sub);
                assert_eq!(a.vertices, b.vertices);
            }
            assert_eq!(out.covered_edges, reference.covered_edges);
            assert_eq!(out.covered_specials, reference.covered_specials);
        }
        assert_eq!(
            scratch.grow_events, warm,
            "steady-state separate_into must not allocate"
        );
    }

    #[test]
    fn separate_into_reuses_component_slots() {
        let hg = path5();
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let mut scratch = Scratch::new();
        let mut out = Separation::new();
        separate_into(&hg, &arena, &sub, &vset(&hg, &[2]), &mut scratch, &mut out);
        assert_eq!(out.components.len(), 2);
        separate_into(
            &hg,
            &arena,
            &sub,
            &vset(&hg, &[1, 3]),
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.components.len(), 3);
        separate_into(&hg, &arena, &sub, &hg.vertex_set(), &mut scratch, &mut out);
        assert_eq!(out.components.len(), 1);
        assert_eq!(out.components[0].size(), 4);
    }
}
