//! `[U]`-components of extended subhypergraphs (Definition 3.2).
//!
//! Two (possibly special) edges `f1, f2` are `[U]`-adjacent if
//! `(f1 ∩ f2) \ U ≠ ∅`; `[U]`-connectedness is the transitive closure and
//! a `[U]`-component is a maximal `[U]`-connected subset of `E' ∪ Sp`.
//!
//! The computation is a BFS over vertices outside `U`, using the
//! hypergraph's incidence index for real edges and direct intersection
//! tests for the (few) special edges.

use crate::bitset::{EdgeSet, VertexSet};
use crate::extended::{SpecialArena, SpecialId, Subproblem};
use crate::graph::Hypergraph;

/// One `[U]`-component of an extended subhypergraph.
#[derive(Clone, Debug)]
pub struct Component {
    /// Real edges in the component.
    pub edges: EdgeSet,
    /// Special edges in the component.
    pub specials: Vec<SpecialId>,
    /// `V(component)`: union of all member vertex sets (including vertices
    /// that lie inside the separator `U`).
    pub vertices: VertexSet,
}

impl Component {
    /// `|edges| + |specials|` — the size measure of balancedness checks.
    #[inline]
    pub fn size(&self) -> usize {
        self.edges.len() + self.specials.len()
    }

    /// Converts the component into a [`Subproblem`] (dropping `vertices`).
    pub fn into_subproblem(self) -> Subproblem {
        Subproblem {
            edges: self.edges,
            specials: self.specials,
        }
    }

    /// Borrowing view as a [`Subproblem`] clone.
    pub fn to_subproblem(&self) -> Subproblem {
        Subproblem {
            edges: self.edges.clone(),
            specials: self.specials.clone(),
        }
    }
}

/// Result of splitting a subproblem at a separator `U`.
#[derive(Clone, Debug)]
pub struct Separation {
    /// The `[U]`-components, in deterministic (seed-order) order.
    pub components: Vec<Component>,
    /// Real edges `f` with `f ⊆ U`: they belong to no component.
    pub covered_edges: EdgeSet,
    /// Special edges `s` with `s ⊆ U`.
    pub covered_specials: Vec<SpecialId>,
}

impl Separation {
    /// Size of the largest component, or 0 if there are none.
    pub fn max_component_size(&self) -> usize {
        self.components.iter().map(|c| c.size()).max().unwrap_or(0)
    }

    /// Index of the unique component with `size > half`, if any.
    ///
    /// At most one component can exceed half of the subproblem size, since
    /// components are disjoint.
    pub fn oversized_component(&self, subproblem_size: usize) -> Option<usize> {
        self.components
            .iter()
            .position(|c| 2 * c.size() > subproblem_size)
    }
}

/// Computes the `[U]`-components of `sub` with separator vertex set `sep`.
pub fn separate(
    hg: &Hypergraph,
    arena: &SpecialArena,
    sub: &Subproblem,
    sep: &VertexSet,
) -> Separation {
    let mut remaining_edges = sub.edges.clone();
    let mut remaining_specials: Vec<SpecialId> = Vec::with_capacity(sub.specials.len());
    let mut covered_edges = hg.edge_set();
    let mut covered_specials = Vec::new();

    // Members fully inside U are "covered": they participate in no component.
    for e in &sub.edges {
        if hg.edge(e).is_subset_of(sep) {
            covered_edges.insert(e);
            remaining_edges.remove(e);
        }
    }
    for &s in &sub.specials {
        if arena.get(s).is_subset_of(sep) {
            covered_specials.push(s);
        } else {
            remaining_specials.push(s);
        }
    }

    let mut components = Vec::new();
    let mut special_alive = vec![true; remaining_specials.len()];
    let mut alive_specials = remaining_specials.len();

    loop {
        // Seed: first remaining edge, else first remaining special.
        let mut comp_edges = hg.edge_set();
        let mut comp_specials: Vec<SpecialId> = Vec::new();
        let mut comp_vertices = hg.vertex_set();
        let mut frontier = hg.vertex_set();

        if let Some(e) = remaining_edges.first() {
            remaining_edges.remove(e);
            comp_edges.insert(e);
            comp_vertices.union_with(hg.edge(e));
            frontier.union_with(hg.edge(e));
        } else if alive_specials > 0 {
            let idx = special_alive.iter().position(|&a| a).expect("counted above");
            special_alive[idx] = false;
            alive_specials -= 1;
            let s = remaining_specials[idx];
            comp_specials.push(s);
            comp_vertices.union_with(arena.get(s));
            frontier.union_with(arena.get(s));
        } else {
            break;
        }
        frontier.difference_with(sep);

        let mut visited = hg.vertex_set();
        while !frontier.is_empty() {
            visited.union_with(&frontier);
            let mut next = hg.vertex_set();
            for v in &frontier {
                let hits = hg.incident_edges(v).intersection(&remaining_edges);
                for e in &hits {
                    remaining_edges.remove(e);
                    comp_edges.insert(e);
                    comp_vertices.union_with(hg.edge(e));
                    next.union_with(hg.edge(e));
                }
            }
            if alive_specials > 0 {
                for (idx, alive) in special_alive.iter_mut().enumerate() {
                    if *alive && arena.get(remaining_specials[idx]).intersects(&frontier) {
                        *alive = false;
                        alive_specials -= 1;
                        let s = remaining_specials[idx];
                        comp_specials.push(s);
                        comp_vertices.union_with(arena.get(s));
                        next.union_with(arena.get(s));
                    }
                }
            }
            next.difference_with(sep);
            next.difference_with(&visited);
            frontier = next;
        }

        comp_specials.sort_unstable();
        components.push(Component {
            edges: comp_edges,
            specials: comp_specials,
            vertices: comp_vertices,
        });
    }

    Separation {
        components,
        covered_edges,
        covered_specials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::{Edge, Vertex};

    fn path5() -> Hypergraph {
        // e0={0,1}, e1={1,2}, e2={2,3}, e3={3,4}
        Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]])
    }

    fn vset(hg: &Hypergraph, vs: &[u32]) -> VertexSet {
        VertexSet::from_iter(hg.num_vertices(), vs.iter().map(|&v| Vertex(v)))
    }

    #[test]
    fn empty_separator_single_component() {
        let hg = path5();
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let sep = hg.vertex_set();
        let s = separate(&hg, &arena, &sub, &sep);
        assert_eq!(s.components.len(), 1);
        assert_eq!(s.components[0].size(), 4);
        assert!(s.covered_edges.is_empty());
    }

    #[test]
    fn middle_vertex_splits_path() {
        let hg = path5();
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let sep = vset(&hg, &[2]);
        let s = separate(&hg, &arena, &sub, &sep);
        assert_eq!(s.components.len(), 2);
        let sizes: Vec<usize> = s.components.iter().map(|c| c.size()).collect();
        assert_eq!(sizes, vec![2, 2]);
        // V(comp) includes separator vertices that members touch.
        assert!(s.components[0].vertices.contains(Vertex(2)));
    }

    #[test]
    fn covered_edges_belong_to_no_component() {
        let hg = path5();
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let sep = vset(&hg, &[1, 2]);
        let s = separate(&hg, &arena, &sub, &sep);
        // e1={1,2} ⊆ U is covered.
        assert!(s.covered_edges.contains(Edge(1)));
        assert_eq!(s.components.len(), 2);
        let total: usize = s.components.iter().map(|c| c.size()).sum();
        assert_eq!(total + s.covered_edges.len(), 4);
    }

    #[test]
    fn specials_join_components() {
        let hg = path5();
        let mut arena = SpecialArena::new();
        // A special edge bridging vertices 0 and 4 merges both path halves
        // even across the separator at vertex 2.
        let s_bridge = arena.push(vset(&hg, &[0, 4]));
        let mut sub = Subproblem::whole(&hg);
        sub.specials.push(s_bridge);
        let sep = vset(&hg, &[2]);
        let s = separate(&hg, &arena, &sub, &sep);
        assert_eq!(s.components.len(), 1);
        assert_eq!(s.components[0].size(), 5);
        assert_eq!(s.components[0].specials, vec![s_bridge]);
    }

    #[test]
    fn covered_special_is_reported() {
        let hg = path5();
        let mut arena = SpecialArena::new();
        let s_cov = arena.push(vset(&hg, &[2, 3]));
        let mut sub = Subproblem::whole(&hg);
        sub.specials.push(s_cov);
        let sep = vset(&hg, &[2, 3]);
        let s = separate(&hg, &arena, &sub, &sep);
        assert_eq!(s.covered_specials, vec![s_cov]);
        assert!(s.components.iter().all(|c| c.specials.is_empty()));
    }

    #[test]
    fn oversized_component_detection() {
        let hg = path5();
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        // Separator at vertex 1: components {e0} and {e1,e2,e3}.
        let s = separate(&hg, &arena, &sub, &vset(&hg, &[1]));
        assert_eq!(s.components.len(), 2);
        let over = s.oversized_component(sub.size());
        assert!(over.is_some());
        assert_eq!(s.components[over.unwrap()].size(), 3);
        // Separator at vertex 2: both components have size 2 = |H'|/2.
        let s2 = separate(&hg, &arena, &sub, &vset(&hg, &[2]));
        assert!(s2.oversized_component(sub.size()).is_none());
    }

    #[test]
    fn separation_is_a_partition() {
        let hg = Hypergraph::from_edge_lists(&[
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4, 5],
            vec![5, 6],
            vec![7, 8],
            vec![1, 7],
        ]);
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let sep = vset(&hg, &[2, 7]);
        let s = separate(&hg, &arena, &sub, &sep);
        let mut seen = hg.edge_set();
        for c in &s.components {
            assert!(seen.is_disjoint_from(&c.edges), "components overlap");
            seen.union_with(&c.edges);
        }
        seen.union_with(&s.covered_edges);
        assert_eq!(seen, sub.edges);
    }
}
