//! Enumeration of bounded-size edge subsets — the λ-label search space.
//!
//! Every solver in this workspace searches over subsets `λ ⊆ cands` with
//! `1 ≤ |λ| ≤ k`. The enumeration is provided in two flavours:
//!
//! * a zero-allocation callback driver ([`for_each_subset`]) used in the
//!   hot search loops, with early exit through [`ControlFlow`];
//! * a lead-partitioned variant ([`for_each_subset_with_lead`]) which
//!   enumerates only the subsets whose *smallest* member is `cands[lead]`.
//!   The lead index partitions the full space, which is exactly how the
//!   paper's implementation splits the separator search across cores
//!   (Appendix D.1).
//!
//! Subsets are produced in ascending-size, lexicographic order so that
//! cheap (small) separators are tried first.

use std::ops::ControlFlow;

use crate::bitset::Edge;

/// Invokes `f` on every subset of `cands` with size in `1..=k`.
///
/// Returns `Some(t)` if `f` broke with `t`, `None` if the space was
/// exhausted. The slice passed to `f` is only valid for the duration of
/// the call.
pub fn for_each_subset<T>(
    cands: &[Edge],
    k: usize,
    f: impl FnMut(&[Edge]) -> ControlFlow<T>,
) -> Option<T> {
    let mut buf: Vec<Edge> = Vec::with_capacity(k);
    for_each_subset_in(cands, k, &mut buf, f)
}

/// Like [`for_each_subset`], drawing the enumeration buffer from the
/// caller so repeated enumerations don't allocate (the engine's scratch
/// workspace holds one buffer per recursion level).
pub fn for_each_subset_in<T>(
    cands: &[Edge],
    k: usize,
    buf: &mut Vec<Edge>,
    mut f: impl FnMut(&[Edge]) -> ControlFlow<T>,
) -> Option<T> {
    buf.clear();
    for r in 1..=k.min(cands.len()) {
        if let ControlFlow::Break(t) = combos(cands, 0, r, buf, &mut f) {
            return Some(t);
        }
    }
    None
}

/// Invokes `f` on every subset of `cands` whose smallest member is
/// `cands[lead]`, with total size in `1..=k`.
pub fn for_each_subset_with_lead<T>(
    cands: &[Edge],
    lead: usize,
    k: usize,
    f: impl FnMut(&[Edge]) -> ControlFlow<T>,
) -> Option<T> {
    let mut buf: Vec<Edge> = Vec::with_capacity(k);
    for_each_subset_with_lead_in(cands, lead, k, &mut buf, f)
}

/// Like [`for_each_subset_with_lead`] with a caller-owned buffer.
pub fn for_each_subset_with_lead_in<T>(
    cands: &[Edge],
    lead: usize,
    k: usize,
    buf: &mut Vec<Edge>,
    mut f: impl FnMut(&[Edge]) -> ControlFlow<T>,
) -> Option<T> {
    if k == 0 || lead >= cands.len() {
        return None;
    }
    buf.clear();
    buf.push(cands[lead]);
    let rest = &cands[lead + 1..];
    // Tail sizes 0..=k-1, ascending so small subsets come first.
    for r in 0..k.min(rest.len() + 1) {
        if let ControlFlow::Break(t) = combos(rest, 0, r, buf, &mut f) {
            return Some(t);
        }
    }
    None
}

/// One step of a driven subset walk (see [`for_each_subset_driven_in`]).
///
/// The walk is the same depth-first, ascending-size enumeration as
/// [`for_each_subset_in`], but exposes the prefix pushes and pops so the
/// caller can maintain per-prefix state *incrementally* — e.g. the
/// engine's λp pre-filter keeps `⋃λp` and its coverage-touch masks as
/// depth-indexed stacks, updated once per push instead of recomputed per
/// visited subset. Consecutive subsets share long prefixes, so the
/// per-visit cost drops from `O(|subset|)` set unions (plus a vertex
/// walk) to `O(1)` stack reads.
#[derive(Debug)]
pub enum SubsetStep<'a> {
    /// `cands[index]` was appended to the prefix; it now sits at position
    /// `depth` (the prefix length is `depth + 1`).
    Push {
        /// The appended candidate.
        edge: Edge,
        /// Its index in `cands`.
        index: usize,
        /// Its position in the prefix.
        depth: usize,
    },
    /// The edge at position `depth` was removed from the prefix.
    Pop {
        /// The vacated position.
        depth: usize,
    },
    /// A complete subset of size `1..=k` — same sequence, same slices, as
    /// [`for_each_subset_in`] produces.
    Visit {
        /// The current subset (valid for the duration of the call).
        subset: &'a [Edge],
    },
}

/// Like [`for_each_subset_in`], additionally reporting every prefix
/// push/pop to `f` (as [`SubsetStep`]s) so per-prefix state can be
/// maintained incrementally across the walk. `Break` from any step ends
/// the enumeration.
pub fn for_each_subset_driven_in<T>(
    cands: &[Edge],
    k: usize,
    buf: &mut Vec<Edge>,
    mut f: impl FnMut(SubsetStep<'_>) -> ControlFlow<T>,
) -> Option<T> {
    buf.clear();
    for r in 1..=k.min(cands.len()) {
        if let ControlFlow::Break(t) = combos_driven(cands, 0, r, buf, &mut f) {
            return Some(t);
        }
    }
    None
}

fn combos_driven<T>(
    cands: &[Edge],
    start: usize,
    remaining: usize,
    buf: &mut Vec<Edge>,
    f: &mut impl FnMut(SubsetStep<'_>) -> ControlFlow<T>,
) -> ControlFlow<T> {
    if remaining == 0 {
        return f(SubsetStep::Visit { subset: buf });
    }
    let last = cands.len().saturating_sub(remaining - 1);
    for i in start..last {
        let depth = buf.len();
        buf.push(cands[i]);
        f(SubsetStep::Push {
            edge: cands[i],
            index: i,
            depth,
        })?;
        let r = combos_driven(cands, i + 1, remaining - 1, buf, f);
        buf.pop();
        r?;
        f(SubsetStep::Pop { depth })?;
    }
    ControlFlow::Continue(())
}

fn combos<T>(
    cands: &[Edge],
    start: usize,
    remaining: usize,
    buf: &mut Vec<Edge>,
    f: &mut impl FnMut(&[Edge]) -> ControlFlow<T>,
) -> ControlFlow<T> {
    if remaining == 0 {
        return f(buf);
    }
    // Leave room for the remaining-1 picks after this one.
    let last = cands.len().saturating_sub(remaining - 1);
    for i in start..last {
        buf.push(cands[i]);
        let r = combos(cands, i + 1, remaining - 1, buf, f);
        buf.pop();
        r?;
    }
    ControlFlow::Continue(())
}

/// Number of subsets with size in `1..=k` — the search-space volume.
/// Saturates at `u128::MAX`.
pub fn subset_space_size(n: usize, k: usize) -> u128 {
    let mut total: u128 = 0;
    let mut c: u128 = 1; // C(n, 0)
    for r in 1..=k.min(n) {
        // C(n, r) = C(n, r-1) * (n - r + 1) / r
        c = c
            .saturating_mul((n - r + 1) as u128)
            .checked_div(r as u128)
            .unwrap_or(u128::MAX);
        total = total.saturating_add(c);
    }
    total
}

/// Collects all subsets with size in `1..=k` (testing/diagnostics only).
pub fn all_subsets(cands: &[Edge], k: usize) -> Vec<Vec<Edge>> {
    let mut out = Vec::new();
    for_each_subset::<()>(cands, k, |s| {
        out.push(s.to_vec());
        ControlFlow::Continue(())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(n: u32) -> Vec<Edge> {
        (0..n).map(Edge).collect()
    }

    #[test]
    fn enumerates_all_bounded_subsets() {
        let all = all_subsets(&edges(4), 2);
        // C(4,1) + C(4,2) = 4 + 6
        assert_eq!(all.len(), 10);
        assert_eq!(subset_space_size(4, 2), 10);
        // Ascending-size order: singletons first.
        assert!(all[..4].iter().all(|s| s.len() == 1));
        assert!(all[4..].iter().all(|s| s.len() == 2));
    }

    #[test]
    fn k_larger_than_n_is_fine() {
        let all = all_subsets(&edges(3), 10);
        assert_eq!(all.len(), 7); // 2^3 - 1
        assert_eq!(subset_space_size(3, 10), 7);
    }

    #[test]
    fn lead_partitions_the_space() {
        let cands = edges(5);
        let k = 3;
        let mut by_lead = Vec::new();
        for lead in 0..cands.len() {
            for_each_subset_with_lead::<()>(&cands, lead, k, |s| {
                by_lead.push(s.to_vec());
                ControlFlow::Continue(())
            });
        }
        let mut whole = all_subsets(&cands, k);
        by_lead.sort();
        whole.sort();
        assert_eq!(by_lead, whole);
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let mut seen = 0;
        let res = for_each_subset(&edges(10), 3, |s| {
            seen += 1;
            if s.len() == 2 {
                ControlFlow::Break(s.to_vec())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(res.unwrap().len(), 2);
        assert_eq!(seen, 11); // 10 singletons + the first pair
    }

    #[test]
    fn empty_candidates_yield_nothing() {
        assert!(all_subsets(&[], 3).is_empty());
        assert_eq!(subset_space_size(0, 3), 0);
        assert!(for_each_subset_with_lead::<()>(&[], 0, 3, |_| ControlFlow::Break(())).is_none());
    }

    #[test]
    fn driven_walk_visits_the_same_subsets_in_order() {
        let cands = edges(6);
        let k = 3;
        let plain = all_subsets(&cands, k);
        let mut driven = Vec::new();
        let mut pushes = 0usize;
        let mut pops = 0usize;
        let mut depth_now = 0usize;
        let mut buf = Vec::new();
        for_each_subset_driven_in::<()>(&cands, k, &mut buf, |step| {
            match step {
                SubsetStep::Push { edge, index, depth } => {
                    assert_eq!(edge, cands[index]);
                    assert_eq!(depth, depth_now, "push reports the prefix top");
                    depth_now += 1;
                    pushes += 1;
                }
                SubsetStep::Pop { depth } => {
                    depth_now -= 1;
                    assert_eq!(depth, depth_now, "pop reports the vacated position");
                    pops += 1;
                }
                SubsetStep::Visit { subset } => {
                    assert_eq!(subset.len(), depth_now, "visit sees the full prefix");
                    driven.push(subset.to_vec());
                }
            }
            ControlFlow::Continue(())
        });
        assert_eq!(driven, plain, "driven walk must preserve the order");
        assert_eq!(pushes, pops, "an exhausted walk balances push/pop");
    }

    #[test]
    fn driven_walk_prefix_state_matches_subsets() {
        // Maintain the prefix as a depth-indexed stack from Push events
        // alone (pops are free: the next push at a depth overwrites it) —
        // exactly the engine's incremental-mask pattern. Every Visit must
        // see stack[0..len] equal to the visited subset.
        let cands = edges(7);
        let mut stack: Vec<Edge> = Vec::new();
        let mut buf = Vec::new();
        let mut visits = 0usize;
        for_each_subset_driven_in::<()>(&cands, 3, &mut buf, |step| {
            match step {
                SubsetStep::Push { edge, depth, .. } => {
                    stack.truncate(depth);
                    stack.push(edge);
                }
                SubsetStep::Pop { .. } => {}
                SubsetStep::Visit { subset } => {
                    assert_eq!(&stack[..subset.len()], subset);
                    visits += 1;
                }
            }
            ControlFlow::Continue(())
        });
        assert_eq!(visits as u128, subset_space_size(7, 3));
    }

    #[test]
    fn driven_walk_breaks_early_from_any_step() {
        let cands = edges(8);
        let mut buf = Vec::new();
        let mut seen = 0usize;
        let hit = for_each_subset_driven_in(&cands, 2, &mut buf, |step| {
            if let SubsetStep::Visit { subset } = step {
                seen += 1;
                if subset.len() == 2 {
                    return ControlFlow::Break(subset.to_vec());
                }
            }
            ControlFlow::Continue(())
        });
        assert_eq!(hit.unwrap().len(), 2);
        assert_eq!(seen, 9); // 8 singletons + the first pair
    }

    #[test]
    fn space_size_matches_enumeration_for_larger_inputs() {
        for n in 0..8u32 {
            for k in 0..5usize {
                let count = all_subsets(&edges(n), k).len() as u128;
                assert_eq!(count, subset_space_size(n as usize, k), "n={n} k={k}");
            }
        }
    }
}
