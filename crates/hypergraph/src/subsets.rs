//! Enumeration of bounded-size edge subsets — the λ-label search space.
//!
//! Every solver in this workspace searches over subsets `λ ⊆ cands` with
//! `1 ≤ |λ| ≤ k`. The enumeration is provided in two flavours:
//!
//! * a zero-allocation callback driver ([`for_each_subset`]) used in the
//!   hot search loops, with early exit through [`ControlFlow`];
//! * a lead-partitioned variant ([`for_each_subset_with_lead`]) which
//!   enumerates only the subsets whose *smallest* member is `cands[lead]`.
//!   The lead index partitions the full space, which is exactly how the
//!   paper's implementation splits the separator search across cores
//!   (Appendix D.1).
//!
//! Subsets are produced in ascending-size, lexicographic order so that
//! cheap (small) separators are tried first.

use std::ops::ControlFlow;

use crate::bitset::Edge;

/// Invokes `f` on every subset of `cands` with size in `1..=k`.
///
/// Returns `Some(t)` if `f` broke with `t`, `None` if the space was
/// exhausted. The slice passed to `f` is only valid for the duration of
/// the call.
pub fn for_each_subset<T>(
    cands: &[Edge],
    k: usize,
    f: impl FnMut(&[Edge]) -> ControlFlow<T>,
) -> Option<T> {
    let mut buf: Vec<Edge> = Vec::with_capacity(k);
    for_each_subset_in(cands, k, &mut buf, f)
}

/// Like [`for_each_subset`], drawing the enumeration buffer from the
/// caller so repeated enumerations don't allocate (the engine's scratch
/// workspace holds one buffer per recursion level).
pub fn for_each_subset_in<T>(
    cands: &[Edge],
    k: usize,
    buf: &mut Vec<Edge>,
    mut f: impl FnMut(&[Edge]) -> ControlFlow<T>,
) -> Option<T> {
    buf.clear();
    for r in 1..=k.min(cands.len()) {
        if let ControlFlow::Break(t) = combos(cands, 0, r, buf, &mut f) {
            return Some(t);
        }
    }
    None
}

/// Invokes `f` on every subset of `cands` whose smallest member is
/// `cands[lead]`, with total size in `1..=k`.
pub fn for_each_subset_with_lead<T>(
    cands: &[Edge],
    lead: usize,
    k: usize,
    f: impl FnMut(&[Edge]) -> ControlFlow<T>,
) -> Option<T> {
    let mut buf: Vec<Edge> = Vec::with_capacity(k);
    for_each_subset_with_lead_in(cands, lead, k, &mut buf, f)
}

/// Like [`for_each_subset_with_lead`] with a caller-owned buffer.
pub fn for_each_subset_with_lead_in<T>(
    cands: &[Edge],
    lead: usize,
    k: usize,
    buf: &mut Vec<Edge>,
    mut f: impl FnMut(&[Edge]) -> ControlFlow<T>,
) -> Option<T> {
    if k == 0 || lead >= cands.len() {
        return None;
    }
    buf.clear();
    buf.push(cands[lead]);
    let rest = &cands[lead + 1..];
    // Tail sizes 0..=k-1, ascending so small subsets come first.
    for r in 0..k.min(rest.len() + 1) {
        if let ControlFlow::Break(t) = combos(rest, 0, r, buf, &mut f) {
            return Some(t);
        }
    }
    None
}

fn combos<T>(
    cands: &[Edge],
    start: usize,
    remaining: usize,
    buf: &mut Vec<Edge>,
    f: &mut impl FnMut(&[Edge]) -> ControlFlow<T>,
) -> ControlFlow<T> {
    if remaining == 0 {
        return f(buf);
    }
    // Leave room for the remaining-1 picks after this one.
    let last = cands.len().saturating_sub(remaining - 1);
    for i in start..last {
        buf.push(cands[i]);
        let r = combos(cands, i + 1, remaining - 1, buf, f);
        buf.pop();
        r?;
    }
    ControlFlow::Continue(())
}

/// Number of subsets with size in `1..=k` — the search-space volume.
/// Saturates at `u128::MAX`.
pub fn subset_space_size(n: usize, k: usize) -> u128 {
    let mut total: u128 = 0;
    let mut c: u128 = 1; // C(n, 0)
    for r in 1..=k.min(n) {
        // C(n, r) = C(n, r-1) * (n - r + 1) / r
        c = c
            .saturating_mul((n - r + 1) as u128)
            .checked_div(r as u128)
            .unwrap_or(u128::MAX);
        total = total.saturating_add(c);
    }
    total
}

/// Collects all subsets with size in `1..=k` (testing/diagnostics only).
pub fn all_subsets(cands: &[Edge], k: usize) -> Vec<Vec<Edge>> {
    let mut out = Vec::new();
    for_each_subset::<()>(cands, k, |s| {
        out.push(s.to_vec());
        ControlFlow::Continue(())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(n: u32) -> Vec<Edge> {
        (0..n).map(Edge).collect()
    }

    #[test]
    fn enumerates_all_bounded_subsets() {
        let all = all_subsets(&edges(4), 2);
        // C(4,1) + C(4,2) = 4 + 6
        assert_eq!(all.len(), 10);
        assert_eq!(subset_space_size(4, 2), 10);
        // Ascending-size order: singletons first.
        assert!(all[..4].iter().all(|s| s.len() == 1));
        assert!(all[4..].iter().all(|s| s.len() == 2));
    }

    #[test]
    fn k_larger_than_n_is_fine() {
        let all = all_subsets(&edges(3), 10);
        assert_eq!(all.len(), 7); // 2^3 - 1
        assert_eq!(subset_space_size(3, 10), 7);
    }

    #[test]
    fn lead_partitions_the_space() {
        let cands = edges(5);
        let k = 3;
        let mut by_lead = Vec::new();
        for lead in 0..cands.len() {
            for_each_subset_with_lead::<()>(&cands, lead, k, |s| {
                by_lead.push(s.to_vec());
                ControlFlow::Continue(())
            });
        }
        let mut whole = all_subsets(&cands, k);
        by_lead.sort();
        whole.sort();
        assert_eq!(by_lead, whole);
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let mut seen = 0;
        let res = for_each_subset(&edges(10), 3, |s| {
            seen += 1;
            if s.len() == 2 {
                ControlFlow::Break(s.to_vec())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(res.unwrap().len(), 2);
        assert_eq!(seen, 11); // 10 singletons + the first pair
    }

    #[test]
    fn empty_candidates_yield_nothing() {
        assert!(all_subsets(&[], 3).is_empty());
        assert_eq!(subset_space_size(0, 3), 0);
        assert!(for_each_subset_with_lead::<()>(&[], 0, 3, |_| ControlFlow::Break(())).is_none());
    }

    #[test]
    fn space_size_matches_enumeration_for_larger_inputs() {
        for n in 0..8u32 {
            for k in 0..5usize {
                let count = all_subsets(&edges(n), k).len() as u128;
                assert_eq!(count, subset_space_size(n as usize, k), "n={n} k={k}");
            }
        }
    }
}
