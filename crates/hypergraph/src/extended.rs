//! Extended subhypergraphs (Definition 3.1 of the paper).
//!
//! An extended subhypergraph `⟨E', Sp, Conn⟩` carries, beyond a plain edge
//! subset `E'`, a set of *special edges* `Sp` (vertex sets acting as
//! interfaces to HD fragments constructed elsewhere) and a connector set
//! `Conn` (the interface to the fragment above).
//!
//! Special edges are created dynamically during the recursion (every
//! `χ(c)` of a chosen child node becomes one). Two distinct special edges
//! may have equal vertex sets — identity matters when stitching fragments —
//! so they live in a per-solve [`SpecialArena`] and are referenced by id.

use crate::bitset::{EdgeSet, VertexSet};
use crate::graph::Hypergraph;

/// Identifier of a special edge within a [`SpecialArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpecialId(pub u32);

/// Append-only store of special-edge vertex sets for one solver run.
#[derive(Clone, Default, Debug)]
pub struct SpecialArena {
    sets: Vec<VertexSet>,
}

impl SpecialArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new special edge with the given vertex set.
    pub fn push(&mut self, set: VertexSet) -> SpecialId {
        let id = SpecialId(self.sets.len() as u32);
        self.sets.push(set);
        id
    }

    /// The vertex set of a special edge.
    #[inline]
    pub fn get(&self, id: SpecialId) -> &VertexSet {
        &self.sets[id.0 as usize]
    }

    /// Number of special edges registered.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Rolls the arena back to `len` entries.
    ///
    /// Solvers use stack discipline: special edges pushed during a failed
    /// (or fully stitched) search branch are popped again, which keeps the
    /// arena small and makes per-branch clones cheap. Callers must ensure
    /// no live fragment references a truncated id.
    pub fn truncate(&mut self, len: usize) {
        debug_assert!(len <= self.sets.len());
        self.sets.truncate(len);
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

/// The `(E', Sp)` part of an extended subhypergraph — the paper's `Comp`
/// record in Algorithm 1/2. `Conn` travels separately because it changes
/// between recursive calls while `(E', Sp)` is what gets partitioned.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Subproblem {
    /// `E'` — subset of the edges of the base hypergraph.
    pub edges: EdgeSet,
    /// `Sp` — special edges by arena id, kept sorted for canonical hashing.
    pub specials: Vec<SpecialId>,
}

impl Subproblem {
    /// The root subproblem `⟨E(H), ∅⟩`.
    pub fn whole(hg: &Hypergraph) -> Self {
        Subproblem {
            edges: hg.all_edges(),
            specials: Vec::new(),
        }
    }

    /// An empty subproblem sized for `hg`.
    pub fn empty(hg: &Hypergraph) -> Self {
        Subproblem {
            edges: hg.edge_set(),
            specials: Vec::new(),
        }
    }

    /// `|E'| + |Sp|` — the size measure used by all balancedness checks.
    #[inline]
    pub fn size(&self) -> usize {
        self.edges.len() + self.specials.len()
    }

    /// Whether there are no edges and no special edges.
    pub fn is_empty(&self) -> bool {
        self.specials.is_empty() && self.edges.is_empty()
    }

    /// `V(H')` — union of all member vertex sets (edges and specials).
    pub fn vertices(&self, hg: &Hypergraph, arena: &SpecialArena) -> VertexSet {
        let mut v = hg.union_of(&self.edges);
        for &s in &self.specials {
            v.union_with(arena.get(s));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::{Edge, Vertex};

    #[test]
    fn arena_identity_of_equal_sets() {
        let mut arena = SpecialArena::new();
        let s1 = VertexSet::from_iter(10, [Vertex(1), Vertex(2)]);
        let a = arena.push(s1.clone());
        let b = arena.push(s1.clone());
        assert_ne!(a, b);
        assert_eq!(arena.get(a), arena.get(b));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn subproblem_size_and_vertices() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![3, 4]]);
        let mut arena = SpecialArena::new();
        let sp = arena.push(VertexSet::from_iter(5, [Vertex(4), Vertex(0)]));
        let mut edges = hg.edge_set();
        edges.insert(Edge(0));
        let sub = Subproblem {
            edges,
            specials: vec![sp],
        };
        assert_eq!(sub.size(), 2);
        let v = sub.vertices(&hg, &arena);
        assert_eq!(v.to_vec(), vec![Vertex(0), Vertex(1), Vertex(4)]);
    }

    #[test]
    fn whole_subproblem_covers_everything() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2]]);
        let sub = Subproblem::whole(&hg);
        assert_eq!(sub.size(), 2);
        assert!(!sub.is_empty());
        assert_eq!(
            sub.vertices(&hg, &SpecialArena::new()).len(),
            hg.num_vertices()
        );
    }
}
