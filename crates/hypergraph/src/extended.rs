//! Extended subhypergraphs (Definition 3.1 of the paper).
//!
//! An extended subhypergraph `⟨E', Sp, Conn⟩` carries, beyond a plain edge
//! subset `E'`, a set of *special edges* `Sp` (vertex sets acting as
//! interfaces to HD fragments constructed elsewhere) and a connector set
//! `Conn` (the interface to the fragment above).
//!
//! Special edges are created dynamically during the recursion (every
//! `χ(c)` of a chosen child node becomes one). Two distinct special edges
//! may have equal vertex sets — identity matters when stitching fragments —
//! so they live in a per-solve [`SpecialArena`] and are referenced by id.

use std::sync::Arc;

use crate::bitset::{EdgeSet, VertexSet};
use crate::graph::Hypergraph;

/// Identifier of a special edge within a [`SpecialArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SpecialId(pub u32);

/// Append-only store of special-edge vertex sets for one solver run.
///
/// Internally the arena is a two-part rope: an immutable, `Arc`-shared
/// *prefix* and an owned *tail*. [`Self::seal`] folds the tail into the
/// prefix, after which [`Clone`] is a reference-count bump plus an empty
/// tail — this is what lets the parallel λc race hand every branch its own
/// arena "checkpoint" without deep-copying the shared entries. Branches
/// only ever push/truncate above the sealed prefix, so the sharing is
/// invisible through the `push`/`get`/`truncate` API.
#[derive(Clone, Debug)]
pub struct SpecialArena {
    /// Shared, immutable storage for ids `0..prefix_live`.
    prefix: Arc<Vec<VertexSet>>,
    /// Logical length of the prefix part. Entries `prefix_live..` of
    /// `prefix` are dead (truncated below a seal point) and unreachable.
    prefix_live: usize,
    /// Owned storage for ids `prefix_live..len()`.
    tail: Vec<VertexSet>,
}

impl Default for SpecialArena {
    fn default() -> Self {
        SpecialArena {
            prefix: Arc::new(Vec::new()),
            prefix_live: 0,
            tail: Vec::new(),
        }
    }
}

impl SpecialArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new special edge with the given vertex set.
    pub fn push(&mut self, set: VertexSet) -> SpecialId {
        let id = SpecialId(self.len() as u32);
        self.tail.push(set);
        id
    }

    /// The vertex set of a special edge.
    #[inline]
    pub fn get(&self, id: SpecialId) -> &VertexSet {
        let idx = id.0 as usize;
        if idx < self.prefix_live {
            &self.prefix[idx]
        } else {
            &self.tail[idx - self.prefix_live]
        }
    }

    /// Number of special edges registered.
    pub fn len(&self) -> usize {
        self.prefix_live + self.tail.len()
    }

    /// Rolls the arena back to `len` entries.
    ///
    /// Solvers use stack discipline: special edges pushed during a failed
    /// (or fully stitched) search branch are popped again, which keeps the
    /// arena small and makes per-branch clones cheap. Callers must ensure
    /// no live fragment references a truncated id.
    pub fn truncate(&mut self, len: usize) {
        debug_assert!(len <= self.len());
        if len >= self.prefix_live {
            self.tail.truncate(len - self.prefix_live);
        } else {
            self.tail.clear();
            self.prefix_live = len;
            // Shrinking into the prefix: when we are the sole owner the dead
            // entries can be released right away. With sharers alive the
            // cut-off stays logical — the dead prefix entries remain
            // allocated until the last sharer drops the `Arc` (or until a
            // later sole-owner `truncate`/`seal` compacts them). Subsequent
            // pushes land in the tail either way.
            if let Some(owned) = Arc::get_mut(&mut self.prefix) {
                owned.truncate(len);
            }
        }
    }

    /// Forks the arena for a parallel sibling branch.
    ///
    /// Seals first (so ids `0..len()` live in the `Arc`-shared prefix) and
    /// returns a branch arena sharing that prefix with an empty private
    /// tail. The first fork at a given state pays the seal fold; every
    /// subsequent fork is a reference-count bump. A branch pushes and
    /// truncates privately above the fork point; ids below it resolve
    /// identically in parent and branch, which is what lets fragments built
    /// by a branch be stitched under the parent (after rebasing any id at
    /// or above the fork point — see `decomp`'s rebase helper).
    pub fn fork(&mut self) -> SpecialArena {
        self.seal();
        self.clone()
    }

    /// Entries physically allocated in the shared prefix, dead or alive.
    ///
    /// Diagnostics for the truncate-into-shared-prefix path: entries
    /// between [`len()`](Self::len) and this value are logically dead but
    /// still allocated because another sharer pins the `Arc`.
    pub fn prefix_allocated(&self) -> usize {
        self.prefix.len()
    }

    /// Folds the owned tail into the shared prefix, so that subsequent
    /// [`Clone`]s are O(1) in the entry contents (an `Arc` bump).
    ///
    /// When this arena is the sole owner of its prefix the fold moves the
    /// tail without copying any vertex set; otherwise the live prefix is
    /// copied once — still at most the cost a single pre-overlay
    /// `SpecialArena::clone()` used to pay, amortised over *all* branches
    /// of the race instead of paid per branch.
    pub fn seal(&mut self) {
        if self.tail.is_empty() && self.prefix_live == self.prefix.len() {
            return;
        }
        match Arc::get_mut(&mut self.prefix) {
            Some(owned) => {
                owned.truncate(self.prefix_live);
                owned.append(&mut self.tail);
            }
            None => {
                let mut merged: Vec<VertexSet> =
                    Vec::with_capacity(self.prefix_live + self.tail.len());
                merged.extend_from_slice(&self.prefix[..self.prefix_live]);
                merged.append(&mut self.tail);
                self.prefix = Arc::new(merged);
            }
        }
        self.prefix_live = self.prefix.len();
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The `(E', Sp)` part of an extended subhypergraph — the paper's `Comp`
/// record in Algorithm 1/2. `Conn` travels separately because it changes
/// between recursive calls while `(E', Sp)` is what gets partitioned.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Subproblem {
    /// `E'` — subset of the edges of the base hypergraph.
    pub edges: EdgeSet,
    /// `Sp` — special edges by arena id, kept sorted for canonical hashing.
    pub specials: Vec<SpecialId>,
}

impl Subproblem {
    /// The root subproblem `⟨E(H), ∅⟩`.
    pub fn whole(hg: &Hypergraph) -> Self {
        Subproblem {
            edges: hg.all_edges(),
            specials: Vec::new(),
        }
    }

    /// An empty subproblem sized for `hg`.
    pub fn empty(hg: &Hypergraph) -> Self {
        Subproblem {
            edges: hg.edge_set(),
            specials: Vec::new(),
        }
    }

    /// `|E'| + |Sp|` — the size measure used by all balancedness checks.
    #[inline]
    pub fn size(&self) -> usize {
        self.edges.len() + self.specials.len()
    }

    /// Whether there are no edges and no special edges.
    pub fn is_empty(&self) -> bool {
        self.specials.is_empty() && self.edges.is_empty()
    }

    /// `V(H')` — union of all member vertex sets (edges and specials).
    pub fn vertices(&self, hg: &Hypergraph, arena: &SpecialArena) -> VertexSet {
        let mut v = hg.vertex_set();
        self.vertices_into(hg, arena, &mut v);
        v
    }

    /// Like [`Self::vertices`], writing into a caller-owned buffer.
    ///
    /// Returns `true` if `out`'s buffer had to grow (threading the
    /// regrowth flag of [`Hypergraph::union_of_into`] to the caller's
    /// allocation meter).
    pub fn vertices_into(
        &self,
        hg: &Hypergraph,
        arena: &SpecialArena,
        out: &mut VertexSet,
    ) -> bool {
        let grew = hg.union_of_into(&self.edges, out);
        for &s in &self.specials {
            out.union_with(arena.get(s));
        }
        grew
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::{Edge, Vertex};

    #[test]
    fn arena_identity_of_equal_sets() {
        let mut arena = SpecialArena::new();
        let s1 = VertexSet::from_iter(10, [Vertex(1), Vertex(2)]);
        let a = arena.push(s1.clone());
        let b = arena.push(s1.clone());
        assert_ne!(a, b);
        assert_eq!(arena.get(a), arena.get(b));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn subproblem_size_and_vertices() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![3, 4]]);
        let mut arena = SpecialArena::new();
        let sp = arena.push(VertexSet::from_iter(5, [Vertex(4), Vertex(0)]));
        let mut edges = hg.edge_set();
        edges.insert(Edge(0));
        let sub = Subproblem {
            edges,
            specials: vec![sp],
        };
        assert_eq!(sub.size(), 2);
        let v = sub.vertices(&hg, &arena);
        assert_eq!(v.to_vec(), vec![Vertex(0), Vertex(1), Vertex(4)]);
    }

    #[test]
    fn sealed_clones_share_the_prefix_and_diverge_above_it() {
        let mut arena = SpecialArena::new();
        let a = arena.push(VertexSet::from_iter(8, [Vertex(0)]));
        let b = arena.push(VertexSet::from_iter(8, [Vertex(1)]));
        arena.seal();
        let checkpoint = arena.len();

        // Two "branches" from the sealed checkpoint.
        let mut left = arena.clone();
        let mut right = arena.clone();
        let l = left.push(VertexSet::from_iter(8, [Vertex(2)]));
        let r = right.push(VertexSet::from_iter(8, [Vertex(3)]));
        assert_eq!(l, r, "branches allocate ids independently");
        assert_eq!(left.get(l).to_vec(), vec![Vertex(2)]);
        assert_eq!(right.get(r).to_vec(), vec![Vertex(3)]);
        assert_eq!(left.get(a).to_vec(), vec![Vertex(0)]);
        assert_eq!(right.get(b).to_vec(), vec![Vertex(1)]);

        // Stack discipline: branches restore to the checkpoint.
        left.truncate(checkpoint);
        right.truncate(checkpoint);
        assert_eq!(left.len(), 2);
        assert_eq!(right.len(), 2);
    }

    #[test]
    fn truncate_below_seal_then_push_reuses_ids() {
        let mut arena = SpecialArena::new();
        let _a = arena.push(VertexSet::from_iter(8, [Vertex(0)]));
        let _b = arena.push(VertexSet::from_iter(8, [Vertex(1)]));
        arena.seal();
        let _keep_prefix_shared = arena.clone();
        arena.truncate(1);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.get(SpecialId(0)).to_vec(), vec![Vertex(0)]);
        let c = arena.push(VertexSet::from_iter(8, [Vertex(7)]));
        assert_eq!(c, SpecialId(1));
        assert_eq!(arena.get(c).to_vec(), vec![Vertex(7)]);
        // Re-sealing after a truncation keeps only the live entries.
        arena.seal();
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(SpecialId(0)).to_vec(), vec![Vertex(0)]);
        assert_eq!(arena.get(SpecialId(1)).to_vec(), vec![Vertex(7)]);
    }

    #[test]
    fn truncate_compacts_dead_prefix_when_sole_owner() {
        let mut arena = SpecialArena::new();
        for v in 0..4u32 {
            arena.push(VertexSet::from_iter(8, [Vertex(v)]));
        }
        arena.seal();
        assert_eq!(arena.prefix_allocated(), 4);

        // Sole owner: truncating into the prefix releases the dead entries
        // eagerly instead of leaving them allocated behind the Arc.
        arena.truncate(1);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.prefix_allocated(), 1, "dead prefix not compacted");
        assert_eq!(arena.get(SpecialId(0)).to_vec(), vec![Vertex(0)]);
    }

    #[test]
    fn truncate_keeps_dead_prefix_alive_for_sharers_then_compacts() {
        let mut arena = SpecialArena::new();
        for v in 0..4u32 {
            arena.push(VertexSet::from_iter(8, [Vertex(v)]));
        }
        arena.seal();
        let branch = arena.clone();

        // A sharer pins the Arc: the cut-off must stay logical so the
        // branch keeps seeing all four entries.
        arena.truncate(1);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.prefix_allocated(), 4);
        assert_eq!(branch.get(SpecialId(3)).to_vec(), vec![Vertex(3)]);

        // Once the last sharer is gone, the next truncate-into-prefix
        // compacts what is left.
        drop(branch);
        arena.truncate(0);
        assert_eq!(arena.prefix_allocated(), 0);
        assert!(arena.is_empty());
    }

    #[test]
    fn fork_shares_prefix_and_isolates_tails() {
        let mut parent = SpecialArena::new();
        let a = parent.push(VertexSet::from_iter(8, [Vertex(0)]));
        let mut left = parent.fork();
        let mut right = parent.fork();
        let checkpoint = parent.len();
        assert_eq!(checkpoint, 1);

        // Branch pushes are private and id-collide across branches.
        let l = left.push(VertexSet::from_iter(8, [Vertex(2)]));
        let r = right.push(VertexSet::from_iter(8, [Vertex(3)]));
        assert_eq!(l, r);
        assert_eq!(parent.len(), 1, "parent unaffected by branch pushes");
        assert_eq!(left.get(a).to_vec(), vec![Vertex(0)]);
        assert_eq!(right.get(a).to_vec(), vec![Vertex(0)]);

        // The parent can keep pushing after the fork without disturbing
        // the branches (its pushes land in its own tail).
        let p = parent.push(VertexSet::from_iter(8, [Vertex(7)]));
        assert_eq!(p, l);
        assert_eq!(left.get(l).to_vec(), vec![Vertex(2)]);
    }

    #[test]
    fn whole_subproblem_covers_everything() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2]]);
        let sub = Subproblem::whole(&hg);
        assert_eq!(sub.size(), 2);
        assert!(!sub.is_empty());
        assert_eq!(
            sub.vertices(&hg, &SpecialArena::new()).len(),
            hg.num_vertices()
        );
    }
}
