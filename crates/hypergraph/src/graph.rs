//! The hypergraph type and its builder.

use std::collections::HashMap;
use std::fmt;

use crate::bitset::{Edge, EdgeSet, Vertex, VertexSet};
use crate::lanes;
use crate::matrix::MaskMatrix;

/// A hypergraph `H = (V(H), E(H))`.
///
/// Vertices and edges are interned: externally they have string names
/// (as in HyperBench's `atom(var1,var2)` syntax), internally they are dense
/// `u32` indices so that all set operations are bitset operations.
///
/// Per the paper's convention (Section 2) there are no isolated vertices:
/// every vertex occurs in at least one edge, so a hypergraph is identified
/// with its edge set.
#[derive(Clone)]
pub struct Hypergraph {
    vertex_names: Vec<String>,
    edge_names: Vec<String>,
    /// `edges[e]` is the vertex set of edge `e`.
    edges: Vec<VertexSet>,
    /// `incidence[v]` is the set of edges containing vertex `v`.
    incidence: Vec<EdgeSet>,
    /// SoA mirror of `edges`: row `e` is edge `e`'s vertex blocks, all
    /// rows in one contiguous allocation. The union folds
    /// ([`Self::union_of_into`] and friends) stream these rows instead
    /// of chasing per-edge heap pointers.
    edge_rows: MaskMatrix<Vertex>,
    /// SoA mirror of `incidence`, streamed by the
    /// [`Self::edges_touching_into`] folds.
    incidence_rows: MaskMatrix<Edge>,
}

impl Hypergraph {
    /// Number of vertices `|V(H)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_names.len()
    }

    /// Number of edges `|E(H)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The vertex set of edge `e`.
    #[inline]
    pub fn edge(&self, e: Edge) -> &VertexSet {
        &self.edges[e.0 as usize]
    }

    /// The set of edges containing vertex `v`.
    #[inline]
    pub fn incident_edges(&self, v: Vertex) -> &EdgeSet {
        &self.incidence[v.0 as usize]
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.edges.len() as u32).map(Edge)
    }

    /// Iterates over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = Vertex> + '_ {
        (0..self.vertex_names.len() as u32).map(Vertex)
    }

    /// The full edge set `E(H)`.
    pub fn all_edges(&self) -> EdgeSet {
        EdgeSet::full(self.num_edges())
    }

    /// The full vertex set `V(H)`.
    pub fn all_vertices(&self) -> VertexSet {
        VertexSet::full(self.num_vertices())
    }

    /// An empty vertex set sized for this hypergraph.
    #[inline]
    pub fn vertex_set(&self) -> VertexSet {
        VertexSet::empty(self.num_vertices())
    }

    /// An empty edge set sized for this hypergraph.
    #[inline]
    pub fn edge_set(&self) -> EdgeSet {
        EdgeSet::empty(self.num_edges())
    }

    /// Union of the vertex sets of the given edges — `⋃S` in the paper.
    pub fn union_of(&self, edges: &EdgeSet) -> VertexSet {
        let mut s = self.vertex_set();
        for e in edges {
            s.union_with(self.edge(e));
        }
        s
    }

    /// Union of the vertex sets of edges given as a slice of ids.
    pub fn union_of_slice(&self, edges: &[Edge]) -> VertexSet {
        let mut s = self.vertex_set();
        self.union_of_slice_into(edges, &mut s);
        s
    }

    /// Like [`Self::union_of`], writing into a caller-owned buffer instead
    /// of allocating. `out` is reset to this hypergraph's vertex universe.
    ///
    /// Returns `true` if `out`'s buffer had to grow, so scratch-workspace
    /// callers can meter steady-state reallocation.
    pub fn union_of_into(&self, edges: &EdgeSet, out: &mut VertexSet) -> bool {
        let grew = out.reset(self.num_vertices());
        for e in edges {
            self.edge_rows.or_row_into(e.0 as usize, out);
        }
        grew
    }

    /// Like [`Self::union_of_slice`], writing into a caller-owned buffer
    /// instead of allocating. `out` is reset to this hypergraph's vertex
    /// universe.
    ///
    /// Returns `true` if `out`'s buffer had to grow (see
    /// [`Self::union_of_into`]).
    pub fn union_of_slice_into(&self, edges: &[Edge], out: &mut VertexSet) -> bool {
        let grew = out.reset(self.num_vertices());
        for &e in edges {
            self.edge_rows.or_row_into(e.0 as usize, out);
        }
        grew
    }

    /// The set of edges touching any vertex of `vs` — the union of the
    /// incidence rows of `vs`, i.e. `{e ∈ E(H) : e ∩ vs ≠ ∅}` as one
    /// word-parallel coverage bitmask.
    ///
    /// This is the "per-candidate-set union summary" behind the engine's
    /// λp admissibility pre-filter: membership of an edge in the mask
    /// replaces a per-edge vertex-set intersection test.
    pub fn edges_touching(&self, vs: &VertexSet) -> EdgeSet {
        let mut out = self.edge_set();
        self.edges_touching_into(vs, &mut out);
        out
    }

    /// Like [`Self::edges_touching`], writing into a caller-owned buffer
    /// instead of allocating. `out` is reset to this hypergraph's edge
    /// universe.
    ///
    /// Returns `true` if `out`'s buffer had to grow, so scratch-workspace
    /// callers can meter steady-state reallocation.
    pub fn edges_touching_into(&self, vs: &VertexSet, out: &mut EdgeSet) -> bool {
        let grew = out.reset(self.num_edges());
        for v in vs {
            self.incidence_rows.or_row_into(v.0 as usize, out);
        }
        grew
    }

    /// Like [`Self::edges_touching_into`], but the destination is row
    /// `row` of a caller-owned [`MaskMatrix`] — the λp pre-filter stores
    /// one touching-mask per candidate edge and this writes each mask
    /// straight into its SoA slot, incidence rows and destination both
    /// contiguous.
    pub fn edges_touching_into_row(&self, vs: &VertexSet, m: &mut MaskMatrix<Edge>, row: usize) {
        debug_assert_eq!(m.row_bits(), self.num_edges());
        m.clear_row(row);
        let out = m.row_mut(row);
        for v in vs {
            lanes::or_assign(out, self.incidence_rows.row(v.0 as usize));
        }
    }

    /// Name of vertex `v`.
    pub fn vertex_name(&self, v: Vertex) -> &str {
        &self.vertex_names[v.0 as usize]
    }

    /// Name of edge `e`.
    pub fn edge_name(&self, e: Edge) -> &str {
        &self.edge_names[e.0 as usize]
    }

    /// Looks up a vertex by name (linear scan; intended for tests/UX).
    pub fn vertex_by_name(&self, name: &str) -> Option<Vertex> {
        self.vertex_names
            .iter()
            .position(|n| n == name)
            .map(|i| Vertex(i as u32))
    }

    /// Looks up an edge by name (linear scan; intended for tests/UX).
    pub fn edge_by_name(&self, name: &str) -> Option<Edge> {
        self.edge_names
            .iter()
            .position(|n| n == name)
            .map(|i| Edge(i as u32))
    }

    /// Largest edge cardinality (maximum arity).
    pub fn max_arity(&self) -> usize {
        self.edges.iter().map(|e| e.len()).max().unwrap_or(0)
    }

    /// Mean edge cardinality; 0.0 for the empty hypergraph.
    pub fn avg_arity(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges.iter().map(|e| e.len()).sum::<usize>() as f64 / self.edges.len() as f64
    }

    /// Largest vertex degree.
    pub fn max_degree(&self) -> usize {
        self.incidence.iter().map(|i| i.len()).max().unwrap_or(0)
    }

    /// Builds a hypergraph from plain vertex-index edge lists.
    ///
    /// Vertices are named `v0..`, edges `e0..`. Intended for generators and
    /// tests. The vertex universe is `0..=max index` even if some indices in
    /// between never occur (they are then isolated and ignored by all
    /// algorithms, which operate on edges).
    pub fn from_edge_lists(edge_lists: &[Vec<u32>]) -> Self {
        let n = edge_lists
            .iter()
            .flat_map(|e| e.iter())
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut b = HypergraphBuilder::new();
        for (i, list) in edge_lists.iter().enumerate() {
            let names: Vec<String> = list.iter().map(|v| format!("v{v}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            b.add_edge(&format!("e{i}"), &name_refs);
        }
        // Make sure all of 0..n exist so index-based tests are stable.
        for v in 0..n {
            b.intern_vertex(&format!("v{v}"));
        }
        b.build()
    }

    /// Removes duplicate edges and edges contained in another edge.
    ///
    /// Both reductions preserve hypertree width: an edge `e ⊆ f` is covered
    /// by any node covering `f`, and using `f` in a λ-label is never worse
    /// than using `e`. Returns the reduced hypergraph and, for each retained
    /// edge, its original id.
    pub fn reduced(&self) -> (Hypergraph, Vec<Edge>) {
        let m = self.num_edges();
        let mut keep = vec![true; m];
        // Sort edge ids by descending cardinality; an edge can only be
        // subsumed by an edge at least as large that is kept.
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.edges[i].len()));
        for (pos, &i) in order.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            for &j in &order[pos + 1..] {
                if keep[j] && self.edges[j].is_subset_of(&self.edges[i]) {
                    keep[j] = false;
                }
            }
        }
        let kept: Vec<Edge> = (0..m as u32)
            .map(Edge)
            .filter(|e| keep[e.0 as usize])
            .collect();
        let mut b = HypergraphBuilder::new();
        for &e in &kept {
            let names: Vec<&str> = self.edge(e).iter().map(|v| self.vertex_name(v)).collect();
            b.add_edge(self.edge_name(e), &names);
        }
        (b.build(), kept)
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Hypergraph(|V|={}, |E|={})",
            self.num_vertices(),
            self.num_edges()
        )?;
        for e in self.edge_ids() {
            let vs: Vec<&str> = self.edge(e).iter().map(|v| self.vertex_name(v)).collect();
            writeln!(f, "  {}({})", self.edge_name(e), vs.join(","))?;
        }
        Ok(())
    }
}

/// Incremental construction of a [`Hypergraph`] with name interning.
#[derive(Default)]
pub struct HypergraphBuilder {
    vertex_ids: HashMap<String, u32>,
    vertex_names: Vec<String>,
    edge_names: Vec<String>,
    edge_lists: Vec<Vec<u32>>,
}

impl HypergraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a vertex name, returning its id.
    pub fn intern_vertex(&mut self, name: &str) -> Vertex {
        if let Some(&id) = self.vertex_ids.get(name) {
            return Vertex(id);
        }
        let id = self.vertex_names.len() as u32;
        self.vertex_ids.insert(name.to_owned(), id);
        self.vertex_names.push(name.to_owned());
        Vertex(id)
    }

    /// Adds an edge with the given name over the given vertex names.
    /// Returns the new edge's id.
    pub fn add_edge(&mut self, edge_name: &str, vertices: &[&str]) -> Edge {
        let list: Vec<u32> = vertices.iter().map(|v| self.intern_vertex(v).0).collect();
        let id = Edge(self.edge_lists.len() as u32);
        self.edge_names.push(edge_name.to_owned());
        self.edge_lists.push(list);
        id
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edge_lists.len()
    }

    /// Finalises the hypergraph, computing the incidence index.
    pub fn build(self) -> Hypergraph {
        let n = self.vertex_names.len();
        let m = self.edge_lists.len();
        let mut edges = Vec::with_capacity(m);
        let mut incidence = vec![EdgeSet::empty(m); n];
        for (ei, list) in self.edge_lists.iter().enumerate() {
            let mut set = VertexSet::empty(n);
            for &v in list {
                set.insert(Vertex(v));
                incidence[v as usize].insert(Edge(ei as u32));
            }
            edges.push(set);
        }
        let mut edge_rows = MaskMatrix::new();
        edge_rows.reset(m, n);
        for (ei, set) in edges.iter().enumerate() {
            edge_rows.set_row(ei, set);
        }
        let mut incidence_rows = MaskMatrix::new();
        incidence_rows.reset(n, m);
        for (vi, set) in incidence.iter().enumerate() {
            incidence_rows.set_row(vi, set);
        }
        Hypergraph {
            vertex_names: self.vertex_names,
            edge_names: self.edge_names,
            edges,
            incidence,
            edge_rows,
            incidence_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        // Three edges pairwise sharing a vertex.
        Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 0]])
    }

    #[test]
    fn builder_interns_and_indexes() {
        let mut b = HypergraphBuilder::new();
        b.add_edge("R1", &["x", "y"]);
        b.add_edge("R2", &["y", "z"]);
        let h = b.build();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 2);
        let y = h.vertex_by_name("y").unwrap();
        assert_eq!(h.incident_edges(y).len(), 2);
        assert_eq!(h.edge_name(Edge(0)), "R1");
        assert_eq!(h.vertex_name(Vertex(0)), "x");
    }

    #[test]
    fn union_of_edges() {
        let h = triangle();
        let mut es = h.edge_set();
        es.insert(Edge(0));
        es.insert(Edge(1));
        let u = h.union_of(&es);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn edges_touching_matches_per_edge_intersection() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![5, 6]]);
        for vs in [
            VertexSet::empty(h.num_vertices()),
            VertexSet::from_iter(h.num_vertices(), [Vertex(2)]),
            VertexSet::from_iter(h.num_vertices(), [Vertex(0), Vertex(4)]),
            h.all_vertices(),
        ] {
            let mask = h.edges_touching(&vs);
            for e in h.edge_ids() {
                assert_eq!(
                    mask.contains(e),
                    h.edge(e).intersects(&vs),
                    "edge {e:?} vs {vs:?}"
                );
            }
            // The _into variant agrees and stops growing once warm.
            let mut out = h.edge_set();
            assert!(!h.edges_touching_into(&vs, &mut out));
            assert_eq!(out, mask);
        }
    }

    #[test]
    fn matrix_backed_folds_agree_with_per_set_loops() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1, 2], vec![2, 3], vec![3, 4], vec![5, 6]]);
        // union_of_into streams edge_rows; compare against a naive fold
        // over the per-edge bitsets.
        let mut es = h.edge_set();
        es.insert(Edge(0));
        es.insert(Edge(2));
        let mut fast = h.vertex_set();
        h.union_of_into(&es, &mut fast);
        let mut naive = h.vertex_set();
        for e in &es {
            naive.union_with(h.edge(e));
        }
        assert_eq!(fast, naive);
        assert!(fast.tail_invariant_ok());

        // edges_touching_into_row writes the same mask as the set variant.
        let vs = VertexSet::from_iter(h.num_vertices(), [Vertex(2), Vertex(5)]);
        let mut m: MaskMatrix<Edge> = MaskMatrix::new();
        m.reset(2, h.num_edges());
        h.edges_touching_into_row(&vs, &mut m, 1);
        let mut row = h.edge_set();
        m.copy_row_into(1, &mut row);
        assert_eq!(row, h.edges_touching(&vs));
        assert!(m.row_is_empty(0));
    }

    #[test]
    fn arity_and_degree_stats() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1, 2, 3], vec![3, 4], vec![3]]);
        assert_eq!(h.max_arity(), 4);
        assert_eq!(h.max_degree(), 3); // vertex 3 in all three edges
        assert!((h.avg_arity() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reduced_removes_subsumed_and_duplicate_edges() {
        let h = Hypergraph::from_edge_lists(&[
            vec![0, 1, 2],
            vec![0, 1],    // subsumed by e0
            vec![0, 1, 2], // duplicate of e0
            vec![2, 3],
        ]);
        let (r, kept) = h.reduced();
        assert_eq!(r.num_edges(), 2);
        assert_eq!(kept.len(), 2);
        // e0 (or its duplicate) and e3 survive.
        assert!(kept.contains(&Edge(0)) || kept.contains(&Edge(2)));
        assert!(kept.contains(&Edge(3)));
    }

    #[test]
    fn from_edge_lists_names_are_stable() {
        let h = triangle();
        assert_eq!(h.vertex_by_name("v1"), Some(Vertex(1)));
        assert_eq!(h.edge_by_name("e2"), Some(Edge(2)));
    }
}
