//! Depth-indexed scratch stacks — the shared per-level workspace
//! discipline of every solver in the workspace.
//!
//! All four search engines (the optimised `log-k-decomp` engine, the
//! `det-k-decomp` baseline, the Algorithm 1 reference oracle and the GHD
//! search) recurse with one bundle of warm scratch buffers per recursion
//! level. The access pattern is always the same *take/put discipline*:
//!
//! 1. on entering recursion depth `d`, the level's bundle is **taken out**
//!    of the stack (leaving `None` behind), so the recursion below — which
//!    only ever draws depths `> d` — can borrow the stack freely without
//!    aliasing the active level;
//! 2. on leaving the level, the bundle is **put back** at `d`, warm, for
//!    the next subproblem that reaches this depth.
//!
//! Levels are created lazily: a depth that is never reached (or whose
//! calls all hit a base case) never allocates a bundle. A warm stack can
//! be moved between engine instances — the hybrid driver pools
//! `det-k-decomp` stacks across handoffs this way — which is why the
//! stack owns its bundles rather than borrowing them.
//!
//! [`LevelStack<T>`] is that discipline, generic over the bundle type.
//! Callers that meter cold allocations use [`LevelStack::take`] (which
//! reports a missing bundle as `None`); callers that don't, use
//! [`LevelStack::take_or_default`].

/// A lazily grown stack of per-recursion-level scratch bundles, indexed
/// by depth. See the module docs for the take/put discipline.
#[derive(Debug)]
pub struct LevelStack<T> {
    levels: Vec<Option<T>>,
}

impl<T> LevelStack<T> {
    /// Creates an empty (cold) stack.
    pub fn new() -> Self {
        LevelStack { levels: Vec::new() }
    }

    /// Takes the bundle parked at `depth` out of the stack, or `None` if
    /// this depth has never parked one — the caller allocates (and may
    /// count) the cold bundle, then returns it via [`Self::put`].
    pub fn take(&mut self, depth: usize) -> Option<T> {
        if self.levels.len() <= depth {
            self.levels.resize_with(depth + 1, || None);
        }
        self.levels[depth].take()
    }

    /// Parks `lvl` at `depth` for the next visitor of this level.
    pub fn put(&mut self, depth: usize, lvl: T) {
        if self.levels.len() <= depth {
            self.levels.resize_with(depth + 1, || None);
        }
        self.levels[depth] = Some(lvl);
    }

    /// Iterates over the parked (warm) bundles — for folding per-level
    /// meters when a stack retires. Active levels are taken out and thus
    /// not visited; callers fold those separately.
    pub fn warm(&self) -> impl Iterator<Item = &T> {
        self.levels.iter().flatten()
    }
}

impl<T: Default> LevelStack<T> {
    /// Like [`Self::take`], allocating a default (cold) bundle when the
    /// depth has none parked.
    pub fn take_or_default(&mut self, depth: usize) -> T {
        self.take(depth).unwrap_or_default()
    }
}

impl<T> Default for LevelStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip_keeps_bundles_warm() {
        let mut stack: LevelStack<Vec<u32>> = LevelStack::new();
        assert!(stack.take(3).is_none(), "cold depth has nothing parked");
        stack.put(3, vec![1, 2, 3]);
        let warm = stack.take(3).expect("parked bundle must come back");
        assert_eq!(warm, vec![1, 2, 3]);
        assert!(
            stack.take(3).is_none(),
            "taking leaves the slot empty while the level is active"
        );
    }

    #[test]
    fn take_or_default_allocates_cold_bundles() {
        let mut stack: LevelStack<String> = LevelStack::default();
        assert_eq!(stack.take_or_default(0), "");
        stack.put(0, "warm".to_string());
        assert_eq!(stack.take_or_default(0), "warm");
    }

    #[test]
    fn put_beyond_current_length_grows_the_stack() {
        let mut stack: LevelStack<u8> = LevelStack::new();
        stack.put(5, 7);
        assert_eq!(stack.take(5), Some(7));
    }

    #[test]
    fn warm_iterates_only_parked_levels() {
        let mut stack: LevelStack<u8> = LevelStack::new();
        stack.put(0, 10);
        stack.put(2, 30);
        let _active = stack.take(0);
        let warm: Vec<u8> = stack.warm().copied().collect();
        assert_eq!(warm, vec![30]);
    }
}
