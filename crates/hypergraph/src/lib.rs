//! Hypergraph substrate for the `log-k-decomp` workspace.
//!
//! This crate provides everything below the decomposition algorithms:
//!
//! * [`bitset`] — dense, typed bitsets ([`VertexSet`], [`EdgeSet`]) whose
//!   word-parallel operations are the hot loops of every solver;
//! * [`lanes`] — the lane-chunked `u64` kernels those operations lower
//!   to: fused multi-operand single-pass loops shaped for
//!   autovectorization;
//! * [`matrix`] — [`MaskMatrix`], a structure-of-arrays block of bitset
//!   rows sharing one contiguous allocation (per-candidate masks, edge /
//!   incidence storage);
//! * [`graph`] — the interned [`Hypergraph`] type and its builder;
//! * [`parse`] — HyperBench and PACE 2019 readers/writers;
//! * [`extended`] — extended subhypergraphs `⟨E', Sp, Conn⟩`
//!   (Definition 3.1 of the paper) with arena-allocated special edges;
//! * [`components`] — `[U]`-components (Definition 3.2), the balanced
//!   separation primitive;
//! * [`gyo`](mod@gyo) — GYO reduction / α-acyclicity (hw ≤ 1);
//! * [`subsets`] — bounded-size subset enumeration with lead-partitioning
//!   for parallel search;
//! * [`levels`] — the generic depth-indexed [`LevelStack`] scratch
//!   workspace every solver's recursion runs on.
//!
//! Paper: Gottlob, Lanzinger, Okulmus, Pichler. *Fast Parallel Hypertree
//! Decompositions in Logarithmic Recursion Depth.* PODS 2022.

pub mod bitset;
pub mod components;
pub mod extended;
pub mod graph;
pub mod gyo;
pub mod lanes;
pub mod levels;
pub mod matrix;
pub mod parse;
pub mod subsets;

pub use bitset::{Edge, EdgeSet, Ix, TypedBitSet, Vertex, VertexSet};
pub use components::{separate, separate_into, Component, Scratch, Separation};
pub use extended::{SpecialArena, SpecialId, Subproblem};
pub use graph::{Hypergraph, HypergraphBuilder};
pub use gyo::{gyo, is_acyclic, GyoResult};
pub use levels::LevelStack;
pub use matrix::MaskMatrix;
pub use parse::{parse_hyperbench, parse_pace, write_hyperbench, write_pace, ParseError};
