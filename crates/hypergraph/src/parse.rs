//! Parsers and writers for the two common hypergraph exchange formats.
//!
//! * **HyperBench format** (`hg`): a list of atoms `name(v1,v2,...)`
//!   separated by commas, optionally terminated by a period, with
//!   `%`-comments — the format served by hyperbench.dbai.tuwien.ac.at.
//! * **PACE 2019 `htd` format**: a `p htd <n> <m>` header followed by one
//!   line per edge `edge_id v1 v2 ...` with 1-based vertex ids and
//!   `c`-comments.

use std::fmt::Write as _;

use crate::graph::{Hypergraph, HypergraphBuilder};

/// Error produced while parsing a hypergraph file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number where the problem was detected.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses the HyperBench atom-list format.
pub fn parse_hyperbench(input: &str) -> Result<Hypergraph, ParseError> {
    let mut b = HypergraphBuilder::new();
    // Strip %-comments line by line, keep track of line numbers by
    // scanning the raw text with an index into lines.
    let mut text = String::with_capacity(input.len());
    for line in input.lines() {
        let line = match line.find('%') {
            Some(p) => &line[..p],
            None => line,
        };
        text.push_str(line);
        text.push('\n');
    }

    let bytes = text.as_bytes();
    let mut i = 0usize;
    let line_of = |pos: usize| text[..pos].matches('\n').count() + 1;

    while i < bytes.len() {
        // Skip separators between atoms.
        while i < bytes.len()
            && (bytes[i].is_ascii_whitespace() || bytes[i] == b',' || bytes[i] == b'.')
        {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        // Atom name up to '('.
        let name_start = i;
        while i < bytes.len() && bytes[i] != b'(' {
            if bytes[i] == b')' || bytes[i] == b',' {
                return Err(err(line_of(i), "expected '(' after atom name"));
            }
            i += 1;
        }
        if i >= bytes.len() {
            return Err(err(line_of(name_start), "atom name without argument list"));
        }
        let name = text[name_start..i].trim();
        if name.is_empty() {
            return Err(err(line_of(name_start), "empty atom name"));
        }
        i += 1; // consume '('
        let args_start = i;
        let mut depth = 1usize;
        while i < bytes.len() && depth > 0 {
            match bytes[i] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                _ => {}
            }
            i += 1;
        }
        if depth != 0 {
            return Err(err(line_of(args_start), "unterminated argument list"));
        }
        let args = &text[args_start..i - 1];
        let vars: Vec<&str> = args
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if vars.is_empty() {
            return Err(err(
                line_of(args_start),
                format!("atom {name} has no arguments"),
            ));
        }
        b.add_edge(name, &vars);
    }

    if b.num_edges() == 0 {
        return Err(err(1, "no atoms found"));
    }
    Ok(b.build())
}

/// Serialises to the HyperBench atom-list format.
pub fn write_hyperbench(hg: &Hypergraph) -> String {
    let mut out = String::new();
    let last = hg.num_edges().saturating_sub(1);
    for (i, e) in hg.edge_ids().enumerate() {
        let vars: Vec<&str> = hg.edge(e).iter().map(|v| hg.vertex_name(v)).collect();
        let sep = if i == last { "." } else { "," };
        let _ = writeln!(out, "{}({}){}", hg.edge_name(e), vars.join(","), sep);
    }
    out
}

/// Parses the PACE 2019 `htd` format.
pub fn parse_pace(input: &str) -> Result<Hypergraph, ParseError> {
    let mut b = HypergraphBuilder::new();
    let mut expected: Option<(usize, usize)> = None;
    let mut edges_seen = 0usize;
    for (ln0, raw) in input.lines().enumerate() {
        let ln = ln0 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p htd") {
            let nums: Vec<&str> = rest.split_whitespace().collect();
            if nums.len() != 2 {
                return Err(err(ln, "header must be `p htd <vertices> <edges>`"));
            }
            let n = nums[0]
                .parse::<usize>()
                .map_err(|e| err(ln, e.to_string()))?;
            let m = nums[1]
                .parse::<usize>()
                .map_err(|e| err(ln, e.to_string()))?;
            expected = Some((n, m));
            continue;
        }
        if expected.is_none() {
            return Err(err(ln, "edge line before `p htd` header"));
        }
        let mut parts = line.split_whitespace();
        let id = parts
            .next()
            .ok_or_else(|| err(ln, "missing edge id"))?
            .parse::<usize>()
            .map_err(|e| err(ln, e.to_string()))?;
        let vertex_names: Vec<String> = parts
            .map(|p| p.parse::<usize>().map(|v| format!("v{v}")))
            .collect::<Result<_, _>>()
            .map_err(|e| err(ln, e.to_string()))?;
        if vertex_names.is_empty() {
            return Err(err(ln, format!("edge {id} has no vertices")));
        }
        let refs: Vec<&str> = vertex_names.iter().map(|s| s.as_str()).collect();
        b.add_edge(&format!("e{id}"), &refs);
        edges_seen += 1;
    }
    match expected {
        None => Err(err(1, "missing `p htd` header")),
        Some((_, m)) if m != edges_seen => Err(err(
            1,
            format!("header declares {m} edges but {edges_seen} were given"),
        )),
        Some(_) => Ok(b.build()),
    }
}

/// Serialises to the PACE 2019 `htd` format (vertices renumbered 1-based).
pub fn write_pace(hg: &Hypergraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p htd {} {}", hg.num_vertices(), hg.num_edges());
    for (i, e) in hg.edge_ids().enumerate() {
        let vs: Vec<String> = hg.edge(e).iter().map(|v| (v.0 + 1).to_string()).collect();
        let _ = writeln!(out, "{} {}", i + 1, vs.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_hyperbench_atoms() {
        let src = "% a comment\nr1(x,y),\nr2(y,z), r3(z,x).\n";
        let h = parse_hyperbench(src).unwrap();
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.num_vertices(), 3);
        assert!(h.edge_by_name("r2").is_some());
        assert!(h.vertex_by_name("z").is_some());
    }

    #[test]
    fn hyperbench_roundtrip() {
        let src = "a(x,y),b(y,z,w),c(w).";
        let h = parse_hyperbench(src).unwrap();
        let h2 = parse_hyperbench(&write_hyperbench(&h)).unwrap();
        assert_eq!(h.num_edges(), h2.num_edges());
        assert_eq!(h.num_vertices(), h2.num_vertices());
        for e in h.edge_ids() {
            assert_eq!(h.edge(e), h2.edge(e));
        }
    }

    #[test]
    fn hyperbench_rejects_garbage() {
        assert!(parse_hyperbench("").is_err());
        assert!(parse_hyperbench("foo").is_err());
        assert!(parse_hyperbench("foo(").is_err());
        assert!(parse_hyperbench("foo()").is_err());
        assert!(parse_hyperbench("foo)x(").is_err());
    }

    #[test]
    fn parses_pace_format() {
        let src = "c comment\np htd 4 2\n1 1 2 3\n2 3 4\n";
        let h = parse_pace(src).unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.num_vertices(), 4);
    }

    #[test]
    fn pace_roundtrip() {
        let h = Hypergraph::from_edge_lists(&[vec![0, 1, 2], vec![2, 3], vec![3, 0]]);
        let h2 = parse_pace(&write_pace(&h)).unwrap();
        assert_eq!(h.num_edges(), h2.num_edges());
        for e in h.edge_ids() {
            assert_eq!(h.edge(e).len(), h2.edge(e).len());
        }
    }

    #[test]
    fn pace_validates_header() {
        assert!(parse_pace("1 1 2\n").is_err());
        assert!(parse_pace("p htd 3 5\n1 1 2\n").is_err());
        assert!(parse_pace("p htd x y\n").is_err());
    }
}
