//! Lane-chunked word kernels — the vectorised substrate under every
//! bitset operation in the workspace.
//!
//! All hot loops of the decomposition engines reduce to operations over
//! `&[u64]` block slices ([`crate::bitset::TypedBitSet`] storage, or rows
//! of a [`crate::matrix::MaskMatrix`]). This module implements them in
//! explicit-width chunks of [`LANES`] words: the chunked bodies are
//! shaped so LLVM autovectorises them to full-width SIMD on any target
//! that has it, while the remainder loops are the plain scalar fallback —
//! no `unsafe`, no target-feature dispatch, panic-free by construction
//! (every loop is `zip`-bounded; lengths are only `debug_assert`ed).
//!
//! Two kinds of kernels live here:
//!
//! * **Two-operand primitives** (`or_assign`, `and_assign`, …) backing
//!   the classic bitset algebra.
//! * **Fused multi-operand kernels** (`lp_bad_assign`, `count_and_or`,
//!   `assign_diff_and`, …) that evaluate a whole hot-path expression in
//!   one pass over the operands. The engines' inner loops previously
//!   chained two-operand calls — `copy_from` + `difference_with` +
//!   `intersect_with` + `union_with` is four full passes over the block
//!   arrays, each a load+store round trip — where one fused pass does
//!   `LANES`-wide loads of every operand and a single store. On
//!   word-sized sets the difference is noise; on HyperBench-scale
//!   instances whose sets span dozens of words it is the dominant cost
//!   of the λc/λp candidate loops (see `micro/bitset`'s wide group).
//!
//! # Tail invariant
//!
//! Every kernel *preserves* the bitset tail invariant (bits at positions
//! `>= nbits` of the last block are zero — see
//! [`crate::bitset::TypedBitSet`]): inspection of each expression shows
//! that a zero tail in every input operand produces a zero tail in the
//! output. Negated operands (`!b`) only ever appear conjoined with a
//! non-negated operand, so the all-ones tail of a complement never
//! reaches a destination. Counting kernels rely on this — they popcount
//! raw blocks without re-masking.

/// Words per lane chunk. Four `u64`s = 256 bits, matching the widest
/// integer vectors mainstream targets autovectorise to (AVX2); narrower
/// targets simply split a chunk across registers.
pub const LANES: usize = 4;

/// `dst |= src`.
#[inline]
pub fn or_assign(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (a, b) in d.by_ref().zip(s.by_ref()) {
        for i in 0..LANES {
            a[i] |= b[i];
        }
    }
    for (a, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a |= b;
    }
}

/// `dst &= src`.
#[inline]
pub fn and_assign(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (a, b) in d.by_ref().zip(s.by_ref()) {
        for i in 0..LANES {
            a[i] &= b[i];
        }
    }
    for (a, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a &= b;
    }
}

/// `dst &= !src` (set difference).
#[inline]
pub fn andnot_assign(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for (a, b) in d.by_ref().zip(s.by_ref()) {
        for i in 0..LANES {
            a[i] &= !b[i];
        }
    }
    for (a, b) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *a &= !b;
    }
}

/// `dst1 |= src` and `dst2 |= src` in one pass: `src` is loaded once per
/// chunk and stored into both destinations. The component BFS unions
/// every absorbed member's vertex row into both the component's vertex
/// set and the next frontier — this kernel halves that loop's loads.
#[inline]
pub fn or_assign2(dst1: &mut [u64], dst2: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst1.len(), src.len());
    debug_assert_eq!(dst2.len(), src.len());
    let mut d1 = dst1.chunks_exact_mut(LANES);
    let mut d2 = dst2.chunks_exact_mut(LANES);
    let mut s = src.chunks_exact(LANES);
    for ((a, b), c) in d1.by_ref().zip(d2.by_ref()).zip(s.by_ref()) {
        for i in 0..LANES {
            a[i] |= c[i];
            b[i] |= c[i];
        }
    }
    for ((a, b), c) in d1
        .into_remainder()
        .iter_mut()
        .zip(d2.into_remainder().iter_mut())
        .zip(s.remainder())
    {
        *a |= c;
        *b |= c;
    }
}

/// Number of set bits in `a`.
#[inline]
pub fn count_ones(a: &[u64]) -> usize {
    let mut chunks = a.chunks_exact(LANES);
    let mut n = 0usize;
    for c in chunks.by_ref() {
        let mut t = 0u32;
        for w in c {
            t += w.count_ones();
        }
        n += t as usize;
    }
    for w in chunks.remainder() {
        n += w.count_ones() as usize;
    }
    n
}

/// `|a ∩ b|` — popcount of the intersection, nothing materialised.
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    let mut n = 0usize;
    for (x, y) in ac.by_ref().zip(bc.by_ref()) {
        let mut t = 0u32;
        for i in 0..LANES {
            t += (x[i] & y[i]).count_ones();
        }
        n += t as usize;
    }
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        n += (x & y).count_ones() as usize;
    }
    n
}

/// `|(a ∩ b) ∪ c|` in one pass — the λp pre-filter's exclusion counter
/// (`|(touch_bad ∩ E') ∪ touch_x|`), previously an `intersect_with` +
/// `union_with` + `len` chain mutating the mask buffer.
#[inline]
pub fn count_and_or(a: &[u64], b: &[u64], c: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    let mut cc = c.chunks_exact(LANES);
    let mut n = 0usize;
    for ((x, y), z) in ac.by_ref().zip(bc.by_ref()).zip(cc.by_ref()) {
        let mut t = 0u32;
        for i in 0..LANES {
            t += ((x[i] & y[i]) | z[i]).count_ones();
        }
        n += t as usize;
    }
    for ((x, y), z) in ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .zip(cc.remainder())
    {
        n += ((x & y) | z).count_ones() as usize;
    }
    n
}

/// Whether `a ∩ b ≠ ∅`.
///
/// Probe kernels stay word-at-a-time on purpose: the engine's hits
/// cluster in the low words (vertices are numbered from 0), so a
/// word-level early exit beats processing a whole lane chunk before the
/// first check — measured 2× on the `intersects_outside_4096` probe.
#[inline]
pub fn any_and(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

/// Whether `a \ b ≠ ∅` (i.e. `a ⊄ b`). Word-level early exit — see
/// [`any_and`].
#[inline]
pub fn any_andnot(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).any(|(x, y)| x & !y != 0)
}

/// Whether `(a ∩ b) \ e ≠ ∅` — the `[U]`-adjacency test
/// (Definition 3.2) in one pass over three operands. Word-level early
/// exit — see [`any_and`].
#[inline]
pub fn any_and_andnot(a: &[u64], b: &[u64], e: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), e.len());
    a.iter().zip(b).zip(e).any(|((x, y), z)| x & y & !z != 0)
}

/// `dst = a ∩ b` — fused copy + intersection.
#[inline]
pub fn assign_and(dst: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for ((o, x), y) in d.by_ref().zip(ac.by_ref()).zip(bc.by_ref()) {
        for i in 0..LANES {
            o[i] = x[i] & y[i];
        }
    }
    for ((o, x), y) in d
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *o = x & y;
    }
}

/// `dst = (a \ b) ∩ c` — the λc pre-filter's connector-exclusion set
/// `X = (Conn \ ⋃λc) ∩ V(H')`, previously copy + difference + intersect.
#[inline]
pub fn assign_diff_and(dst: &mut [u64], a: &[u64], b: &[u64], c: &[u64]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    debug_assert_eq!(dst.len(), c.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    let mut cc = c.chunks_exact(LANES);
    for (((o, x), y), z) in d
        .by_ref()
        .zip(ac.by_ref())
        .zip(bc.by_ref())
        .zip(cc.by_ref())
    {
        for i in 0..LANES {
            o[i] = (x[i] & !y[i]) & z[i];
        }
    }
    for (((o, x), y), z) in d
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
        .zip(cc.remainder())
    {
        *o = (x & !y) & z;
    }
}

/// `dst = a ∩ b ∩ c` — the λc pre-filter's covered-connector set
/// `Conn ∩ ⋃λc ∩ V(H')`.
#[inline]
pub fn assign_and3(dst: &mut [u64], a: &[u64], b: &[u64], c: &[u64]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    debug_assert_eq!(dst.len(), c.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    let mut cc = c.chunks_exact(LANES);
    for (((o, x), y), z) in d
        .by_ref()
        .zip(ac.by_ref())
        .zip(bc.by_ref())
        .zip(cc.by_ref())
    {
        for i in 0..LANES {
            o[i] = x[i] & y[i] & z[i];
        }
    }
    for (((o, x), y), z) in d
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
        .zip(cc.remainder())
    {
        *o = x & y & z;
    }
}

/// The λp `bad`-set in one pass:
/// `dst = ((up \ uc) ∩ vs) ∪ (cuc \ up)`, returning whether `dst` is
/// non-empty. This is the inadmissible-vertex set
/// `bad = ((⋃λp \ ⋃λc) ∩ V(H')) ∪ ((Conn ∩ ⋃λc ∩ V(H')) \ ⋃λp)` of the
/// λp admissibility pre-filter — per candidate pair, previously four
/// chained two-operand passes plus an emptiness scan.
#[inline]
pub fn lp_bad_assign(dst: &mut [u64], up: &[u64], uc: &[u64], vs: &[u64], cuc: &[u64]) -> bool {
    debug_assert_eq!(dst.len(), up.len());
    debug_assert_eq!(dst.len(), uc.len());
    debug_assert_eq!(dst.len(), vs.len());
    debug_assert_eq!(dst.len(), cuc.len());
    let mut nonzero = 0u64;
    let mut d = dst.chunks_exact_mut(LANES);
    let mut upc = up.chunks_exact(LANES);
    let mut ucc = uc.chunks_exact(LANES);
    let mut vsc = vs.chunks_exact(LANES);
    let mut cc = cuc.chunks_exact(LANES);
    for ((((o, p), q), v), u) in d
        .by_ref()
        .zip(upc.by_ref())
        .zip(ucc.by_ref())
        .zip(vsc.by_ref())
        .zip(cc.by_ref())
    {
        for i in 0..LANES {
            let w = ((p[i] & !q[i]) & v[i]) | (u[i] & !p[i]);
            o[i] = w;
            nonzero |= w;
        }
    }
    for ((((o, p), q), v), u) in d
        .into_remainder()
        .iter_mut()
        .zip(upc.remainder())
        .zip(ucc.remainder())
        .zip(vsc.remainder())
        .zip(cc.remainder())
    {
        let w = ((p & !q) & v) | (u & !p);
        *o = w;
        nonzero |= w;
    }
    nonzero != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // Naive single-word reference loops the kernels are pinned against
    // (the proptest suite in `tests/lane_kernels.rs` does the same over
    // arbitrary widths; these unit tests cover the chunk/remainder seams
    // deterministically).
    fn words(n: usize, f: impl Fn(usize) -> u64) -> Vec<u64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn assign_kernels_match_naive_at_all_chunk_seams() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 31, 32, 33] {
            let a = words(n, |i| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let b = words(n, |i| (i as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f) ^ 7);
            let c = words(n, |i| !(i as u64) ^ 0x5555_5555_5555_5555);
            let e = words(n, |i| (i as u64) << 17 | (i as u64 >> 3));

            let mut dst = vec![0u64; n];
            assign_and(&mut dst, &a, &b);
            assert_eq!(dst, words(n, |i| a[i] & b[i]));

            assign_diff_and(&mut dst, &a, &b, &c);
            assert_eq!(dst, words(n, |i| (a[i] & !b[i]) & c[i]));

            assign_and3(&mut dst, &a, &b, &c);
            assert_eq!(dst, words(n, |i| a[i] & b[i] & c[i]));

            let nonempty = lp_bad_assign(&mut dst, &a, &b, &c, &e);
            let expect = words(n, |i| ((a[i] & !b[i]) & c[i]) | (e[i] & !a[i]));
            assert_eq!(dst, expect);
            assert_eq!(nonempty, expect.iter().any(|&w| w != 0));

            let mut x = a.clone();
            or_assign(&mut x, &b);
            assert_eq!(x, words(n, |i| a[i] | b[i]));
            let mut x = a.clone();
            and_assign(&mut x, &b);
            assert_eq!(x, words(n, |i| a[i] & b[i]));
            let mut x = a.clone();
            andnot_assign(&mut x, &b);
            assert_eq!(x, words(n, |i| a[i] & !b[i]));

            let mut d1 = a.clone();
            let mut d2 = b.clone();
            or_assign2(&mut d1, &mut d2, &c);
            assert_eq!(d1, words(n, |i| a[i] | c[i]));
            assert_eq!(d2, words(n, |i| b[i] | c[i]));
        }
    }

    #[test]
    fn counting_and_test_kernels_match_naive() {
        for n in [0usize, 1, 4, 5, 8, 13, 32, 37] {
            let a = words(n, |i| (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
            let b = words(n, |i| (i as u64).rotate_left(i as u32 % 63) ^ 3);
            let c = words(n, |i| (i as u64).wrapping_sub(0xdead_beef));

            let naive_count: usize = (0..n).map(|i| a[i].count_ones() as usize).sum();
            assert_eq!(count_ones(&a), naive_count);
            let naive_and: usize = (0..n).map(|i| (a[i] & b[i]).count_ones() as usize).sum();
            assert_eq!(and_count(&a, &b), naive_and);
            let naive_cao: usize = (0..n)
                .map(|i| ((a[i] & b[i]) | c[i]).count_ones() as usize)
                .sum();
            assert_eq!(count_and_or(&a, &b, &c), naive_cao);

            assert_eq!(any_and(&a, &b), (0..n).any(|i| a[i] & b[i] != 0));
            assert_eq!(any_andnot(&a, &b), (0..n).any(|i| a[i] & !b[i] != 0));
            assert_eq!(
                any_and_andnot(&a, &b, &c),
                (0..n).any(|i| a[i] & b[i] & !c[i] != 0)
            );
        }
    }
}
