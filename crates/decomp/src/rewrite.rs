//! Set-preserving special-id rewrites.
//!
//! Two soundness-critical places rewrite the special-edge ids of an
//! HD-fragment while preserving the *vertex sets* behind them:
//!
//! * **cache re-interning** — [`PortableFragment::instantiate`] rebuilds a
//!   memoised fragment for a new subproblem by pairing each stored leaf set
//!   with a distinct caller id resolving to an equal set;
//! * **fork/merge rebasing** — [`rebase_fragment`] folds a fragment built
//!   by a forked-arena sibling branch back under the parent arena, giving
//!   any special the branch created above the fork point a fresh parent id
//!   with the same set.
//!
//! Both rely on the same bijective multiset matching, centralised here as
//! [`SpecialClaims`] so the two copies cannot drift: the rewrite is sound
//! because extended-HD validity (Definition 3.3) and the stitching
//! contract only depend on the vertex sets of special edges — two specials
//! with equal sets are interchangeable interfaces, so any set-preserving
//! bijection between old leaves and new ids yields a valid fragment.
//!
//! [`PortableFragment::instantiate`]: crate::PortableFragment::instantiate

use hypergraph::{SpecialArena, SpecialId, VertexSet};

use crate::fragment::{FragLabel, Fragment};

/// Bijective, set-preserving claims of special ids.
///
/// Wraps a slice of candidate ids (resolved through an arena) and hands
/// out, per requested vertex set, a *distinct* id whose resolved set is
/// equal. Duplicate sets pair up bijectively: two requests for the same
/// set consume two different ids holding that set, or the second request
/// fails.
pub struct SpecialClaims<'a> {
    arena: &'a SpecialArena,
    candidates: &'a [SpecialId],
    used: Vec<bool>,
    claims: u64,
}

impl<'a> SpecialClaims<'a> {
    /// A claimer over `candidates`, resolved through `arena`.
    pub fn new(arena: &'a SpecialArena, candidates: &'a [SpecialId]) -> Self {
        SpecialClaims {
            arena,
            candidates,
            used: vec![false; candidates.len()],
            claims: 0,
        }
    }

    /// Claims an unused candidate id resolving to a set equal to `set`,
    /// or `None` if every such candidate is already claimed.
    pub fn claim(&mut self, set: &VertexSet) -> Option<SpecialId> {
        let slot = self
            .candidates
            .iter()
            .enumerate()
            .position(|(i, &s)| !self.used[i] && self.arena.get(s) == set)?;
        self.used[slot] = true;
        self.claims += 1;
        Some(self.candidates[slot])
    }

    /// Number of successful claims so far.
    pub fn claims(&self) -> u64 {
        self.claims
    }

    /// Whether every candidate id has been claimed.
    pub fn exhausted(&self) -> bool {
        self.used.iter().all(|&u| u)
    }
}

/// Folds a sibling branch's fragment back under the parent arena.
///
/// `frag` was produced against `branch`, a fork of the parent taken when
/// the parent held `checkpoint` entries: ids `0..checkpoint` resolve
/// identically in both arenas and pass through untouched, while any
/// special leaf at or above the fork point references a set the branch
/// pushed privately — those sets are re-pushed under `parent` and the
/// leaves rewritten to the fresh parent ids (set-preserving via
/// [`SpecialClaims`]). Returns the number of leaf ids rewritten.
///
/// Under the engines' stack discipline a child call restores its arena to
/// the entry length before returning, so returned fragments only reference
/// pre-fork ids and this pass degenerates to a verification walk returning
/// zero; it exists so the fork/merge join is sound *by construction* — a
/// branch that does hand back fresh specials gets them rebased instead of
/// dangling into the parent's id space.
pub fn rebase_fragment(
    frag: &mut Fragment,
    branch: &SpecialArena,
    checkpoint: usize,
    parent: &mut SpecialArena,
) -> u64 {
    let fresh: Vec<usize> = frag
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(i, n)| match n.label {
            FragLabel::Special(s) if s.0 as usize >= checkpoint => Some(i),
            _ => None,
        })
        .collect();
    if fresh.is_empty() {
        return 0;
    }
    let minted: Vec<SpecialId> = fresh
        .iter()
        .map(|&i| {
            let FragLabel::Special(old) = frag.nodes[i].label else {
                unreachable!("collected above as a special leaf")
            };
            parent.push(branch.get(old).clone())
        })
        .collect();
    let mut claims = SpecialClaims::new(parent, &minted);
    for &i in &fresh {
        let FragLabel::Special(old) = frag.nodes[i].label else {
            unreachable!("collected above as a special leaf")
        };
        let new = claims
            .claim(branch.get(old))
            .expect("an equal set was just pushed per fresh leaf");
        frag.nodes[i].label = FragLabel::Special(new);
    }
    debug_assert!(claims.exhausted());
    claims.claims()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{Edge, Vertex};

    fn vset(n: usize, vs: &[u32]) -> VertexSet {
        VertexSet::from_iter(n, vs.iter().map(|&v| Vertex(v)))
    }

    #[test]
    fn claims_pair_equal_sets_bijectively() {
        let mut arena = SpecialArena::new();
        let a = arena.push(vset(4, &[0, 1]));
        let b = arena.push(vset(4, &[0, 1]));
        let c = arena.push(vset(4, &[2]));
        let ids = [a, b, c];
        let mut claims = SpecialClaims::new(&arena, &ids);
        let first = claims.claim(&vset(4, &[0, 1])).unwrap();
        let second = claims.claim(&vset(4, &[0, 1])).unwrap();
        assert_ne!(first, second, "duplicate sets must claim distinct ids");
        assert!(claims.claim(&vset(4, &[0, 1])).is_none());
        assert_eq!(claims.claim(&vset(4, &[2])), Some(c));
        assert!(claims.claim(&vset(4, &[3])).is_none());
        assert_eq!(claims.claims(), 3);
        assert!(claims.exhausted());
    }

    #[test]
    fn rebase_passes_prefork_ids_through() {
        let mut parent = SpecialArena::new();
        let s = parent.push(vset(6, &[1, 2]));
        let branch = parent.fork();
        let checkpoint = parent.len();

        let mut frag = Fragment::leaf(vec![Edge(0)], vset(6, &[0, 1]));
        frag.attach_under(0, Fragment::special_leaf(s, branch.get(s).clone()));
        let before = parent.len();
        assert_eq!(
            rebase_fragment(&mut frag, &branch, checkpoint, &mut parent),
            0
        );
        assert_eq!(parent.len(), before, "no fresh specials, no pushes");
        assert_eq!(frag.find_special_leaf(s), Some(1));
    }

    #[test]
    fn rebase_mints_parent_ids_for_postfork_leaves() {
        let mut parent = SpecialArena::new();
        let pre = parent.push(vset(6, &[0]));
        let mut branch = parent.fork();
        let checkpoint = parent.len();

        // The branch creates two fresh specials — one set duplicated —
        // and hands back a fragment referencing them plus a pre-fork id.
        let x = branch.push(vset(6, &[1, 2]));
        let y = branch.push(vset(6, &[1, 2]));
        let mut frag = Fragment::leaf(vec![Edge(0)], vset(6, &[0, 1]));
        frag.attach_under(0, Fragment::special_leaf(pre, branch.get(pre).clone()));
        frag.attach_under(0, Fragment::special_leaf(x, branch.get(x).clone()));
        frag.attach_under(0, Fragment::special_leaf(y, branch.get(y).clone()));

        // Parent moved on since the fork: branch ids would dangle.
        parent.push(vset(6, &[5]));

        assert_eq!(
            rebase_fragment(&mut frag, &branch, checkpoint, &mut parent),
            2
        );
        assert_eq!(parent.len(), 4, "two fresh sets pushed under the parent");
        assert_eq!(
            frag.find_special_leaf(pre),
            Some(1),
            "pre-fork id untouched"
        );
        let rebased: Vec<SpecialId> = frag
            .nodes
            .iter()
            .filter_map(|n| match n.label {
                FragLabel::Special(s) if s != pre => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(rebased.len(), 2);
        assert_ne!(rebased[0], rebased[1]);
        for s in rebased {
            assert!((s.0 as usize) >= 2, "rebased onto fresh parent ids");
            assert_eq!(*parent.get(s), vset(6, &[1, 2]), "set preserved");
        }
    }
}
