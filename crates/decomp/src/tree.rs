//! Hypertree decomposition trees.

use hypergraph::{Edge, Hypergraph, VertexSet};

/// Identifier of a node within a [`Decomposition`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// One node `u` of a decomposition with its labels `λ(u)` and `χ(u)`.
#[derive(Clone, Debug)]
pub struct Node {
    /// `λ(u)` — the edge cover label.
    pub lambda: Vec<Edge>,
    /// `χ(u)` — the bag.
    pub chi: VertexSet,
    /// Child nodes.
    pub children: Vec<NodeId>,
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
}

/// A (generalized) hypertree decomposition `⟨T, χ, λ⟩` of a hypergraph.
///
/// Whether the structure is an HD or merely a GHD is a property checked by
/// the validators in [`crate::validate`]; the representation is shared.
#[derive(Clone, Debug)]
pub struct Decomposition {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Decomposition {
    /// Creates a decomposition with a single root node.
    pub fn singleton(lambda: Vec<Edge>, chi: VertexSet) -> Self {
        Decomposition {
            nodes: vec![Node {
                lambda,
                chi,
                children: Vec::new(),
                parent: None,
            }],
            root: NodeId(0),
        }
    }

    /// Builds a decomposition from raw parts. `parent` links are derived.
    ///
    /// `children[i]` lists the children of node `i`; `root` must be the
    /// unique node that no list mentions.
    pub fn from_parts(
        labels: Vec<(Vec<Edge>, VertexSet)>,
        children: Vec<Vec<u32>>,
        root: u32,
    ) -> Self {
        assert_eq!(labels.len(), children.len());
        let mut nodes: Vec<Node> = labels
            .into_iter()
            .map(|(lambda, chi)| Node {
                lambda,
                chi,
                children: Vec::new(),
                parent: None,
            })
            .collect();
        for (i, ch) in children.iter().enumerate() {
            nodes[i].children = ch.iter().map(|&c| NodeId(c)).collect();
        }
        for i in 0..nodes.len() {
            let ch = nodes[i].children.clone();
            for c in ch {
                nodes[c.0 as usize].parent = Some(NodeId(i as u32));
            }
        }
        Decomposition {
            nodes,
            root: NodeId(root),
        }
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Access a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Adds a child node under `parent`, returning its id.
    pub fn add_child(&mut self, parent: NodeId, lambda: Vec<Edge>, chi: VertexSet) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            lambda,
            chi,
            children: Vec::new(),
            parent: Some(parent),
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// The width `max_u |λ(u)|` of the decomposition.
    pub fn width(&self) -> usize {
        self.nodes.iter().map(|n| n.lambda.len()).max().unwrap_or(0)
    }

    /// The depth of the tree (a single node has depth 1).
    pub fn depth(&self) -> usize {
        fn go(d: &Decomposition, u: NodeId) -> usize {
            1 + d
                .node(u)
                .children
                .iter()
                .map(|&c| go(d, c))
                .max()
                .unwrap_or(0)
        }
        go(self, self.root)
    }

    /// All node ids in preorder (root first).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(u) = stack.pop() {
            out.push(u);
            for &c in self.node(u).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All node ids in postorder (children before parents).
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = self.preorder();
        out.reverse();
        out
    }

    /// `χ(T_u)` for every node `u`: the union of bags in the subtree below
    /// (and including) `u`. Computed bottom-up in one pass.
    pub fn subtree_chi(&self, hg: &Hypergraph) -> Vec<VertexSet> {
        let mut acc: Vec<VertexSet> = vec![hg.vertex_set(); self.nodes.len()];
        for u in self.postorder() {
            let mut s = self.node(u).chi.clone();
            for &c in &self.node(u).children {
                s.union_with(&acc[c.0 as usize]);
            }
            acc[u.0 as usize] = s;
        }
        acc
    }

    /// Renders the decomposition as an indented tree using hypergraph names
    /// — the format of Figure 2 in the paper.
    pub fn render(&self, hg: &Hypergraph) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        fn go(d: &Decomposition, hg: &Hypergraph, u: NodeId, depth: usize, out: &mut String) {
            let n = d.node(u);
            let lam: Vec<&str> = n.lambda.iter().map(|&e| hg.edge_name(e)).collect();
            let chi: Vec<&str> = n.chi.iter().map(|v| hg.vertex_name(v)).collect();
            let _ = writeln!(
                out,
                "{}λ = {{{}}}  χ = {{{}}}",
                "  ".repeat(depth),
                lam.join(", "),
                chi.join(", ")
            );
            for &c in &n.children {
                go(d, hg, c, depth + 1, out);
            }
        }
        go(self, hg, self.root, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::Vertex;

    fn vset(n: usize, vs: &[u32]) -> VertexSet {
        VertexSet::from_iter(n, vs.iter().map(|&v| Vertex(v)))
    }

    #[test]
    fn build_and_measure() {
        let mut d = Decomposition::singleton(vec![Edge(0), Edge(1)], vset(5, &[0, 1, 2]));
        let c1 = d.add_child(d.root(), vec![Edge(2)], vset(5, &[2, 3]));
        d.add_child(c1, vec![Edge(3)], vset(5, &[3, 4]));
        d.add_child(d.root(), vec![Edge(4)], vset(5, &[1]));
        assert_eq!(d.num_nodes(), 4);
        assert_eq!(d.width(), 2);
        assert_eq!(d.depth(), 3);
        assert_eq!(d.node(c1).parent, Some(d.root()));
    }

    #[test]
    fn orders_cover_all_nodes() {
        let mut d = Decomposition::singleton(vec![Edge(0)], vset(3, &[0]));
        let c1 = d.add_child(d.root(), vec![Edge(1)], vset(3, &[1]));
        d.add_child(c1, vec![Edge(2)], vset(3, &[2]));
        let pre = d.preorder();
        let post = d.postorder();
        assert_eq!(pre.len(), 3);
        assert_eq!(post.len(), 3);
        assert_eq!(pre[0], d.root());
        assert_eq!(*post.last().unwrap(), d.root());
    }

    #[test]
    fn subtree_chi_accumulates() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let mut d = Decomposition::singleton(vec![Edge(0)], vset(4, &[0, 1]));
        let c = d.add_child(d.root(), vec![Edge(1)], vset(4, &[1, 2]));
        d.add_child(c, vec![Edge(2)], vset(4, &[2, 3]));
        let acc = d.subtree_chi(&hg);
        assert_eq!(acc[d.root().0 as usize].len(), 4);
        assert_eq!(acc[c.0 as usize].len(), 3);
    }

    #[test]
    fn from_parts_derives_parents() {
        let d = Decomposition::from_parts(
            vec![
                (vec![Edge(0)], vset(3, &[0, 1])),
                (vec![Edge(1)], vset(3, &[1, 2])),
            ],
            vec![vec![1], vec![]],
            0,
        );
        assert_eq!(d.node(NodeId(1)).parent, Some(NodeId(0)));
        assert_eq!(d.node(NodeId(0)).parent, None);
    }
}
