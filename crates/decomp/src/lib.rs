//! Decomposition structures and validators.
//!
//! * [`tree`] — the [`Decomposition`] type (shared by HDs and GHDs);
//! * [`fragment`] — HD-fragments with special-edge leaves and the
//!   stitching operations used by `log-k-decomp`'s soundness construction;
//! * [`portable`] — arena-independent fragments (special leaves resolved
//!   to vertex sets), the storable form shared by the memoisation caches;
//! * [`rewrite`] — the set-preserving special-id rewrite shared by cache
//!   re-interning and the fork/merge arena rebase;
//! * [`striped`] — the lock-striped, borrowed-key table core both
//!   memoisation caches (the engine's subproblem cache and det-k's
//!   shared memo) instantiate, with pluggable retention policies;
//! * [`validate`] — exact checkers for the GHD conditions, the HD special
//!   condition, the six conditions of Definition 3.3 (HDs of extended
//!   subhypergraphs), and the normal form of Definition 3.5.
//!
//! Paper: Gottlob, Lanzinger, Okulmus, Pichler. *Fast Parallel Hypertree
//! Decompositions in Logarithmic Recursion Depth.* PODS 2022.

pub mod control;
pub mod export;
pub mod faults;
pub mod fragment;
pub mod portable;
pub mod rewrite;
pub mod striped;
pub mod tree;
pub mod validate;

pub use control::{Control, Interrupted};
pub use export::{to_dtd_text, to_gml};
pub use fragment::{FragLabel, FragNode, Fragment};
pub use portable::{specials_multiset_match, PortableFragment, PortableLabel, PortableNode};
pub use rewrite::{rebase_fragment, SpecialClaims};
pub use striped::{ClockEviction, EntryCap, InsertOutcome, Retention, StripedKey, StripedTable};
pub use tree::{Decomposition, Node, NodeId};
pub use validate::{
    is_normal_form, validate_extended_hd, validate_ghd, validate_hd, validate_hd_width, Violation,
};
