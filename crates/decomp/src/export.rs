//! Machine-readable exporters for decompositions.
//!
//! Two formats:
//! * **GML** — the node/edge graph format consumed by common decomposition
//!   visualisers (e.g. the HyperBench tool family);
//! * **DTD text** — the `det-k-decomp`-style indented format
//!   `<λ-edge names> ( <χ-vertex names> )` used by the original tools'
//!   output, convenient for diffing decompositions across solvers.

use hypergraph::Hypergraph;

use crate::tree::{Decomposition, NodeId};

/// Serialises the decomposition as GML (nodes carry `lambda`/`chi`
/// labels; edges are the tree edges).
pub fn to_gml(hg: &Hypergraph, d: &Decomposition) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("graph [\n  directed 1\n");
    for u in d.preorder() {
        let node = d.node(u);
        let lam: Vec<&str> = node.lambda.iter().map(|&e| hg.edge_name(e)).collect();
        let chi: Vec<&str> = node.chi.iter().map(|v| hg.vertex_name(v)).collect();
        let _ = writeln!(
            out,
            "  node [ id {} label \"{{{}}} {{{}}}\" ]",
            u.0,
            lam.join(","),
            chi.join(",")
        );
    }
    for u in d.preorder() {
        for &c in &d.node(u).children {
            let _ = writeln!(out, "  edge [ source {} target {} ]", u.0, c.0);
        }
    }
    out.push_str("]\n");
    out
}

/// Serialises in the `det-k-decomp` output style.
pub fn to_dtd_text(hg: &Hypergraph, d: &Decomposition) -> String {
    use std::fmt::Write as _;
    fn go(hg: &Hypergraph, d: &Decomposition, u: NodeId, depth: usize, out: &mut String) {
        let node = d.node(u);
        let lam: Vec<&str> = node.lambda.iter().map(|&e| hg.edge_name(e)).collect();
        let chi: Vec<&str> = node.chi.iter().map(|v| hg.vertex_name(v)).collect();
        let _ = writeln!(
            out,
            "{}<{}> ({})",
            "  ".repeat(depth),
            lam.join(", "),
            chi.join(", ")
        );
        for &c in &node.children {
            go(hg, d, c, depth + 1, out);
        }
    }
    let mut out = String::new();
    go(hg, d, d.root(), 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{Edge, Vertex, VertexSet};

    fn sample() -> (Hypergraph, Decomposition) {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2]]);
        let n = hg.num_vertices();
        let mut d = Decomposition::singleton(
            vec![Edge(0)],
            VertexSet::from_iter(n, [Vertex(0), Vertex(1)]),
        );
        d.add_child(
            d.root(),
            vec![Edge(1)],
            VertexSet::from_iter(n, [Vertex(1), Vertex(2)]),
        );
        (hg, d)
    }

    #[test]
    fn gml_contains_all_nodes_and_edges() {
        let (hg, d) = sample();
        let gml = to_gml(&hg, &d);
        assert_eq!(gml.matches("node [").count(), 2);
        assert_eq!(gml.matches("edge [").count(), 1);
        assert!(gml.contains("{e0} {v0,v1}"));
        assert!(gml.starts_with("graph ["));
        assert!(gml.trim_end().ends_with(']'));
    }

    #[test]
    fn dtd_text_is_indented() {
        let (hg, d) = sample();
        let text = to_dtd_text(&hg, &d);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("<e0>"));
        assert!(lines[1].starts_with("  <e1>"));
    }
}
