//! Checkpoint-level fault injection for robustness testing.
//!
//! The solvers and the shared memoisation tables are laced with *named
//! fault sites* — `faults::hit("logk/engine/poll")` and friends — that are
//! free no-ops in a normal build. With the `fault-injection` feature
//! enabled, a test can **arm** a site to deterministically misbehave at
//! its `n`-th hit:
//!
//! * [`Fault::Panic`] — unwind out of the site (poisoning whatever lock
//!   the site holds), proving panic containment and poison recovery;
//! * [`Fault::Delay`] — sleep, simulating a stalled solve so deadlines
//!   and load shedding are testable without giant instances;
//! * [`Fault::Cancel`] — spuriously cancel the solve's [`Control`]
//!   (sites that carry one), simulating an external kill mid-search;
//! * [`Fault::Net`] — network chaos for wire-protocol sites (see
//!   [`NetFault`]): the registry only *schedules* the misbehaviour; the
//!   site's owner (the `htdwire` crate) interprets it against its own
//!   socket via [`take_net`], so this crate stays free of any I/O types.
//!
//! Determinism: hits are counted per site **from the moment the site is
//! armed**, so `arm(site, 3, Fault::Panic)` fires on exactly the third
//! hit after arming, regardless of anything that ran before. A fault
//! fires once and disarms itself. When nothing is armed, the hot-path
//! cost is one relaxed atomic load (and with the feature disabled, the
//! calls compile away entirely).
//!
//! Tests that arm global sites must serialise against each other (the
//! integration suites share one `Mutex` guard) and call [`reset`] when
//! done.
//!
//! [`Control`]: crate::Control

#[cfg(feature = "fault-injection")]
pub use enabled::{arm, armed_sites, hits, reset, take_net, Fault, NetFault};

#[cfg(feature = "fault-injection")]
mod enabled {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    use crate::Control;

    /// What an armed site does when it fires.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum Fault {
        /// `panic!` out of the checkpoint (contained by the caller's
        /// `catch_unwind` boundary — or failing the test if there is
        /// none).
        Panic,
        /// Sleep for the given duration, then continue normally.
        Delay(Duration),
        /// Cancel the solve's [`Control`] (no-op at sites without one).
        Cancel,
        /// Network misbehaviour, interpreted by wire-protocol sites via
        /// [`take_net`]. A no-op when it fires at a site that is polled
        /// through [`hit`](super::hit)/[`hit_ctrl`](super::hit_ctrl)
        /// instead.
        Net(NetFault),
    }

    /// What a fired [`Fault::Net`] asks the owning socket operation to
    /// do. The registry carries only the *plan*; the wire layer executes
    /// it against its own streams, so each variant's exact meaning is
    /// per-site (documented at the site):
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum NetFault {
        /// Tear the connection down immediately (mid-frame when armed on
        /// a write site with a frame in flight).
        Disconnect,
        /// Perform only the first `keep` bytes of the operation, then
        /// tear the connection down — a torn frame / partial write.
        Truncate {
            /// Bytes actually transferred before the cut.
            keep: usize,
        },
        /// Dribble the operation `chunk` bytes at a time, sleeping
        /// `delay` between chunks — a slow-loris peer.
        Throttle {
            /// Bytes per dribble.
            chunk: usize,
            /// Pause between dribbles.
            delay: Duration,
        },
        /// Stall the operation (e.g. an accept loop) for `delay` before
        /// proceeding normally.
        Stall {
            /// How long the site stalls.
            delay: Duration,
        },
    }

    struct Site {
        /// Hits observed since this site was armed.
        hits: u64,
        /// Fire on the hit with this (1-based) ordinal, if still armed.
        armed: Option<(u64, Fault)>,
    }

    /// Number of currently armed sites: the hot-path fast-out. Zero in
    /// every build that never arms a fault.
    static ARMED: AtomicUsize = AtomicUsize::new(0);

    static SITES: OnceLock<Mutex<HashMap<&'static str, Site>>> = OnceLock::new();

    fn sites() -> &'static Mutex<HashMap<&'static str, Site>> {
        SITES.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Arms `site` to fire `fault` on its `at`-th hit (1-based) counted
    /// from now. Re-arming a site resets its counter.
    pub fn arm(site: &'static str, at: u64, fault: Fault) {
        assert!(at >= 1, "fault ordinals are 1-based");
        let mut map = sites().lock().unwrap_or_else(|e| e.into_inner());
        let prev = map.insert(
            site,
            Site {
                hits: 0,
                armed: Some((at, fault)),
            },
        );
        if prev.is_none_or(|p| p.armed.is_none()) {
            ARMED.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Disarms every site and clears all counters.
    pub fn reset() {
        let mut map = sites().lock().unwrap_or_else(|e| e.into_inner());
        map.clear();
        ARMED.store(0, Ordering::SeqCst);
    }

    /// Hits observed at `site` since it was armed (0 if never armed).
    pub fn hits(site: &str) -> u64 {
        let map = sites().lock().unwrap_or_else(|e| e.into_inner());
        map.get(site).map_or(0, |s| s.hits)
    }

    /// Sites currently armed (diagnostics for test failures).
    pub fn armed_sites() -> Vec<&'static str> {
        let map = sites().lock().unwrap_or_else(|e| e.into_inner());
        map.iter()
            .filter(|(_, s)| s.armed.is_some())
            .map(|(&k, _)| k)
            .collect()
    }

    /// Records a hit at `site`; fires and disarms its fault when the
    /// armed ordinal is reached. The returned fault (if any) is executed
    /// by the caller *after* the registry lock is released.
    fn trip(site: &'static str) -> Option<Fault> {
        if ARMED.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut map = sites().lock().unwrap_or_else(|e| e.into_inner());
        let entry = map.get_mut(site)?;
        entry.armed.as_ref()?;
        entry.hits += 1;
        let (at, _) = *entry.armed.as_ref().expect("checked above");
        if entry.hits == at {
            let (_, fault) = entry.armed.take().expect("checked above");
            ARMED.fetch_sub(1, Ordering::SeqCst);
            Some(fault)
        } else {
            None
        }
    }

    /// A fault site without a [`Control`] (e.g. inside a cache shard).
    /// [`Fault::Cancel`] armed on such a site is a no-op.
    #[inline]
    pub(crate) fn hit_impl(site: &'static str) {
        match trip(site) {
            None => {}
            Some(Fault::Panic) => panic!("fault-injection: deliberate panic at `{site}`"),
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::Cancel) | Some(Fault::Net(_)) => {}
        }
    }

    /// A fault site on a solver poll path, carrying the solve's control
    /// so [`Fault::Cancel`] can fire it.
    #[inline]
    pub(crate) fn hit_ctrl_impl(site: &'static str, ctrl: &Control) {
        match trip(site) {
            None => {}
            Some(Fault::Panic) => panic!("fault-injection: deliberate panic at `{site}`"),
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::Cancel) => ctrl.cancel(),
            Some(Fault::Net(_)) => {}
        }
    }

    /// A network fault site: records a hit and returns the fired
    /// [`NetFault`] for the caller to execute against its socket.
    ///
    /// Non-network faults armed on such a site keep their usual
    /// semantics ([`Fault::Panic`] unwinds, [`Fault::Delay`] sleeps,
    /// [`Fault::Cancel`] is a no-op), so a single site name can be
    /// driven with either kind. Same determinism contract as
    /// [`hit`](super::hit): one-shot, ordinal counted from arming.
    #[inline]
    pub fn take_net(site: &'static str) -> Option<NetFault> {
        match trip(site) {
            None | Some(Fault::Cancel) => None,
            Some(Fault::Panic) => panic!("fault-injection: deliberate panic at `{site}`"),
            Some(Fault::Delay(d)) => {
                std::thread::sleep(d);
                None
            }
            Some(Fault::Net(n)) => Some(n),
        }
    }
}

/// Fault site without a [`Control`](crate::Control); a no-op unless the
/// `fault-injection` feature is enabled and the site is armed.
#[inline(always)]
pub fn hit(site: &'static str) {
    #[cfg(feature = "fault-injection")]
    enabled::hit_impl(site);
    #[cfg(not(feature = "fault-injection"))]
    let _ = site;
}

/// Fault site on a poll path, carrying the solve's
/// [`Control`](crate::Control) so [`Fault::Cancel`] (feature
/// `fault-injection`) can fire it; a no-op otherwise.
#[inline(always)]
pub fn hit_ctrl(site: &'static str, ctrl: &crate::Control) {
    #[cfg(feature = "fault-injection")]
    enabled::hit_ctrl_impl(site, ctrl);
    #[cfg(not(feature = "fault-injection"))]
    let _ = (site, ctrl);
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};
    use std::time::{Duration, Instant};

    /// Serialises the fault tests in this module (the registry is
    /// process-global).
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_sites_do_nothing() {
        let _g = guard();
        reset();
        for _ in 0..1000 {
            hit("faults/test/unarmed");
        }
        assert_eq!(hits("faults/test/unarmed"), 0);
    }

    #[test]
    fn panic_fires_on_exactly_the_nth_hit() {
        let _g = guard();
        reset();
        arm("faults/test/nth", 3, Fault::Panic);
        hit("faults/test/nth");
        hit("faults/test/nth");
        let err = std::panic::catch_unwind(|| hit("faults/test/nth"));
        assert!(err.is_err(), "third hit must panic");
        // Fired faults disarm: the fourth hit is clean (and no longer
        // counted — the site is disarmed).
        hit("faults/test/nth");
        assert_eq!(hits("faults/test/nth"), 3);
        assert!(armed_sites().is_empty());
        reset();
    }

    #[test]
    fn delay_sleeps() {
        let _g = guard();
        reset();
        arm(
            "faults/test/delay",
            1,
            Fault::Delay(Duration::from_millis(20)),
        );
        let t0 = Instant::now();
        hit("faults/test/delay");
        assert!(t0.elapsed() >= Duration::from_millis(20));
        reset();
    }

    #[test]
    fn net_faults_surface_only_through_take_net() {
        let _g = guard();
        reset();
        arm(
            "faults/test/net",
            2,
            Fault::Net(NetFault::Truncate { keep: 7 }),
        );
        // A net fault firing at a plain `hit` site is a no-op...
        assert_eq!(take_net("faults/test/net"), None); // hit 1: not yet
        assert_eq!(
            take_net("faults/test/net"),
            Some(NetFault::Truncate { keep: 7 })
        );
        // ...and one-shot: disarmed afterwards.
        assert_eq!(take_net("faults/test/net"), None);
        assert!(armed_sites().is_empty());
        // Non-network faults keep their semantics at net sites.
        arm("faults/test/net2", 1, Fault::Panic);
        let err = std::panic::catch_unwind(|| take_net("faults/test/net2"));
        assert!(err.is_err(), "panic fault must unwind from take_net");
        reset();
    }

    #[test]
    fn net_fault_is_inert_at_plain_hit_sites() {
        let _g = guard();
        reset();
        arm("faults/test/net3", 1, Fault::Net(NetFault::Disconnect));
        hit("faults/test/net3"); // must not panic or sleep
        assert_eq!(hits("faults/test/net3"), 1);
        assert!(armed_sites().is_empty(), "fired and disarmed");
        reset();
    }

    #[test]
    fn cancel_fires_the_control() {
        let _g = guard();
        reset();
        let ctrl = crate::Control::unlimited();
        arm("faults/test/cancel", 2, Fault::Cancel);
        hit_ctrl("faults/test/cancel", &ctrl);
        assert!(ctrl.checkpoint().is_ok());
        hit_ctrl("faults/test/cancel", &ctrl);
        assert!(ctrl.checkpoint().is_err());
        reset();
    }
}
