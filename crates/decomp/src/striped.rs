//! The shared lock-striped, borrowed-key table core behind both
//! memoisation tables of the workspace — the engine's
//! `SubproblemCache` (negative + positive `Decomp` verdicts, CLOCK
//! eviction) and `det-k-decomp`'s `SharedMemo` (per-`(component,
//! connector)` verdicts, entry cap). Both tables memoise the same kind of
//! key — a resolved extended subproblem — with the same concurrency
//! discipline; this module is that discipline, written once:
//!
//! * **Resolved keys.** Special edges are keyed by *vertex set*, not by
//!   branch-local [`SpecialArena`] id: ids mean different sets in
//!   different arenas, vertex sets are canonical. Stored keys keep their
//!   specials sorted; probes match them as a multiset
//!   ([`specials_multiset_match`]) without sorting. The optional
//!   `allowed` edge alphabet participates in the key behind an [`Arc`]
//!   shared with the prober's recursion, so storing a key bumps a
//!   refcount instead of cloning the set.
//! * **Borrowed-key probes.** A lookup never builds an owned key: it
//!   hashes the borrowed `(edges, specials, conn[, allowed])` directly —
//!   per-special hashes are combined *commutatively* (`wrapping_add`), so
//!   the unsorted branch-local view and the sorted stored key hash
//!   identically without a sort buffer — and walks the hash's bucket
//!   comparing stored entries against the borrowed data. Hits and misses
//!   allocate nothing.
//! * **Owned-key-on-insert.** The owned [`StripedKey`] is built exactly
//!   once, when a verdict is actually stored. The probe hands its hash
//!   back on a miss so the follow-up insert does not recompute it.
//! * **Lock striping.** Keys are spread over [`SHARDS`] mutex shards by
//!   hash; parallel branches rarely contend on the same lock, and
//!   poisoned locks are ignored (the tables hold no invariants across a
//!   panicking insert).
//! * **Under-lock dedup.** An insert whose key is already present (a
//!   racing branch beat us) keeps the incumbent and reports
//!   [`InsertOutcome::Duplicate`] — entry counts and byte budgets never
//!   leak on the race.
//!
//! What stays *outside* the core is the [`Retention`] policy — the one
//! place the two tables genuinely differ. The engine cache evicts under a
//! byte budget with a per-shard second-chance (CLOCK) sweep
//! ([`ClockEviction`]); the det-k memo freezes inserts past an entry cap
//! ([`EntryCap`]). Policies run under the shard lock and account against
//! the table-wide [`TableTotals`], so the cap/budget stays exact under
//! concurrent inserts.

use std::collections::HashMap;
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use hypergraph::{EdgeSet, SpecialArena, Subproblem, VertexSet};

use crate::portable::specials_multiset_match;

/// Number of lock stripes. Keys spread uniformly by hash, so per-shard
/// pressure tracks global pressure.
pub const SHARDS: usize = 16;

/// Canonical identity of a memoised subproblem: resolved edges, specials
/// (sorted vertex sets), connector, and optionally the allowed λ alphabet
/// (the engine cache keys on it; the det-k memo does not).
#[derive(Debug)]
pub struct StripedKey {
    edges: EdgeSet,
    /// Special edges resolved to vertex sets, sorted canonically.
    specials: Vec<VertexSet>,
    conn: VertexSet,
    /// Shared with the prober's recursion: storing a key is a refcount
    /// bump, not a set clone.
    allowed: Option<Arc<EdgeSet>>,
}

impl StripedKey {
    /// Builds the owned (canonical) key from the borrowed probe parts.
    pub fn build(
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: Option<&Arc<EdgeSet>>,
    ) -> Self {
        let mut specials: Vec<VertexSet> =
            sub.specials.iter().map(|&s| arena.get(s).clone()).collect();
        specials.sort_unstable();
        StripedKey {
            edges: sub.edges.clone(),
            specials,
            conn: conn.clone(),
            allowed: allowed.map(Arc::clone),
        }
    }

    /// Estimated heap footprint in bytes (for byte-budget policies). The
    /// `allowed` set is physically shared via `Arc` but counted in full —
    /// a conservative over-estimate that can only make eviction earlier,
    /// never let a cache overrun its budget.
    pub fn approx_bytes(&self) -> usize {
        let set_bytes = |s: &EdgeSet| s.capacity().div_ceil(64) * 8 + 32;
        let vset_bytes = |s: &VertexSet| s.capacity().div_ceil(64) * 8 + 32;
        set_bytes(&self.edges)
            + self.allowed.as_deref().map_or(0, set_bytes)
            + vset_bytes(&self.conn)
            + self.specials.iter().map(vset_bytes).sum::<usize>()
            + 48 // slot + Vec header overhead
    }

    /// Whether this stored key describes the borrowed subproblem — the
    /// single definition of key identity, used by probe and insert alike.
    fn matches(
        &self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: Option<&Arc<EdgeSet>>,
    ) -> bool {
        let allowed_match = match (&self.allowed, allowed) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b) || **a == **b,
            _ => false,
        };
        allowed_match
            && self.edges == sub.edges
            && self.conn == *conn
            && specials_multiset_match(&self.specials, arena, &sub.specials)
    }
}

/// One stored entry: the key, the caller's value, and the retention
/// bookkeeping ([`ClockEviction`]'s cost charge and reference bit).
pub struct Entry<V> {
    hash: u64,
    key: StripedKey,
    value: V,
    /// Byte cost charged against a byte budget when this entry was
    /// stored (unused by count-based policies).
    cost: usize,
    /// CLOCK reference bit: set on every hit, cleared (second chance) by
    /// the eviction sweep.
    referenced: bool,
}

/// One lock stripe: a slab of entries plus a hash → slot index. The slab
/// gives a CLOCK hand a stable circular order, which a plain `HashMap`
/// iteration cannot.
pub struct Shard<V> {
    slots: Vec<Option<Entry<V>>>,
    free: Vec<u32>,
    index: HashMap<u64, Vec<u32>>,
    hand: usize,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            hand: 0,
        }
    }
}

impl<V> Shard<V> {
    fn find(
        &self,
        hash: u64,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: Option<&Arc<EdgeSet>>,
    ) -> Option<u32> {
        let ids = self.index.get(&hash)?;
        ids.iter().copied().find(|&id| {
            let entry = self.slots[id as usize]
                .as_ref()
                .expect("indexed slots are occupied");
            entry.hash == hash && entry.key.matches(arena, sub, conn, allowed)
        })
    }

    fn remove_slot(&mut self, id: u32) -> Entry<V> {
        let entry = self.slots[id as usize].take().expect("slot occupied");
        if let Some(ids) = self.index.get_mut(&entry.hash) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.index.remove(&entry.hash);
            }
        }
        self.free.push(id);
        entry
    }

    fn place(&mut self, entry: Entry<V>) {
        let hash = entry.hash;
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(entry);
                id
            }
            None => {
                let id = self.slots.len() as u32;
                self.slots.push(Some(entry));
                id
            }
        };
        self.index.entry(hash).or_default().push(id);
    }
}

/// Table-wide counters shared between the core and its retention policy.
/// The policy reserves entries/bytes atomically in `admit` (and releases
/// them on eviction), so caps and budgets hold exactly even when inserts
/// race on different shards.
#[derive(Debug, Default)]
pub struct TableTotals {
    entries: AtomicUsize,
    bytes: AtomicUsize,
    evictions: AtomicU64,
}

impl TableTotals {
    /// Entries currently stored.
    pub fn entries(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Estimated bytes currently stored (byte-budget policies only).
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Entries evicted so far (evicting policies only).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// A pluggable retention policy: decides admission (possibly evicting)
/// and marks hits. Called under the owning shard's lock.
pub trait Retention: Send + Sync {
    /// Admits an entry of `cost` bytes into `shard`, evicting as the
    /// policy allows; returns `false` to reject the insert. On success
    /// the policy must have *reserved* the entry in `totals` (entry
    /// count, and bytes if it budgets them) atomically — reservation
    /// inside `admit` is what keeps caps exact when inserts race on
    /// different shards; the table only places the entry afterwards.
    fn admit<V>(&self, shard: &mut Shard<V>, cost: usize, totals: &TableTotals) -> bool;

    /// Marks a probe hit (e.g. sets the CLOCK reference bit).
    fn on_hit<V>(&self, _entry: &mut Entry<V>) {}
}

/// Byte-budgeted retention with a per-shard second-chance (CLOCK) sweep:
/// when an insert would overflow the budget, entries touched since the
/// last sweep get their reference bit cleared (a second chance) and cold
/// entries are evicted until the new entry fits. Hot entries survive
/// memory pressure; the first-come set cannot squat the budget.
#[derive(Debug)]
pub struct ClockEviction {
    byte_budget: usize,
}

impl ClockEviction {
    /// Policy bounded by `byte_budget` bytes.
    pub fn new(byte_budget: usize) -> Self {
        ClockEviction { byte_budget }
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Second-chance sweep over one shard: referenced entries are spared
    /// once (bit cleared), unreferenced entries are evicted, until the
    /// global footprint fits the budget or two full revolutions have
    /// given every entry its chance.
    fn sweep<V>(&self, shard: &mut Shard<V>, totals: &TableTotals) {
        let n = shard.slots.len();
        let mut steps = 0usize;
        while steps < 2 * n && totals.bytes.load(Ordering::Relaxed) > self.byte_budget {
            let i = shard.hand % n;
            shard.hand = (shard.hand + 1) % n.max(1);
            steps += 1;
            let Some(entry) = shard.slots[i].as_mut() else {
                continue;
            };
            if entry.referenced {
                entry.referenced = false;
                continue;
            }
            let evicted = shard.remove_slot(i as u32);
            totals.bytes.fetch_sub(evicted.cost, Ordering::Relaxed);
            totals.entries.fetch_sub(1, Ordering::Relaxed);
            totals.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Retention for ClockEviction {
    fn admit<V>(&self, shard: &mut Shard<V>, cost: usize, totals: &TableTotals) -> bool {
        // Reserve-then-sweep keeps the budget exact under concurrent
        // inserts; the sweep frees cold entries of this shard until the
        // new entry fits.
        let prev = totals.bytes.fetch_add(cost, Ordering::Relaxed);
        if prev + cost > self.byte_budget {
            self.sweep(shard, totals);
            if totals.bytes.load(Ordering::Relaxed) > self.byte_budget {
                totals.bytes.fetch_sub(cost, Ordering::Relaxed);
                return false;
            }
        }
        totals.entries.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn on_hit<V>(&self, entry: &mut Entry<V>) {
        entry.referenced = true;
    }
}

/// Count-capped retention, mirroring the paper's memory-limit discipline
/// for `det-k-decomp`: past the cap the table keeps serving hits but
/// stops memoising. Never evicts.
#[derive(Debug)]
pub struct EntryCap {
    cap: usize,
}

impl EntryCap {
    /// Policy capped at `cap` entries.
    pub fn new(cap: usize) -> Self {
        EntryCap { cap }
    }

    /// The configured entry cap.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

impl Retention for EntryCap {
    fn admit<V>(&self, _shard: &mut Shard<V>, _cost: usize, totals: &TableTotals) -> bool {
        // Atomic reserve: a check-then-act on the shared count would let
        // concurrent inserts on *different* shards all pass the check
        // and overshoot the cap by up to the shard count.
        totals
            .entries
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.cap).then_some(n + 1)
            })
            .is_ok()
    }
}

/// Outcome of a [`StripedTable::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The entry was stored.
    Inserted,
    /// An equal key was already present (a racing branch beat us); the
    /// incumbent is kept.
    Duplicate,
    /// The retention policy could not make room.
    Rejected,
}

/// The shared striped-table core, generic over the stored value and the
/// retention policy. See the module docs for the invariants.
pub struct StripedTable<V, R> {
    shards: Vec<Mutex<Shard<V>>>,
    hasher: RandomState,
    totals: TableTotals,
    policy: R,
}

impl<V, R: Retention> StripedTable<V, R> {
    /// Creates an empty table under `policy`.
    pub fn new(policy: R) -> Self {
        StripedTable {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            hasher: RandomState::new(),
            totals: TableTotals::default(),
            policy,
        }
    }

    /// The retention policy (for wrappers exposing its configuration).
    pub fn policy(&self) -> &R {
        &self.policy
    }

    /// The table-wide counters (entries, bytes, evictions).
    pub fn totals(&self) -> &TableTotals {
        &self.totals
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.totals.entries()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hashes the borrowed key parts. Per-special hashes are combined
    /// with a commutative `wrapping_add`, so the canonical (sorted)
    /// stored key and the unsorted branch-local view hash identically
    /// without materialising a sorted buffer.
    pub fn hash_key(
        &self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: Option<&EdgeSet>,
    ) -> u64 {
        let mut h = self.hasher.hash_one(&sub.edges);
        h = h.rotate_left(17) ^ self.hasher.hash_one(conn);
        if let Some(allowed) = allowed {
            h = h.rotate_left(17) ^ self.hasher.hash_one(allowed);
        }
        let mut sp = 0u64;
        for &s in &sub.specials {
            sp = sp.wrapping_add(self.hasher.hash_one(arena.get(s)));
        }
        h ^ sp
    }

    /// Borrowed-key probe: hashes the borrowed parts, and on a hit marks
    /// the entry via the policy and returns `read`'s view of the stored
    /// value — `read` runs under the shard lock, so it should only take a
    /// cheap handle (e.g. clone an `Arc`), never walk the value. Returns
    /// the key hash either way, so a miss's follow-up insert does not
    /// recompute it.
    pub fn probe_with<T>(
        &self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: Option<&Arc<EdgeSet>>,
        read: impl FnOnce(&V) -> T,
    ) -> (u64, Option<T>) {
        let hash = self.hash_key(arena, sub, conn, allowed.map(Arc::as_ref));
        let mut shard = self.shards[(hash as usize) % SHARDS]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let hit = shard.find(hash, arena, sub, conn, allowed).map(|id| {
            let entry = shard.slots[id as usize].as_mut().expect("found slot");
            self.policy.on_hit(entry);
            read(&entry.value)
        });
        (hash, hit)
    }

    /// Stores `value` under the borrowed key (the owned [`StripedKey`] is
    /// built here — the single owned-key construction of the table's
    /// lifecycle). `value_cost` is the value's byte footprint for
    /// byte-budget policies; the key's own footprint is added internally.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        hash: u64,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: Option<&Arc<EdgeSet>>,
        value: V,
        value_cost: usize,
    ) -> InsertOutcome {
        let key = StripedKey::build(arena, sub, conn, allowed);
        let cost = key.approx_bytes() + value_cost;
        let mut shard = self.shards[(hash as usize) % SHARDS]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // Fault site *inside* the critical section: an injected panic
        // here poisons the shard mutex mid-insert — the exact scenario
        // the `unwrap_or_else(into_inner)` recovery pattern exists for.
        // (The shard's state is still coherent: nothing was mutated yet.)
        crate::faults::hit("striped/insert_locked");
        if shard.find(hash, arena, sub, conn, allowed).is_some() {
            return InsertOutcome::Duplicate;
        }
        if !self.policy.admit(&mut shard, cost, &self.totals) {
            return InsertOutcome::Rejected;
        }
        // `admit` reserved the entry in the totals; placing it cannot
        // fail past this point.
        shard.place(Entry {
            hash,
            key,
            value,
            cost,
            referenced: false,
        });
        InsertOutcome::Inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{Edge, Hypergraph};

    fn hg4() -> Hypergraph {
        Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]])
    }

    fn sub_of(hg: &Hypergraph, edges: &[u32]) -> Subproblem {
        let mut sub = Subproblem::empty(hg);
        for &e in edges {
            sub.edges.insert(Edge(e));
        }
        sub
    }

    #[test]
    fn borrowed_probe_and_insert_roundtrip_without_allowed() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let table: StripedTable<u32, EntryCap> = StripedTable::new(EntryCap::new(8));
        let sub = sub_of(&hg, &[0, 1]);
        let (hash, hit) = table.probe_with(&arena, &sub, &conn, None, |&v| v);
        assert_eq!(hit, None);
        assert_eq!(
            table.insert(hash, &arena, &sub, &conn, None, 17, 0),
            InsertOutcome::Inserted
        );
        let (_, hit) = table.probe_with(&arena, &sub, &conn, None, |&v| v);
        assert_eq!(hit, Some(17));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn duplicate_insert_keeps_the_incumbent() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let table: StripedTable<u32, EntryCap> = StripedTable::new(EntryCap::new(8));
        let sub = sub_of(&hg, &[2]);
        let (hash, _) = table.probe_with(&arena, &sub, &conn, None, |&v| v);
        assert_eq!(
            table.insert(hash, &arena, &sub, &conn, None, 1, 0),
            InsertOutcome::Inserted
        );
        assert_eq!(
            table.insert(hash, &arena, &sub, &conn, None, 2, 0),
            InsertOutcome::Duplicate
        );
        let (_, hit) = table.probe_with(&arena, &sub, &conn, None, |&v| v);
        assert_eq!(hit, Some(1), "the racing insert must not replace the value");
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn entry_cap_freezes_inserts_but_keeps_serving() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let table: StripedTable<u32, EntryCap> = StripedTable::new(EntryCap::new(1));
        let first = sub_of(&hg, &[0]);
        let second = sub_of(&hg, &[1]);
        let (h1, _) = table.probe_with(&arena, &first, &conn, None, |&v| v);
        assert_eq!(
            table.insert(h1, &arena, &first, &conn, None, 10, 0),
            InsertOutcome::Inserted
        );
        let (h2, _) = table.probe_with(&arena, &second, &conn, None, |&v| v);
        assert_eq!(
            table.insert(h2, &arena, &second, &conn, None, 20, 0),
            InsertOutcome::Rejected
        );
        let (_, hit) = table.probe_with(&arena, &first, &conn, None, |&v| v);
        assert_eq!(hit, Some(10), "a frozen table still serves its entries");
        assert_eq!(table.len(), 1);
        assert_eq!(table.totals().evictions(), 0, "entry-cap never evicts");
    }

    #[test]
    fn allowed_alphabet_distinguishes_keys() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let sub = sub_of(&hg, &[0]);
        let all = Arc::new(hg.all_edges());
        let mut restricted = hg.all_edges();
        restricted.remove(Edge(3));
        let restricted = Arc::new(restricted);
        let table: StripedTable<u32, EntryCap> = StripedTable::new(EntryCap::new(8));
        let (hash, _) = table.probe_with(&arena, &sub, &conn, Some(&all), |&v| v);
        table.insert(hash, &arena, &sub, &conn, Some(&all), 1, 0);
        let (_, hit) = table.probe_with(&arena, &sub, &conn, Some(&restricted), |&v| v);
        assert_eq!(hit, None, "a different allowed alphabet is a different key");
        let (_, hit) = table.probe_with(&arena, &sub, &conn, Some(&all), |&v| v);
        assert_eq!(hit, Some(1));
    }

    #[test]
    fn clock_eviction_respects_reference_bits_across_policies() {
        // Same shard-collision construction as the engine cache's test,
        // run directly against the shared core: the hot (touched) entry
        // survives the sweep, the cold one is evicted.
        let edges: Vec<Vec<u32>> = (0..12u32).map(|i| vec![i, (i + 1) % 12]).collect();
        let hg = Hypergraph::from_edge_lists(&edges);
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let mut candidates: Vec<Subproblem> = Vec::new();
        for i in 0..12u32 {
            for j in i + 1..12 {
                candidates.push(sub_of(&hg, &[i, j]));
            }
        }
        let one_cost = StripedKey::build(&arena, &candidates[0], &conn, None).approx_bytes();
        let table: StripedTable<u32, ClockEviction> =
            StripedTable::new(ClockEviction::new(2 * one_cost + one_cost / 2));
        let mut by_shard: Vec<Vec<(Subproblem, u64)>> = (0..SHARDS).map(|_| Vec::new()).collect();
        for sub in candidates {
            let (h, _) = table.probe_with(&arena, &sub, &conn, None, |&v| v);
            by_shard[(h as usize) % SHARDS].push((sub, h));
        }
        let triple = by_shard
            .into_iter()
            .find(|v| v.len() >= 3)
            .expect("66 keys over 16 shards must collide");
        let [(hot, h_hot), (cold, h_cold), (new, h_new)] = &triple[..3] else {
            unreachable!()
        };
        table.insert(*h_hot, &arena, hot, &conn, None, 1, 0);
        table.insert(*h_cold, &arena, cold, &conn, None, 2, 0);
        // Touch the hot entry so its reference bit is set.
        let (_, hit) = table.probe_with(&arena, hot, &conn, None, |&v| v);
        assert_eq!(hit, Some(1));
        assert_eq!(
            table.insert(*h_new, &arena, new, &conn, None, 3, 0),
            InsertOutcome::Inserted
        );
        assert_eq!(table.totals().evictions(), 1);
        let (_, hot_hit) = table.probe_with(&arena, hot, &conn, None, |&v| v);
        assert_eq!(hot_hit, Some(1), "referenced entry survives the sweep");
        let (_, cold_hit) = table.probe_with(&arena, cold, &conn, None, |&v| v);
        assert_eq!(cold_hit, None, "cold entry is gone");
        assert!(table.totals().bytes() <= 2 * one_cost + one_cost / 2);
    }

    #[test]
    fn clock_rejects_when_nothing_fits_and_releases_bytes() {
        let hg = hg4();
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let sub = sub_of(&hg, &[0]);
        let cost = StripedKey::build(&arena, &sub, &conn, None).approx_bytes();
        let table: StripedTable<u32, ClockEviction> =
            StripedTable::new(ClockEviction::new(cost / 2));
        let (hash, _) = table.probe_with(&arena, &sub, &conn, None, |&v| v);
        assert_eq!(
            table.insert(hash, &arena, &sub, &conn, None, 1, 0),
            InsertOutcome::Rejected
        );
        assert_eq!(table.totals().bytes(), 0, "rejection must release bytes");
        assert!(table.is_empty());
    }
}
