//! Cooperative cancellation and deadlines for long-running solvers.
//!
//! The paper's evaluation imposes a wall-clock timeout on every solver run
//! (Section 5.1). All solvers in this workspace poll a shared [`Control`]
//! in their inner search loops, so the harness can enforce timeouts without
//! killing threads and without ever accepting a partially-computed answer.
//!
//! # Linked controls
//!
//! A [`Control`] can be the *child* of another ([`Control::child`],
//! [`Control::child_with_timeout`]), mirroring the engine's `Prune` chain
//! for nested parallel races: cancelling a parent fires every transitive
//! child at its next checkpoint. A long-running service hands each request
//! a child of its own root control — the request's deadline is local, but
//! one `cancel()` on the root cooperatively stops every in-flight solve
//! (see the `htdserve` crate). Deadlines fold downward at construction:
//! a child's effective deadline is the minimum of its own budget and the
//! parent's, so the chain walk on the hot path touches only stop flags.
//!
//! # Hot-path cost
//!
//! [`Control::checkpoint`] is called in every inner loop of every solver.
//! It performs relaxed atomic loads only; the deadline clock
//! (`Instant::now()`, a syscall on some targets) is consulted on the
//! *first* poll of a control — so sub-millisecond budgets fire promptly
//! even on short solves — and then once every [`CLOCK_STRIDE`] polls,
//! counted on a per-thread counter. Earlier revisions shared one
//! `AtomicU64` poll counter between all workers, which put a contended
//! cross-core cache line in every inner loop; the per-thread stride
//! removes that line entirely (`micro/ctrl_overhead` pins the cost).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solver stopped early.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Interrupted {
    /// [`Control::cancel`] was called.
    Cancelled,
    /// The deadline passed.
    Timeout,
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupted::Cancelled => write!(f, "cancelled"),
            Interrupted::Timeout => write!(f, "timed out"),
        }
    }
}

impl std::error::Error for Interrupted {}

/// Polls between deadline-clock consultations on one thread (after the
/// first poll of a control, which always consults the clock).
pub const CLOCK_STRIDE: u64 = 256;

thread_local! {
    /// Per-thread poll counter driving the clock stride. Shared by every
    /// control polled on the thread: a thread alternating between `m`
    /// deadline controls consults the clock for each roughly every
    /// `m × CLOCK_STRIDE` of its own polls — still bounded, with no
    /// cross-core traffic.
    static POLLS: Cell<u64> = const { Cell::new(0) };
}

/// Shared stop signal with an optional deadline and an optional parent
/// link. Cheap to poll: relaxed atomic loads in the common case (see the
/// module docs for the clock-stride discipline).
#[derive(Debug, Default)]
pub struct Control {
    stop: AtomicBool,
    timed_out: AtomicBool,
    deadline: Option<Instant>,
    /// Whether the first checkpoint has consulted the clock yet.
    armed: AtomicBool,
    /// Enclosing control; its `stop` fires this one at the next poll.
    parent: Option<Arc<Control>>,
}

impl Control {
    /// A control that never fires on its own (cancellable only).
    pub fn unlimited() -> Self {
        Control::default()
    }

    /// A control that times out `budget` from now.
    pub fn with_timeout(budget: Duration) -> Self {
        Control {
            deadline: Instant::now().checked_add(budget),
            ..Control::default()
        }
    }

    /// A control that times out at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Control {
            deadline: Some(deadline),
            ..Control::default()
        }
    }

    /// A child control: fires when `self` fires, and only then.
    ///
    /// The child inherits the parent's deadline (folded in at
    /// construction) and observes the parent's `cancel()` at its next
    /// checkpoint, however deep the chain. Cancelling the *child* does
    /// not affect the parent.
    pub fn child(self: &Arc<Self>) -> Arc<Control> {
        Arc::new(Control {
            deadline: self.deadline,
            parent: Some(Arc::clone(self)),
            ..Control::default()
        })
    }

    /// A child control with its own budget: fires after `budget`, at the
    /// parent's deadline, or on any ancestor's `cancel()` — whichever
    /// comes first. This is the per-request deadline primitive of the
    /// `htdserve` server.
    pub fn child_with_timeout(self: &Arc<Self>, budget: Duration) -> Arc<Control> {
        let own = Instant::now().checked_add(budget);
        let deadline = match (own, self.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Arc::new(Control {
            deadline,
            parent: Some(Arc::clone(self)),
            ..Control::default()
        })
    }

    /// Requests cancellation; all subsequent checkpoints (of this control
    /// and of every transitive child) fail.
    pub fn cancel(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Time left until the deadline (`None` if the control has no
    /// deadline; zero once it passed). Deadline-aware admission control
    /// consults this before accepting work it could never finish.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The effective deadline, if any (parent deadlines already folded
    /// in at construction).
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Which interruption this control's own flags record.
    #[inline]
    fn kind(&self) -> Interrupted {
        if self.timed_out.load(Ordering::Relaxed) {
            Interrupted::Timeout
        } else {
            Interrupted::Cancelled
        }
    }

    /// Latches an interruption into this control's flags and returns it.
    #[cold]
    fn latch(&self, why: Interrupted) -> Interrupted {
        self.timed_out
            .store(why == Interrupted::Timeout, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
        why
    }

    /// Non-consuming poll used in hot loops.
    ///
    /// Returns `Err` once cancelled (directly or via an ancestor) or past
    /// the deadline.
    #[inline]
    pub fn checkpoint(&self) -> Result<(), Interrupted> {
        if self.stop.load(Ordering::Relaxed) {
            return Err(self.kind());
        }
        // Ancestor stop flags (deadlines were folded in at construction,
        // so this walk is loads only). A fired ancestor is latched
        // locally: subsequent polls take the one-load fast path above.
        let mut ancestor = self.parent.as_deref();
        while let Some(p) = ancestor {
            if p.stop.load(Ordering::Relaxed) {
                return Err(self.latch(p.kind()));
            }
            ancestor = p.parent.as_deref();
        }
        if let Some(deadline) = self.deadline {
            // Consult the clock on the first poll (short budgets must
            // fire even on short solves), then on a per-thread stride —
            // `Instant::now()` is far more expensive than the loads, and
            // a shared poll counter would be a contended cache line.
            let check = if self.armed.load(Ordering::Relaxed) {
                POLLS.with(|c| {
                    let n = c.get().wrapping_add(1);
                    c.set(n);
                    n.is_multiple_of(CLOCK_STRIDE)
                })
            } else {
                self.armed.store(true, Ordering::Relaxed);
                true
            };
            if check && Instant::now() >= deadline {
                return Err(self.latch(Interrupted::Timeout));
            }
        }
        Ok(())
    }

    /// Poll for **coarse-grained** pollers: always consults the clock
    /// when a deadline is set.
    ///
    /// [`checkpoint`](Self::checkpoint) amortises the `Instant::now()`
    /// cost over [`CLOCK_STRIDE`] polls, which is right for loops that
    /// poll every few nanoseconds — and wrong for callers that poll
    /// once per *batch* of work (the SAT solver polls once per 64
    /// conflicts): a sparse poller may never accumulate a full stride,
    /// so its deadline would only fire through the one-shot first-poll
    /// consult, which any earlier checkpoint on the same control
    /// consumes. At a coarse cadence the clock read is noise; pay it
    /// every time and keep the latency bound.
    pub fn checkpoint_coarse(&self) -> Result<(), Interrupted> {
        if self.stop.load(Ordering::Relaxed) {
            return Err(self.kind());
        }
        let mut ancestor = self.parent.as_deref();
        while let Some(p) = ancestor {
            if p.stop.load(Ordering::Relaxed) {
                return Err(self.latch(p.kind()));
            }
            ancestor = p.parent.as_deref();
        }
        if let Some(deadline) = self.deadline {
            self.armed.store(true, Ordering::Relaxed);
            if Instant::now() >= deadline {
                return Err(self.latch(Interrupted::Timeout));
            }
        }
        Ok(())
    }

    /// Whether the control has fired (for display/bookkeeping). Only
    /// reflects *observed* interruptions: an ancestor's `cancel()` or a
    /// passed deadline registers here once a checkpoint has seen it.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fires() {
        let c = Control::unlimited();
        for _ in 0..10_000 {
            assert!(c.checkpoint().is_ok());
        }
    }

    #[test]
    fn cancel_fires_immediately() {
        let c = Control::unlimited();
        c.cancel();
        assert_eq!(c.checkpoint(), Err(Interrupted::Cancelled));
        assert!(c.is_stopped());
    }

    #[test]
    fn deadline_fires_as_timeout_on_first_poll() {
        // The first poll always consults the clock: a zero budget fires
        // without needing CLOCK_STRIDE polls.
        let c = Control::with_timeout(Duration::from_millis(0));
        assert_eq!(c.checkpoint(), Err(Interrupted::Timeout));
    }

    #[test]
    fn coarse_checkpoint_fires_after_first_poll_was_consumed() {
        // Regression: a sparse poller (fewer than CLOCK_STRIDE polls
        // over the whole solve) must still observe its deadline even
        // when an earlier checkpoint consumed the one-shot first-poll
        // clock consult. `checkpoint` alone cannot promise that —
        // `checkpoint_coarse` consults the clock unconditionally.
        let c = Control::with_timeout(Duration::from_millis(1));
        let _ = c.checkpoint(); // consumes the armed first consult
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(c.checkpoint_coarse(), Err(Interrupted::Timeout));
        // And the verdict latches for the plain fast path too.
        assert_eq!(c.checkpoint(), Err(Interrupted::Timeout));
    }

    #[test]
    fn coarse_checkpoint_sees_ancestor_cancel() {
        let root = Arc::new(Control::unlimited());
        let child = root.child();
        assert!(child.checkpoint_coarse().is_ok());
        root.cancel();
        assert_eq!(child.checkpoint_coarse(), Err(Interrupted::Cancelled));
    }

    #[test]
    fn deadline_fires_within_stride() {
        let c = Control::with_timeout(Duration::from_millis(5));
        let start = Instant::now();
        let mut fired = None;
        for _ in 0..200_000_000 {
            if let Err(e) = c.checkpoint() {
                fired = Some(e);
                break;
            }
            if start.elapsed() > Duration::from_secs(30) {
                break;
            }
        }
        assert_eq!(fired, Some(Interrupted::Timeout));
    }

    #[test]
    fn cancellation_from_another_thread() {
        let c = Arc::new(Control::unlimited());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.cancel());
        h.join().unwrap();
        assert!(c.checkpoint().is_err());
    }

    #[test]
    fn remaining_counts_down() {
        let c = Control::unlimited();
        assert_eq!(c.remaining(), None);
        let c = Control::with_timeout(Duration::from_secs(60));
        let r = c.remaining().unwrap();
        assert!(r <= Duration::from_secs(60) && r > Duration::from_secs(50));
        let c = Control::with_timeout(Duration::from_millis(0));
        // Saturates at zero once passed.
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(c.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn parent_cancel_fires_child_and_grandchild() {
        let root = Arc::new(Control::unlimited());
        let child = root.child();
        let grandchild = child.child();
        assert!(grandchild.checkpoint().is_ok());
        root.cancel();
        assert_eq!(grandchild.checkpoint(), Err(Interrupted::Cancelled));
        assert_eq!(child.checkpoint(), Err(Interrupted::Cancelled));
        // The interruption latches: the child now reports stopped.
        assert!(child.is_stopped());
    }

    #[test]
    fn child_cancel_leaves_parent_running() {
        let root = Arc::new(Control::unlimited());
        let child = root.child();
        child.cancel();
        assert!(child.checkpoint().is_err());
        assert!(root.checkpoint().is_ok());
    }

    #[test]
    fn child_deadline_folds_parent_deadline() {
        // Parent's tighter deadline wins over the child's longer budget.
        let root = Arc::new(Control::with_timeout(Duration::from_millis(0)));
        let child = root.child_with_timeout(Duration::from_secs(3600));
        assert_eq!(child.checkpoint(), Err(Interrupted::Timeout));
        // Child's tighter budget wins over the parent's longer one.
        let root = Arc::new(Control::with_timeout(Duration::from_secs(3600)));
        let child = root.child_with_timeout(Duration::from_millis(0));
        assert_eq!(child.checkpoint(), Err(Interrupted::Timeout));
        assert!(child.remaining().unwrap() < Duration::from_secs(3600));
    }

    #[test]
    fn parent_timeout_reports_timeout_in_child() {
        let root = Arc::new(Control::with_timeout(Duration::from_millis(0)));
        // The parent observes its deadline...
        assert_eq!(root.checkpoint(), Err(Interrupted::Timeout));
        // ...and a deadline-less child classifies the inherited stop as
        // a timeout, not a cancellation.
        let child = root.child();
        assert_eq!(child.checkpoint(), Err(Interrupted::Timeout));
    }
}
