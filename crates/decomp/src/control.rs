//! Cooperative cancellation and deadlines for long-running solvers.
//!
//! The paper's evaluation imposes a wall-clock timeout on every solver run
//! (Section 5.1). All solvers in this workspace poll a shared [`Control`]
//! in their inner search loops, so the harness can enforce timeouts without
//! killing threads and without ever accepting a partially-computed answer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why a solver stopped early.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Interrupted {
    /// [`Control::cancel`] was called.
    Cancelled,
    /// The deadline passed.
    Timeout,
}

impl std::fmt::Display for Interrupted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupted::Cancelled => write!(f, "cancelled"),
            Interrupted::Timeout => write!(f, "timed out"),
        }
    }
}

impl std::error::Error for Interrupted {}

/// Shared stop signal. Cheap to poll: a relaxed atomic load in the common
/// case; the deadline clock is consulted only every 256th poll.
#[derive(Debug)]
pub struct Control {
    stop: AtomicBool,
    timed_out: AtomicBool,
    deadline: Option<Instant>,
    polls: AtomicU64,
}

impl Control {
    /// A control that never fires on its own (cancellable only).
    pub fn unlimited() -> Self {
        Control {
            stop: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            deadline: None,
            polls: AtomicU64::new(0),
        }
    }

    /// A control that times out `budget` from now.
    pub fn with_timeout(budget: Duration) -> Self {
        Control {
            stop: AtomicBool::new(false),
            timed_out: AtomicBool::new(false),
            deadline: Some(Instant::now() + budget),
            polls: AtomicU64::new(0),
        }
    }

    /// Requests cancellation; all subsequent checkpoints fail.
    pub fn cancel(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Non-consuming poll used in hot loops.
    ///
    /// Returns `Err` once cancelled or past the deadline.
    #[inline]
    pub fn checkpoint(&self) -> Result<(), Interrupted> {
        if self.stop.load(Ordering::Relaxed) {
            return Err(if self.timed_out.load(Ordering::Relaxed) {
                Interrupted::Timeout
            } else {
                Interrupted::Cancelled
            });
        }
        if let Some(deadline) = self.deadline {
            // Consult the clock only occasionally; `Instant::now()` is
            // far more expensive than the atomic increment.
            let n = self.polls.fetch_add(1, Ordering::Relaxed);
            if n.is_multiple_of(256) && Instant::now() >= deadline {
                self.timed_out.store(true, Ordering::Relaxed);
                self.stop.store(true, Ordering::Relaxed);
                return Err(Interrupted::Timeout);
            }
        }
        Ok(())
    }

    /// Whether the control has fired (for display/bookkeeping).
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

impl Default for Control {
    fn default() -> Self {
        Control::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fires() {
        let c = Control::unlimited();
        for _ in 0..10_000 {
            assert!(c.checkpoint().is_ok());
        }
    }

    #[test]
    fn cancel_fires_immediately() {
        let c = Control::unlimited();
        c.cancel();
        assert_eq!(c.checkpoint(), Err(Interrupted::Cancelled));
        assert!(c.is_stopped());
    }

    #[test]
    fn deadline_fires_as_timeout() {
        let c = Control::with_timeout(Duration::from_millis(0));
        // The deadline is checked every 256 polls; loop until it trips.
        let mut fired = None;
        for _ in 0..1000 {
            if let Err(e) = c.checkpoint() {
                fired = Some(e);
                break;
            }
        }
        assert_eq!(fired, Some(Interrupted::Timeout));
    }

    #[test]
    fn cancellation_from_another_thread() {
        use std::sync::Arc;
        let c = Arc::new(Control::unlimited());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.cancel());
        h.join().unwrap();
        assert!(c.checkpoint().is_err());
    }
}
