//! Arena-independent HD-fragments, for cross-branch memoisation.
//!
//! A [`Fragment`] references its special-edge leaves by
//! [`SpecialId`] — an index into the *branch-local* [`SpecialArena`] of the
//! search that produced it. That makes fragments unshareable across rayon
//! branches or `det-k-decomp` handoffs: the same id means different vertex
//! sets in different arenas. A [`PortableFragment`] breaks the dependency
//! by storing every special leaf as its *resolved vertex set* — the
//! canonical, arena-free identity of the interface it stands for.
//!
//! * [`PortableFragment::from_fragment`] resolves a fragment against the
//!   arena it was built in;
//! * [`PortableFragment::instantiate`] rebuilds a [`Fragment`] for a *new*
//!   subproblem by rewriting each stored vertex set back to one of the
//!   caller's special ids with an equal set.
//!
//! The rewrite is sound because extended-HD validity (Definition 3.3) and
//! the stitching contract only depend on the *vertex sets* of special
//! edges: two specials with equal sets are interchangeable interfaces, so
//! any set-preserving bijection between stored leaves and local ids yields
//! a valid fragment for the new subproblem.

use hypergraph::{Edge, SpecialArena, SpecialId, VertexSet};

use crate::fragment::{FragLabel, FragNode, Fragment};
use crate::rewrite::SpecialClaims;

/// Label of a portable node: real edges, or a special leaf resolved to its
/// vertex set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PortableLabel {
    /// `λ(u) ⊆ E(H)` — meaningful in every branch as-is.
    Edges(Vec<Edge>),
    /// A special-edge leaf, identified by its resolved vertex set.
    Special(VertexSet),
}

/// One node of a [`PortableFragment`].
#[derive(Clone, Debug)]
pub struct PortableNode {
    /// The resolved λ-label.
    pub label: PortableLabel,
    /// The bag `χ(u)`.
    pub chi: VertexSet,
    /// Children (indices into the fragment's node vector).
    pub children: Vec<usize>,
}

/// A rooted HD-fragment with all special-edge references resolved to
/// vertex sets — shareable across branches, solves and engines.
#[derive(Clone, Debug)]
pub struct PortableFragment {
    /// Nodes; indices are local to this fragment.
    pub nodes: Vec<PortableNode>,
    /// Index of the root node.
    pub root: usize,
}

impl PortableFragment {
    /// Resolves `frag` against `arena`, detaching it from branch-local ids.
    pub fn from_fragment(frag: &Fragment, arena: &SpecialArena) -> Self {
        let nodes = frag
            .nodes
            .iter()
            .map(|n| PortableNode {
                label: match &n.label {
                    FragLabel::Edges(l) => PortableLabel::Edges(l.clone()),
                    FragLabel::Special(s) => PortableLabel::Special(arena.get(*s).clone()),
                },
                chi: n.chi.clone(),
                children: n.children.clone(),
            })
            .collect();
        PortableFragment {
            nodes,
            root: frag.root,
        }
    }

    /// Number of special leaves stored in this fragment.
    pub fn num_special_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.label, PortableLabel::Special(_)))
            .count()
    }

    /// Estimated heap footprint in bytes (for cache byte budgets).
    pub fn approx_bytes(&self) -> usize {
        let vset_bytes = |s: &VertexSet| s.capacity().div_ceil(64) * 8 + 32;
        self.nodes
            .iter()
            .map(|n| {
                let label = match &n.label {
                    PortableLabel::Edges(l) => l.len() * 4 + 24,
                    PortableLabel::Special(s) => vset_bytes(s),
                };
                label + vset_bytes(&n.chi) + n.children.len() * 8 + 64
            })
            .sum()
    }

    /// Rebuilds a [`Fragment`] whose special leaves reference ids drawn
    /// from `specials` (resolved through `arena`): each stored vertex set
    /// is paired with a distinct local id holding an equal set.
    ///
    /// Returns the fragment and the number of special-leaf id rewrites
    /// performed, or `None` if the multiset of stored leaf sets does not
    /// match the multiset of resolved `specials` — callers key their
    /// caches by resolved special sets, so a mismatch means the entry was
    /// looked up under the wrong key.
    pub fn instantiate(
        &self,
        arena: &SpecialArena,
        specials: &[SpecialId],
    ) -> Option<(Fragment, u64)> {
        let mut claims = SpecialClaims::new(arena, specials);
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let label = match &n.label {
                PortableLabel::Edges(l) => FragLabel::Edges(l.clone()),
                PortableLabel::Special(set) => FragLabel::Special(claims.claim(set)?),
            };
            nodes.push(FragNode {
                label,
                chi: n.chi.clone(),
                children: n.children.clone(),
            });
        }
        Some((
            Fragment {
                nodes,
                root: self.root,
            },
            claims.claims(),
        ))
    }
}

/// Multiset equality between stored (resolved) special sets and a prober's
/// branch-local ids resolved through `arena` — without sorting or
/// allocating for the common case of ≤ 128 specials. The memoisation
/// caches key subproblems by resolved special sets; this is their shared
/// borrowed-side comparison.
pub fn specials_multiset_match(
    stored: &[VertexSet],
    arena: &SpecialArena,
    locals: &[SpecialId],
) -> bool {
    if stored.len() != locals.len() {
        return false;
    }
    if stored.len() <= 128 {
        let mut used = 0u128;
        'outer: for &s in locals {
            let set = arena.get(s);
            for (i, st) in stored.iter().enumerate() {
                if used & (1 << i) == 0 && st == set {
                    used |= 1 << i;
                    continue 'outer;
                }
            }
            return false;
        }
        true
    } else {
        let mut used = vec![false; stored.len()];
        'outer2: for &s in locals {
            let set = arena.get(s);
            for (i, st) in stored.iter().enumerate() {
                if !used[i] && st == set {
                    used[i] = true;
                    continue 'outer2;
                }
            }
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::Vertex;

    fn vset(n: usize, vs: &[u32]) -> VertexSet {
        VertexSet::from_iter(n, vs.iter().map(|&v| Vertex(v)))
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let mut arena = SpecialArena::new();
        let s = arena.push(vset(6, &[1, 2]));
        let mut frag = Fragment::leaf(vec![Edge(0)], vset(6, &[0, 1]));
        frag.attach_under(0, Fragment::special_leaf(s, arena.get(s).clone()));
        frag.attach_under(0, Fragment::leaf(vec![Edge(2)], vset(6, &[4, 5])));

        let portable = PortableFragment::from_fragment(&frag, &arena);
        assert_eq!(portable.num_special_leaves(), 1);
        assert!(portable.approx_bytes() > 0);

        // Instantiate into a *different* arena where the same set has a
        // different id.
        let mut other = SpecialArena::new();
        let _pad = other.push(vset(6, &[5]));
        let s2 = other.push(vset(6, &[1, 2]));
        let (rebuilt, rewrites) = portable.instantiate(&other, &[s2]).unwrap();
        assert_eq!(rewrites, 1);
        assert_eq!(rebuilt.num_nodes(), 3);
        assert_eq!(rebuilt.find_special_leaf(s2), Some(1));
        assert_eq!(rebuilt.nodes[1].chi, vset(6, &[1, 2]));
    }

    #[test]
    fn equal_set_specials_pair_bijectively() {
        // Two specials with identical vertex sets: instantiation must hand
        // out two *distinct* local ids.
        let mut arena = SpecialArena::new();
        let a = arena.push(vset(4, &[0, 1]));
        let b = arena.push(vset(4, &[0, 1]));
        let mut frag = Fragment::leaf(vec![Edge(0)], vset(4, &[0, 1, 2]));
        frag.attach_under(0, Fragment::special_leaf(a, arena.get(a).clone()));
        frag.attach_under(0, Fragment::special_leaf(b, arena.get(b).clone()));
        let portable = PortableFragment::from_fragment(&frag, &arena);

        let mut other = SpecialArena::new();
        let x = other.push(vset(4, &[0, 1]));
        let y = other.push(vset(4, &[0, 1]));
        let (rebuilt, rewrites) = portable.instantiate(&other, &[x, y]).unwrap();
        assert_eq!(rewrites, 2);
        let (lx, ly) = (
            rebuilt.find_special_leaf(x).unwrap(),
            rebuilt.find_special_leaf(y).unwrap(),
        );
        assert_ne!(lx, ly);
    }

    #[test]
    fn multiset_match_handles_duplicates_and_order() {
        let mut arena = SpecialArena::new();
        let a = arena.push(vset(4, &[0, 1]));
        let b = arena.push(vset(4, &[0, 1]));
        let c = arena.push(vset(4, &[2]));
        let stored = vec![vset(4, &[2]), vset(4, &[0, 1]), vset(4, &[0, 1])];
        assert!(specials_multiset_match(&stored, &arena, &[a, b, c]));
        assert!(specials_multiset_match(&stored, &arena, &[c, a, b]));
        assert!(!specials_multiset_match(&stored, &arena, &[a, c, c]));
        assert!(!specials_multiset_match(&stored, &arena, &[a, b]));
    }

    #[test]
    fn mismatched_specials_refuse_to_instantiate() {
        let mut arena = SpecialArena::new();
        let s = arena.push(vset(4, &[0, 1]));
        let frag = Fragment::special_leaf(s, arena.get(s).clone());
        let portable = PortableFragment::from_fragment(&frag, &arena);

        let mut other = SpecialArena::new();
        let wrong = other.push(vset(4, &[2, 3]));
        assert!(portable.instantiate(&other, &[wrong]).is_none());
        assert!(portable.instantiate(&other, &[]).is_none());
    }
}
