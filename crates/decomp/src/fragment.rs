//! HD-fragments: partial decompositions with special-edge leaves.
//!
//! The recursion of `log-k-decomp` builds HDs of *extended subhypergraphs*
//! (Definition 3.3 of the paper). In such a decomposition a special edge
//! `s ∈ Sp` is covered by a dedicated leaf with `λ = {s}` and `χ = s`;
//! stitching (the soundness proof of Appendix A) later *replaces* that leaf
//! by the real node `c` whose `χ(c)` the special edge stood for, and hangs
//! the child fragments below it.

use hypergraph::{Edge, Hypergraph, SpecialArena, SpecialId, VertexSet};

use crate::tree::Decomposition;

/// Label of a fragment node: either a real λ-label or a special-edge leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FragLabel {
    /// `λ(u) ⊆ E(H)`.
    Edges(Vec<Edge>),
    /// `λ(u) = {s}` for a special edge `s` — always a leaf.
    Special(SpecialId),
}

/// One node of a [`Fragment`].
#[derive(Clone, Debug)]
pub struct FragNode {
    /// The λ-label.
    pub label: FragLabel,
    /// The bag `χ(u)`.
    pub chi: VertexSet,
    /// Children (indices into the fragment's node vector).
    pub children: Vec<usize>,
}

/// A rooted HD-fragment.
#[derive(Clone, Debug)]
pub struct Fragment {
    /// Nodes; indices are local to this fragment.
    pub nodes: Vec<FragNode>,
    /// Index of the root node.
    pub root: usize,
}

impl Fragment {
    /// A single real node covering its subproblem.
    pub fn leaf(lambda: Vec<Edge>, chi: VertexSet) -> Self {
        Fragment {
            nodes: vec![FragNode {
                label: FragLabel::Edges(lambda),
                chi,
                children: Vec::new(),
            }],
            root: 0,
        }
    }

    /// A single special-edge leaf with `λ = {s}`, `χ = s`.
    pub fn special_leaf(id: SpecialId, set: VertexSet) -> Self {
        Fragment {
            nodes: vec![FragNode {
                label: FragLabel::Special(id),
                chi: set,
                children: Vec::new(),
            }],
            root: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Width contributed by real nodes (special leaves count as width 1).
    pub fn width(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.label {
                FragLabel::Edges(l) => l.len(),
                FragLabel::Special(_) => 1,
            })
            .max()
            .unwrap_or(0)
    }

    /// Finds the unique leaf carrying special edge `id`, if present.
    pub fn find_special_leaf(&self, id: SpecialId) -> Option<usize> {
        self.nodes
            .iter()
            .position(|n| n.label == FragLabel::Special(id))
    }

    /// Appends all nodes of `other`, returning the new index of its root.
    /// The appended subtree is *not* linked to any existing node.
    pub fn absorb(&mut self, other: Fragment) -> usize {
        let offset = self.nodes.len();
        let other_root = other.root;
        for mut n in other.nodes {
            for c in &mut n.children {
                *c += offset;
            }
            self.nodes.push(n);
        }
        offset + other_root
    }

    /// Attaches `child` as a new subtree under node `parent`.
    pub fn attach_under(&mut self, parent: usize, child: Fragment) {
        let r = self.absorb(child);
        self.nodes[parent].children.push(r);
    }

    /// Replaces the special leaf for `id` with a real node `(lambda, chi)`,
    /// returning the node's index. Panics if the leaf is missing — callers
    /// create the special edge themselves, so absence is a logic error.
    pub fn replace_special_leaf(
        &mut self,
        id: SpecialId,
        lambda: Vec<Edge>,
        chi: VertexSet,
    ) -> usize {
        let idx = self
            .find_special_leaf(id)
            .expect("special leaf must exist in the fragment it was issued for");
        self.nodes[idx].label = FragLabel::Edges(lambda);
        self.nodes[idx].chi = chi;
        idx
    }

    /// Iterates `(index, &node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &FragNode)> {
        self.nodes.iter().enumerate()
    }

    /// Converts a fully-stitched fragment (no remaining special leaves)
    /// into a [`Decomposition`].
    ///
    /// Returns `Err(special)` with the first dangling special id otherwise.
    pub fn into_decomposition(self) -> Result<Decomposition, SpecialId> {
        let mut labels = Vec::with_capacity(self.nodes.len());
        let mut children = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            match &n.label {
                FragLabel::Edges(l) => labels.push((l.clone(), n.chi.clone())),
                FragLabel::Special(s) => return Err(*s),
            }
            children.push(n.children.iter().map(|&c| c as u32).collect::<Vec<u32>>());
        }
        Ok(Decomposition::from_parts(
            labels,
            children,
            self.root as u32,
        ))
    }

    /// Renders the fragment with hypergraph names; special leaves are shown
    /// as `s<id>` (Figure 2b/2c style).
    pub fn render(&self, hg: &Hypergraph, arena: &SpecialArena) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        fn go(
            f: &Fragment,
            hg: &Hypergraph,
            arena: &SpecialArena,
            u: usize,
            depth: usize,
            out: &mut String,
        ) {
            let n = &f.nodes[u];
            let lam = match &n.label {
                FragLabel::Edges(l) => l
                    .iter()
                    .map(|&e| hg.edge_name(e).to_owned())
                    .collect::<Vec<_>>()
                    .join(", "),
                FragLabel::Special(s) => format!("s{}", s.0),
            };
            let chi: Vec<&str> = n.chi.iter().map(|v| hg.vertex_name(v)).collect();
            let _ = writeln!(
                out,
                "{}λ = {{{}}}  χ = {{{}}}",
                "  ".repeat(depth),
                lam,
                chi.join(", ")
            );
            let _ = arena;
            for &c in &n.children {
                go(f, hg, arena, c, depth + 1, out);
            }
        }
        go(self, hg, arena, self.root, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::Vertex;

    fn vset(n: usize, vs: &[u32]) -> VertexSet {
        VertexSet::from_iter(n, vs.iter().map(|&v| Vertex(v)))
    }

    #[test]
    fn stitch_replaces_special_leaf() {
        let mut arena = SpecialArena::new();
        let s = arena.push(vset(6, &[1, 2]));
        // Up-fragment: root --- special leaf for s.
        let mut up = Fragment::leaf(vec![Edge(0)], vset(6, &[0, 1]));
        up.attach_under(0, Fragment::special_leaf(s, arena.get(s).clone()));
        assert_eq!(up.find_special_leaf(s), Some(1));

        // Replace the leaf with the real child node and hang a fragment below.
        let c = up.replace_special_leaf(s, vec![Edge(1), Edge(2)], vset(6, &[1, 2]));
        up.attach_under(c, Fragment::leaf(vec![Edge(3)], vset(6, &[2, 3])));

        assert_eq!(up.num_nodes(), 3);
        assert!(up.find_special_leaf(s).is_none());
        let d = up.into_decomposition().unwrap();
        assert_eq!(d.num_nodes(), 3);
        assert_eq!(d.width(), 2);
        assert_eq!(d.depth(), 3);
    }

    #[test]
    fn absorb_offsets_children() {
        let mut a = Fragment::leaf(vec![Edge(0)], vset(4, &[0]));
        let mut b = Fragment::leaf(vec![Edge(1)], vset(4, &[1]));
        b.attach_under(0, Fragment::leaf(vec![Edge(2)], vset(4, &[2])));
        let r = a.absorb(b);
        assert_eq!(r, 1);
        assert_eq!(a.nodes[1].children, vec![2]);
    }

    #[test]
    fn into_decomposition_rejects_dangling_specials() {
        let mut arena = SpecialArena::new();
        let s = arena.push(vset(3, &[0]));
        let f = Fragment::special_leaf(s, arena.get(s).clone());
        assert_eq!(f.into_decomposition().unwrap_err(), s);
    }

    #[test]
    fn width_counts_special_leaves_as_one() {
        let mut arena = SpecialArena::new();
        let s = arena.push(vset(3, &[0, 1]));
        let mut f = Fragment::leaf(vec![Edge(0), Edge(1), Edge(2)], vset(3, &[0, 1, 2]));
        f.attach_under(0, Fragment::special_leaf(s, arena.get(s).clone()));
        assert_eq!(f.width(), 3);
    }
}
