//! Validators for every decomposition notion used in the paper.
//!
//! Every solver in this workspace returns *certified* output: tests (and
//! debug builds) re-check all conditions here rather than trusting the
//! search. The checks mirror the definitions exactly:
//!
//! * GHD — conditions (1)–(3) of Section 2;
//! * HD — conditions (1)–(4) of Section 2 (adds the *special condition*);
//! * HD of an extended subhypergraph — conditions (1)–(6) of
//!   Definition 3.3.

use hypergraph::{Edge, Hypergraph, SpecialArena, SpecialId, Subproblem, Vertex, VertexSet};

use crate::fragment::{FragLabel, Fragment};
use crate::tree::{Decomposition, NodeId};

/// A violated decomposition condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Condition (1): some hypergraph edge is covered by no bag.
    EdgeNotCovered(Edge),
    /// Condition (2): the nodes containing a vertex are not connected.
    Disconnected(Vertex),
    /// Condition (3): a bag contains a vertex outside `⋃λ(u)`.
    BagNotInLambda { node: usize, vertex: Vertex },
    /// Condition (4), the special condition:
    /// `χ(T_u) ∩ ⋃λ(u) ⊈ χ(u)`.
    SpecialCondition { node: usize, vertex: Vertex },
    /// Width exceeds the requested bound.
    WidthExceeded { width: usize, bound: usize },
    /// Extended condition (2b): a special edge has no dedicated leaf.
    SpecialNotCovered(SpecialId),
    /// Extended condition (5): a special-edge node is not a leaf.
    SpecialNotLeaf { node: usize },
    /// Extended condition (1b): a special leaf's bag differs from its set.
    SpecialBagMismatch { node: usize },
    /// Extended condition (6): `Conn ⊈ χ(root)`.
    ConnNotInRoot(Vertex),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::EdgeNotCovered(e) => write!(f, "edge {e:?} not covered by any bag"),
            Violation::Disconnected(v) => {
                write!(f, "nodes containing vertex {v:?} are not connected")
            }
            Violation::BagNotInLambda { node, vertex } => {
                write!(f, "node {node}: bag vertex {vertex:?} outside ⋃λ")
            }
            Violation::SpecialCondition { node, vertex } => {
                write!(f, "node {node}: special condition violated at {vertex:?}")
            }
            Violation::WidthExceeded { width, bound } => {
                write!(f, "width {width} exceeds bound {bound}")
            }
            Violation::SpecialNotCovered(s) => {
                write!(f, "special edge {s:?} has no dedicated leaf")
            }
            Violation::SpecialNotLeaf { node } => {
                write!(f, "special-edge node {node} is not a leaf")
            }
            Violation::SpecialBagMismatch { node } => {
                write!(f, "special leaf {node} has χ ≠ its special edge")
            }
            Violation::ConnNotInRoot(v) => {
                write!(f, "connector vertex {v:?} missing from root bag")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Checks GHD conditions (1)–(3) of a decomposition of `hg`.
pub fn validate_ghd(hg: &Hypergraph, d: &Decomposition) -> Result<(), Violation> {
    check_cover(hg, d)?;
    check_connectedness(hg, d)?;
    check_bags_in_lambda(hg, d)?;
    Ok(())
}

/// Checks HD conditions (1)–(4) of a decomposition of `hg`.
pub fn validate_hd(hg: &Hypergraph, d: &Decomposition) -> Result<(), Violation> {
    validate_ghd(hg, d)?;
    check_special_condition(hg, d)?;
    Ok(())
}

/// Checks HD conditions plus a width bound.
pub fn validate_hd_width(hg: &Hypergraph, d: &Decomposition, k: usize) -> Result<(), Violation> {
    if d.width() > k {
        return Err(Violation::WidthExceeded {
            width: d.width(),
            bound: k,
        });
    }
    validate_hd(hg, d)
}

fn check_cover(hg: &Hypergraph, d: &Decomposition) -> Result<(), Violation> {
    'edges: for e in hg.edge_ids() {
        let set = hg.edge(e);
        for u in d.preorder() {
            if set.is_subset_of(&d.node(u).chi) {
                continue 'edges;
            }
        }
        return Err(Violation::EdgeNotCovered(e));
    }
    Ok(())
}

/// Connectedness via the forest identity: the occurrences of `v` form a
/// subtree iff `#nodes(v) − #tree-edges-with-both-endpoints-containing(v)`
/// equals 1 (or 0 when `v` occurs nowhere).
fn check_connectedness(hg: &Hypergraph, d: &Decomposition) -> Result<(), Violation> {
    let n = hg.num_vertices();
    let mut node_count = vec![0u32; n];
    let mut edge_count = vec![0u32; n];
    for u in d.preorder() {
        for v in &d.node(u).chi {
            node_count[v.0 as usize] += 1;
        }
        if let Some(p) = d.node(u).parent {
            let shared = d.node(u).chi.intersection(&d.node(p).chi);
            for v in &shared {
                edge_count[v.0 as usize] += 1;
            }
        }
    }
    for v in 0..n as u32 {
        let (nc, ec) = (node_count[v as usize], edge_count[v as usize]);
        if nc > 0 && nc - ec != 1 {
            return Err(Violation::Disconnected(Vertex(v)));
        }
    }
    Ok(())
}

fn check_bags_in_lambda(hg: &Hypergraph, d: &Decomposition) -> Result<(), Violation> {
    for u in d.preorder() {
        let node = d.node(u);
        let cover = hg.union_of_slice(&node.lambda);
        if !node.chi.is_subset_of(&cover) {
            let vertex = node
                .chi
                .difference(&cover)
                .first()
                .expect("non-subset has a witness");
            return Err(Violation::BagNotInLambda {
                node: u.0 as usize,
                vertex,
            });
        }
    }
    Ok(())
}

fn check_special_condition(hg: &Hypergraph, d: &Decomposition) -> Result<(), Violation> {
    let subtree = d.subtree_chi(hg);
    for u in d.preorder() {
        let node = d.node(u);
        let mut reach = subtree[u.0 as usize].clone();
        reach.intersect_with(&hg.union_of_slice(&node.lambda));
        if !reach.is_subset_of(&node.chi) {
            let vertex = reach
                .difference(&node.chi)
                .first()
                .expect("non-subset has a witness");
            return Err(Violation::SpecialCondition {
                node: u.0 as usize,
                vertex,
            });
        }
    }
    Ok(())
}

/// Checks all six conditions of Definition 3.3: `frag` is an HD of the
/// extended subhypergraph `⟨sub.edges, sub.specials, conn⟩` of `hg`.
pub fn validate_extended_hd(
    hg: &Hypergraph,
    arena: &SpecialArena,
    sub: &Subproblem,
    conn: &VertexSet,
    frag: &Fragment,
) -> Result<(), Violation> {
    // Condition (1) + (5): node labels well-formed, special nodes are leaves.
    for (i, n) in frag.iter() {
        match &n.label {
            FragLabel::Edges(l) => {
                let cover = hg.union_of_slice(l);
                if !n.chi.is_subset_of(&cover) {
                    let vertex = n.chi.difference(&cover).first().expect("witness");
                    return Err(Violation::BagNotInLambda { node: i, vertex });
                }
            }
            FragLabel::Special(s) => {
                if !n.children.is_empty() {
                    return Err(Violation::SpecialNotLeaf { node: i });
                }
                if &n.chi != arena.get(*s) {
                    return Err(Violation::SpecialBagMismatch { node: i });
                }
            }
        }
    }

    // Condition (2a): every real edge of the subproblem covered by some bag.
    'edges: for e in &sub.edges {
        let set = hg.edge(e);
        for (_, n) in frag.iter() {
            if set.is_subset_of(&n.chi) {
                continue 'edges;
            }
        }
        return Err(Violation::EdgeNotCovered(e));
    }

    // Condition (2b): every special edge has its dedicated leaf.
    for &s in &sub.specials {
        if frag.find_special_leaf(s).is_none() {
            return Err(Violation::SpecialNotCovered(s));
        }
    }

    // Condition (3): connectedness for all vertices of the subproblem.
    let relevant = sub.vertices(hg, arena);
    let nverts = hg.num_vertices();
    let mut node_count = vec![0u32; nverts];
    let mut edge_count = vec![0u32; nverts];
    let mut stack = vec![frag.root];
    while let Some(u) = stack.pop() {
        for v in &frag.nodes[u].chi {
            node_count[v.0 as usize] += 1;
        }
        for &c in &frag.nodes[u].children {
            let shared = frag.nodes[u].chi.intersection(&frag.nodes[c].chi);
            for v in &shared {
                edge_count[v.0 as usize] += 1;
            }
            stack.push(c);
        }
    }
    for v in &relevant {
        let (nc, ec) = (node_count[v.0 as usize], edge_count[v.0 as usize]);
        if nc > 0 && nc - ec != 1 {
            return Err(Violation::Disconnected(v));
        }
    }

    // Condition (4): special condition over the fragment tree.
    let subtree = fragment_subtree_chi(hg, frag);
    for (i, n) in frag.iter() {
        let lam_union = match &n.label {
            FragLabel::Edges(l) => hg.union_of_slice(l),
            FragLabel::Special(s) => arena.get(*s).clone(),
        };
        let mut reach = subtree[i].clone();
        reach.intersect_with(&lam_union);
        if !reach.is_subset_of(&n.chi) {
            let vertex = reach.difference(&n.chi).first().expect("witness");
            return Err(Violation::SpecialCondition { node: i, vertex });
        }
    }

    // Condition (6): Conn ⊆ χ(root).
    if !conn.is_subset_of(&frag.nodes[frag.root].chi) {
        let v = conn
            .difference(&frag.nodes[frag.root].chi)
            .first()
            .expect("witness");
        return Err(Violation::ConnNotInRoot(v));
    }

    Ok(())
}

fn fragment_subtree_chi(hg: &Hypergraph, frag: &Fragment) -> Vec<VertexSet> {
    let mut acc = vec![hg.vertex_set(); frag.nodes.len()];
    // Postorder via explicit stack.
    let mut order = Vec::with_capacity(frag.nodes.len());
    let mut stack = vec![frag.root];
    while let Some(u) = stack.pop() {
        order.push(u);
        for &c in &frag.nodes[u].children {
            stack.push(c);
        }
    }
    for &u in order.iter().rev() {
        let mut s = frag.nodes[u].chi.clone();
        for &c in &frag.nodes[u].children {
            s.union_with(&acc[c]);
        }
        acc[u] = s;
    }
    acc
}

/// Checks the normal-form properties of Definition 3.5 for a *plain* HD
/// (E' = E(H), Sp = ∅): for every parent/child pair, the child subtree
/// covers exactly one `[χ(p)]`-component, makes progress, and uses the
/// minimal χ. Used by tests on solver output where normal form is expected.
pub fn is_normal_form(hg: &Hypergraph, d: &Decomposition) -> bool {
    use hypergraph::separate;
    let arena = SpecialArena::new();
    let sub = Subproblem::whole(hg);
    for p in d.preorder() {
        let sep = &d.node(p).chi;
        let separation = separate(hg, &arena, &sub, sep);
        for &c in &d.node(p).children {
            // cov(T_c): edges covered for the first time in T_c.
            let cov = first_covered_in_subtree(hg, d, c);
            // Exactly one [χ(p)]-component must equal cov(T_c).
            let matching = separation
                .components
                .iter()
                .filter(|comp| *comp.edges() == cov)
                .count();
            if matching != 1 {
                return false;
            }
            // Progress: some edge of that component is fully inside χ(c).
            let comp = separation
                .components
                .iter()
                .find(|comp| *comp.edges() == cov)
                .expect("counted above");
            if !comp
                .edges()
                .iter()
                .any(|e| hg.edge(e).is_subset_of(&d.node(c).chi))
            {
                return false;
            }
        }
    }
    true
}

/// Edges covered for the first time within the subtree rooted at `c`
/// (no ancestor bag covers them) — `cov(T_c)` of Definition 3.4.
fn first_covered_in_subtree(hg: &Hypergraph, d: &Decomposition, c: NodeId) -> hypergraph::EdgeSet {
    // Ancestor bags of c (strict).
    let mut ancestors = Vec::new();
    let mut cur = d.node(c).parent;
    while let Some(p) = cur {
        ancestors.push(p);
        cur = d.node(p).parent;
    }
    let mut cov = hg.edge_set();
    let mut stack = vec![c];
    let mut subtree_nodes = Vec::new();
    while let Some(u) = stack.pop() {
        subtree_nodes.push(u);
        for &ch in &d.node(u).children {
            stack.push(ch);
        }
    }
    'edges: for e in hg.edge_ids() {
        let set = hg.edge(e);
        for &a in &ancestors {
            if set.is_subset_of(&d.node(a).chi) {
                continue 'edges;
            }
        }
        for &u in &subtree_nodes {
            if set.is_subset_of(&d.node(u).chi) {
                cov.insert(e);
                continue 'edges;
            }
        }
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vset(n: usize, vs: &[u32]) -> VertexSet {
        VertexSet::from_iter(n, vs.iter().map(|&v| Vertex(v)))
    }

    /// The width-2 HD of the 10-cycle from Figure 2a of the paper.
    fn cycle10() -> Hypergraph {
        let edges: Vec<Vec<u32>> = (0..10).map(|i| vec![i, (i + 1) % 10]).collect();
        Hypergraph::from_edge_lists(&edges)
    }

    fn figure2a(hg: &Hypergraph) -> Decomposition {
        // u1..u8 top-down; node ui has λ = {R1, Ri+1}, χ = {x1, xi+1, xi+2}
        // with paper vertices xj ↔ our vertex j-1 and Rj ↔ edge j-1.
        let n = hg.num_vertices();
        let mut d = Decomposition::singleton(vec![Edge(0), Edge(1)], vset(n, &[0, 1, 2]));
        let mut parent = d.root();
        for i in 2..=8u32 {
            parent = d.add_child(parent, vec![Edge(0), Edge(i)], vset(n, &[0, i, i + 1]));
        }
        d
    }

    #[test]
    fn figure2a_is_a_valid_width2_hd() {
        let hg = cycle10();
        let d = figure2a(&hg);
        assert_eq!(d.width(), 2);
        validate_hd_width(&hg, &d, 2).unwrap();
    }

    #[test]
    fn detects_uncovered_edge() {
        let hg = cycle10();
        let mut d = figure2a(&hg);
        // Shrink a bag so edge e9 = {9, 0} loses its cover.
        let last = NodeId((d.num_nodes() - 1) as u32);
        let n = hg.num_vertices();
        d = {
            let mut labels = Vec::new();
            let mut children = Vec::new();
            for u in 0..d.num_nodes() as u32 {
                let node = d.node(NodeId(u));
                let chi = if NodeId(u) == last {
                    vset(n, &[0, 8])
                } else {
                    node.chi.clone()
                };
                labels.push((node.lambda.clone(), chi));
                children.push(node.children.iter().map(|c| c.0).collect());
            }
            Decomposition::from_parts(labels, children, 0)
        };
        assert!(matches!(
            validate_hd(&hg, &d),
            Err(Violation::EdgeNotCovered(_))
        ));
    }

    #[test]
    fn detects_disconnected_vertex() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![0, 2]]);
        // Chain where vertex 0 appears at both ends but not in the middle.
        let d = Decomposition::from_parts(
            vec![
                (vec![Edge(0)], vset(3, &[0, 1])),
                (vec![Edge(1)], vset(3, &[1, 2])),
                (vec![Edge(2)], vset(3, &[0, 2])),
            ],
            vec![vec![1], vec![2], vec![]],
            0,
        );
        assert_eq!(
            validate_hd(&hg, &d),
            Err(Violation::Disconnected(Vertex(0)))
        );
    }

    #[test]
    fn detects_bag_outside_lambda() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![2, 3]]);
        let d = Decomposition::from_parts(
            vec![
                (vec![Edge(0)], vset(4, &[0, 1, 2])),
                (vec![Edge(1)], vset(4, &[2, 3])),
            ],
            vec![vec![1], vec![]],
            0,
        );
        assert!(matches!(
            validate_ghd(&hg, &d),
            Err(Violation::BagNotInLambda { .. })
        ));
    }

    #[test]
    fn detects_special_condition_violation() {
        // Vertex 0 occurs in ⋃λ(node 1) via e0 but not in χ(node 1), yet
        // reappears in the subtree below: χ(T_1) ∩ ⋃λ(1) ⊈ χ(1).
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 0]]);
        let n = 3;
        let d = Decomposition::from_parts(
            vec![
                (vec![Edge(0)], vset(n, &[0, 1])),
                (vec![Edge(1), Edge(0)], vset(n, &[1, 2])),
                (vec![Edge(2)], vset(n, &[2, 0])),
            ],
            vec![vec![1], vec![2], vec![]],
            0,
        );
        // χ(T_1) = {0,1,2}; ⋃λ(1) = {0,1,2}; intersection ⊈ {1,2}.
        assert!(matches!(
            check_special_condition(&hg, &d),
            Err(Violation::SpecialCondition { node: 1, .. })
        ));
    }

    #[test]
    fn extended_validator_accepts_fragment_with_special_leaf() {
        // Figure 2c: fragment D1.2 for E' = {R3,R4,R5}, Sp = {s1}, Conn = {x1,x3}.
        let hg = cycle10();
        let n = hg.num_vertices();
        let mut arena = SpecialArena::new();
        let s1 = arena.push(vset(n, &[0, 5, 6])); // {x1, x6, x7}
        let mut sub = Subproblem::empty(&hg);
        sub.edges.insert(Edge(2)); // R3
        sub.edges.insert(Edge(3)); // R4
        sub.edges.insert(Edge(4)); // R5
        sub.specials.push(s1);
        let conn = vset(n, &[0, 2]); // {x1, x3}

        let mut frag = Fragment::leaf(vec![Edge(0), Edge(2)], vset(n, &[0, 2, 3]));
        let c1 = frag.absorb(Fragment::leaf(vec![Edge(0), Edge(3)], vset(n, &[0, 3, 4])));
        frag.nodes[0].children.push(c1);
        let c2 = frag.absorb(Fragment::leaf(vec![Edge(0), Edge(4)], vset(n, &[0, 4, 5])));
        frag.nodes[c1].children.push(c2);
        let c3 = frag.absorb(Fragment::special_leaf(s1, arena.get(s1).clone()));
        frag.nodes[c2].children.push(c3);

        validate_extended_hd(&hg, &arena, &sub, &conn, &frag).unwrap();
    }

    #[test]
    fn extended_validator_rejects_missing_special_leaf() {
        let hg = cycle10();
        let n = hg.num_vertices();
        let mut arena = SpecialArena::new();
        let s1 = arena.push(vset(n, &[0, 5, 6]));
        let mut sub = Subproblem::empty(&hg);
        sub.edges.insert(Edge(2));
        sub.specials.push(s1);
        let frag = Fragment::leaf(vec![Edge(0), Edge(2)], vset(n, &[0, 2, 3]));
        assert_eq!(
            validate_extended_hd(&hg, &arena, &sub, &hg.vertex_set(), &frag),
            Err(Violation::SpecialNotCovered(s1))
        );
    }

    #[test]
    fn extended_validator_checks_conn_in_root() {
        let hg = cycle10();
        let n = hg.num_vertices();
        let arena = SpecialArena::new();
        let mut sub = Subproblem::empty(&hg);
        sub.edges.insert(Edge(2));
        let conn = vset(n, &[7]);
        let frag = Fragment::leaf(vec![Edge(2)], vset(n, &[2, 3]));
        assert_eq!(
            validate_extended_hd(&hg, &arena, &sub, &conn, &frag),
            Err(Violation::ConnNotInRoot(Vertex(7)))
        );
    }

    #[test]
    fn figure2a_is_normal_form() {
        let hg = cycle10();
        let d = figure2a(&hg);
        assert!(is_normal_form(&hg, &d));
    }
}
