//! Algorithm portfolio: every engine in the workspace racing the *same*
//! `hw(H) ≤ k` question, first definitive verdict wins.
//!
//! BalancedGo ships exactly this shape — a solver registry racing its
//! engines with first-verdict-wins cancellation — and the det-k baseline
//! is frequently the fastest engine on small-width instances, so racing
//! it against `log-k-decomp` is a wall-clock win, not redundancy. Each
//! racer runs on its own thread under its own [`Control::child`] of the
//! race control; the moment one produces a **definitive** verdict the
//! others are cancelled through the child chain (the same kill mechanism
//! the engines' sibling parallelism uses), within the bounded latency
//! the interruption suite pins.
//!
//! # Verdict authority
//!
//! The race decides *hypertree width*: `hw(H) ≤ k`. The engines differ
//! in what their raw answers prove, and the coordinator only accepts
//! what is actually sound:
//!
//! | engine            | positive answer            | negative answer |
//! |-------------------|----------------------------|-----------------|
//! | `logk` (seq/par/hybrid), `detk` | definitive (HD witness) | definitive |
//! | `ghd`             | definitive *iff* the witness validates as an HD of width ≤ k; otherwise advisory | **advisory** (the balanced-separator search is one-sided: a miss proves nothing) |
//! | `htdsat`          | definitive *iff* the GHD witness validates as an HD | definitive (`ghw > k` ⇒ `hw > k`, since every HD is a GHD) |
//!
//! Every positive witness — whatever the engine — is re-validated with
//! [`decomp::validate_hd_width`] before it is allowed to win; a witness
//! that fails (a GHD violating the special condition) demotes the answer
//! to advisory rather than corrupting the verdict.
//!
//! # Join precedence
//!
//! Rejection dominates interruption, mirroring the engines'
//! `solve_siblings_parallel`: a definitive verdict (either polarity)
//! arriving *after* other racers timed out still wins — `Err` is
//! returned only when **no** racer reached a definitive verdict. A
//! panicking racer is contained on its own thread (fault site
//! `portfolio/engine`); the surviving racers' verdict stands.

use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;

use decomp::{validate_hd_width, Control, Decomposition, Interrupted};
use hypergraph::Hypergraph;
use logk::{LogK, RaceStats, SharedTables};

/// One engine in the portfolio.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Sequential Algorithm 2 (`logk`).
    LogkSeq,
    /// Parallel Algorithm 2 on the shared pool.
    LogkPar,
    /// Parallel `logk` with det-k handoff below the size threshold.
    LogkHybrid,
    /// det-k-decomp (Gottlob–Leone–Scarcello).
    Detk,
    /// Balanced-separator GHD search (one-sided).
    Ghd,
    /// SAT encoding of `ghw ≤ k` (HtdLEO substitute).
    HtdSat,
}

impl EngineKind {
    /// Every engine, in wire-tag order (see [`Self::index`]).
    pub const ALL: [EngineKind; 6] = [
        EngineKind::LogkSeq,
        EngineKind::LogkPar,
        EngineKind::LogkHybrid,
        EngineKind::Detk,
        EngineKind::Ghd,
        EngineKind::HtdSat,
    ];

    /// Number of engines — [`Self::ALL`]'s length, for sizing per-engine
    /// counter arrays (`races_won_by` and friends).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable short name (used in stats, reports and the wire protocol).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::LogkSeq => "logk-seq",
            EngineKind::LogkPar => "logk-par",
            EngineKind::LogkHybrid => "logk-hybrid",
            EngineKind::Detk => "detk",
            EngineKind::Ghd => "ghd",
            EngineKind::HtdSat => "htdsat",
        }
    }

    /// Stable index into [`Self::ALL`] (doubles as the wire tag).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&e| e == self).expect("in ALL")
    }

    /// Inverse of [`Self::index`].
    pub fn from_index(i: usize) -> Option<EngineKind> {
        Self::ALL.get(i).copied()
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of one portfolio race.
#[derive(Clone, Debug)]
pub struct RaceOutcome {
    /// The race's answer to `hw(H) ≤ k`: `Ok(Some)` with a validated HD
    /// witness, `Ok(None)` for a definitive refutation, `Err` when no
    /// racer reached a definitive verdict before the control fired.
    pub verdict: Result<Option<Decomposition>, Interrupted>,
    /// The engine whose verdict won (`None` on `Err`).
    pub winner: Option<EngineKind>,
    /// Racer/cancellation accounting (`probes` = racers launched).
    pub stats: RaceStats,
}

/// A configured engine registry. Build with [`Portfolio::full`] (every
/// engine the deployment can run) or [`Portfolio::new`] (an explicit
/// selection), then [`race`](Self::race) instances against it.
#[derive(Clone, Debug)]
pub struct Portfolio {
    engines: Vec<EngineKind>,
    threads: usize,
    clause_budget: Option<u64>,
    tables: Option<SharedTables>,
}

impl Portfolio {
    /// A portfolio over an explicit engine selection (deduplicated,
    /// order preserved). An empty selection falls back to
    /// [`EngineKind::LogkSeq`] so a race always has a complete engine.
    pub fn new(engines: Vec<EngineKind>) -> Self {
        let mut seen = HashSet::new();
        let mut engines: Vec<_> = engines.into_iter().filter(|e| seen.insert(*e)).collect();
        if engines.is_empty() {
            engines.push(EngineKind::LogkSeq);
        }
        Portfolio {
            engines,
            threads: 1,
            clause_budget: None,
            tables: None,
        }
    }

    /// The full registry for a deployment with `threads` pool workers:
    /// `logk` sequential, `detk`, `ghd` and `htdsat` always; the
    /// parallel and hybrid `logk` variants when `threads >= 2` (on one
    /// worker they are the sequential engine plus scheduling tax).
    pub fn full(threads: usize) -> Self {
        let mut engines = vec![EngineKind::LogkSeq];
        if threads >= 2 {
            engines.push(EngineKind::LogkPar);
            engines.push(EngineKind::LogkHybrid);
        }
        engines.extend([EngineKind::Detk, EngineKind::Ghd, EngineKind::HtdSat]);
        Portfolio {
            threads: threads.max(1),
            ..Self::new(engines)
        }
    }

    /// The engines that will race, in launch order.
    pub fn engines(&self) -> &[EngineKind] {
        &self.engines
    }

    /// Attaches shared memo tables for the `logk`-family racers (the
    /// striped tables are concurrency-safe, so racers warm each other
    /// mid-race and across races). The pair must apply to the raced
    /// instance and width — `LogK` enforces this and skips it otherwise.
    pub fn with_shared_tables(mut self, tables: SharedTables) -> Self {
        self.tables = Some(tables);
        self
    }

    /// Clause budget for the `htdsat` racer (default
    /// [`htdsat::DEFAULT_CLAUSE_BUDGET`]).
    pub fn with_clause_budget(mut self, budget: u64) -> Self {
        self.clause_budget = Some(budget);
        self
    }

    /// Races every configured engine on `hg` at width `k` under `ctrl`.
    /// See the [module docs](self) for verdict authority and join
    /// precedence. Never panics on a panicking racer — the panic is
    /// contained on the racer's thread and the race continues.
    pub fn race(&self, hg: &Hypergraph, k: usize, ctrl: &Arc<Control>) -> RaceOutcome {
        let race_root = ctrl.child();
        let _guard = CancelOnDrop(&race_root);
        let mut stats = RaceStats::default();
        let mut verdict: Option<(EngineKind, Option<Decomposition>)> = None;
        let mut interrupted: Option<Interrupted> = None;

        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, EngineVerdict)>();
            let mut killed: HashSet<usize> = HashSet::new();
            let mut children: Vec<Arc<Control>> = Vec::with_capacity(self.engines.len());
            for (i, &kind) in self.engines.iter().enumerate() {
                decomp::faults::hit_ctrl("portfolio/spawn", ctrl);
                let child = race_root.child();
                let tx = tx.clone();
                let engine_ctrl = Arc::clone(&child);
                children.push(child);
                stats.probes += 1;
                let runner = self.clone();
                scope.spawn(move || {
                    let msg = match panic::catch_unwind(AssertUnwindSafe(|| {
                        decomp::faults::hit_ctrl("portfolio/engine", &engine_ctrl);
                        runner.run_engine(kind, hg, k, &engine_ctrl)
                    })) {
                        Ok(v) => v,
                        Err(_) => EngineVerdict::Panicked,
                    };
                    let _ = tx.send((i, msg));
                });
            }
            drop(tx);
            for _ in 0..self.engines.len() {
                // A racer that died without reporting (it cannot under
                // the containment above, but defence in depth) reads as
                // a closed channel once the others have reported — the
                // race ends on the verdicts it has.
                let Ok((i, msg)) = rx.recv() else { break };
                decomp::faults::hit_ctrl("portfolio/join", ctrl);
                let was_killed = killed.contains(&i);
                match msg {
                    EngineVerdict::Definitive(answer) => {
                        if verdict.is_none() {
                            verdict = Some((self.engines[i], answer));
                            // First definitive verdict: the rest of the
                            // field is redundant — kill it now.
                            for (j, child) in children.iter().enumerate() {
                                if j != i && killed.insert(j) {
                                    child.cancel();
                                }
                            }
                        } else {
                            stats.speculative_wasted += 1;
                        }
                    }
                    EngineVerdict::Advisory => stats.speculative_wasted += 1,
                    EngineVerdict::Interrupted(e) => {
                        if was_killed {
                            stats.race_cancels += 1;
                        } else {
                            interrupted = Some(e);
                        }
                    }
                    EngineVerdict::Panicked => {}
                }
            }
        });

        match verdict {
            Some((winner, answer)) => RaceOutcome {
                verdict: Ok(answer),
                winner: Some(winner),
                stats,
            },
            None => RaceOutcome {
                // No racer was definitive. Normally that means the
                // control fired; the all-advisory corner (every racer
                // demoted) reports as a cancellation for want of a
                // verdict.
                verdict: Err(interrupted.unwrap_or(Interrupted::Cancelled)),
                winner: None,
                stats,
            },
        }
    }

    /// Runs one engine to its (classified) verdict. See the module docs
    /// for which raw answers are definitive.
    fn run_engine(
        &self,
        kind: EngineKind,
        hg: &Hypergraph,
        k: usize,
        ctrl: &Arc<Control>,
    ) -> EngineVerdict {
        let logk_with = |mut solver: LogK| {
            if let Some(tables) = &self.tables {
                solver = solver.with_shared_tables(tables.clone());
            }
            classify_exact(solver.decompose(hg, k, ctrl), hg, k)
        };
        match kind {
            EngineKind::LogkSeq => logk_with(LogK::sequential()),
            EngineKind::LogkPar => logk_with(LogK::parallel(self.threads)),
            EngineKind::LogkHybrid => logk_with(LogK::hybrid(self.threads)),
            EngineKind::Detk => classify_exact(detk::decompose_detk(hg, k, ctrl), hg, k),
            EngineKind::Ghd => match ghd::decompose_ghd(hg, k, ctrl) {
                // One-sided search: only an HD-validating witness is
                // definitive, and a miss proves nothing at all.
                Ok(Some(d)) if validate_hd_width(hg, &d, k).is_ok() => {
                    EngineVerdict::Definitive(Some(d))
                }
                Ok(_) => EngineVerdict::Advisory,
                Err(e) => EngineVerdict::Interrupted(e),
            },
            EngineKind::HtdSat => {
                let solver = match self.clause_budget {
                    Some(b) => htdsat::HtdSat::new().with_clause_budget(b),
                    None => htdsat::HtdSat::new(),
                };
                match solver.decide(hg, k, ctrl) {
                    Ok(Some(d)) if validate_hd_width(hg, &d, k).is_ok() => {
                        EngineVerdict::Definitive(Some(d))
                    }
                    // A GHD-only witness proves ghw ≤ k, not hw ≤ k.
                    Ok(Some(_)) => EngineVerdict::Advisory,
                    // Unsat: ghw > k, hence hw > k — definitive.
                    Ok(None) => EngineVerdict::Definitive(None),
                    Err(htdsat::HtdSatError::Interrupted(e)) => EngineVerdict::Interrupted(e),
                    Err(htdsat::HtdSatError::EncodingTooLarge { .. }) => EngineVerdict::Advisory,
                }
            }
        }
    }
}

/// Classifies an exact-hw engine's raw answer (`logk`, `detk`): both
/// polarities are definitive; positive witnesses are still re-validated
/// in depth as defence against an engine bug corrupting a race verdict.
fn classify_exact(
    res: Result<Option<Decomposition>, Interrupted>,
    hg: &Hypergraph,
    k: usize,
) -> EngineVerdict {
    match res {
        Ok(Some(d)) => {
            debug_assert!(validate_hd_width(hg, &d, k).is_ok());
            if validate_hd_width(hg, &d, k).is_ok() {
                EngineVerdict::Definitive(Some(d))
            } else {
                EngineVerdict::Advisory
            }
        }
        Ok(None) => EngineVerdict::Definitive(None),
        Err(e) => EngineVerdict::Interrupted(e),
    }
}

/// What one racer reported.
enum EngineVerdict {
    /// A sound answer to `hw(H) ≤ k` (witness already HD-validated).
    Definitive(Option<Decomposition>),
    /// The engine finished but proved nothing about hw (one-sided miss,
    /// GHD-only witness, encoding memout).
    Advisory,
    /// The engine's control fired (its own, the race cancelling it, or
    /// the overall deadline).
    Interrupted(Interrupted),
    /// The engine panicked; contained on its thread.
    Panicked,
}

/// Cancels the race's intermediate control when dropped, so no racer
/// outlives an unwinding coordinator.
struct CancelOnDrop<'a>(&'a Arc<Control>);

impl Drop for CancelOnDrop<'_> {
    fn drop(&mut self) {
        self.0.cancel();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::families;

    #[test]
    fn race_decides_positive_with_witness() {
        let hg = families::cycle(12);
        let ctrl = Arc::new(Control::unlimited());
        let out = Portfolio::full(1).race(&hg, 2, &ctrl);
        let witness = out.verdict.expect("definitive").expect("cycle has hw 2");
        assert!(validate_hd_width(&hg, &witness, 2).is_ok());
        assert!(out.winner.is_some());
        assert_eq!(out.stats.probes, 4);
    }

    #[test]
    fn race_decides_negative() {
        let hg = families::cycle(12);
        let ctrl = Arc::new(Control::unlimited());
        let out = Portfolio::full(1).race(&hg, 1, &ctrl);
        assert!(matches!(out.verdict, Ok(None)), "cycles have hw 2");
        assert!(out.winner.is_some());
    }

    #[test]
    fn cancelled_race_reports_interruption() {
        let hg = families::chorded_cycle(96, 48, 3);
        let ctrl = Arc::new(Control::unlimited());
        ctrl.cancel();
        let out = Portfolio::full(1).race(&hg, 3, &ctrl);
        assert!(matches!(out.verdict, Err(Interrupted::Cancelled)));
        assert!(out.winner.is_none());
    }

    #[test]
    fn engine_kind_indices_round_trip() {
        for e in EngineKind::ALL {
            assert_eq!(EngineKind::from_index(e.index()), Some(e));
        }
        assert_eq!(EngineKind::from_index(EngineKind::ALL.len()), None);
    }

    #[test]
    fn empty_selection_falls_back_to_a_complete_engine() {
        let p = Portfolio::new(vec![]);
        assert_eq!(p.engines(), &[EngineKind::LogkSeq]);
    }
}
