//! Shared, lock-striped memo table for `det-k-decomp`.
//!
//! The hybrid strategy (Appendix D.2 of the log-k-decomp paper) hands
//! simple subproblems to `det-k-decomp` from *many* places: every rayon
//! branch and every recursion level below the hybrid threshold. Each
//! handoff used to build a fresh, private memo table, so the extensive
//! `(component, connector)` memoisation the algorithm's practicality rests
//! on (Gottlob & Samer) restarted from zero each time. This module makes
//! the table shareable:
//!
//! * **Resolved keys.** The old key included `Vec<SpecialId>` — ids local
//!   to one branch's [`SpecialArena`]. Keys here resolve specials to their
//!   vertex sets (stored sorted, matched as a multiset), so the same
//!   subproblem met under different arenas is one entry.
//! * **Portable values.** Positive results are stored as
//!   [`PortableFragment`]s and re-interned against the prober's arena on a
//!   hit — the same id-rewrite pass the engine's unified subproblem cache
//!   uses.
//!
//! The striping, borrowed-key probing and under-lock dedup are the shared
//! [`decomp::striped`] core — the same machinery behind the engine's
//! subproblem cache — instantiated here with `Option<PortableFragment>`
//! values (`None` = exhaustively refuted) and the [`EntryCap`] retention
//! policy, which mirrors the paper's memory-limit discipline: beyond the
//! cap the table keeps serving hits but stops memoising.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use decomp::{EntryCap, Fragment, InsertOutcome, PortableFragment, StripedTable};
use hypergraph::{SpecialArena, Subproblem, VertexSet};

/// Result of a borrowed-key memo probe.
pub enum MemoProbe {
    /// Memoised verdict: `None` (refuted) or the fragment re-interned
    /// against the prober's arena.
    Hit(Option<Fragment>),
    /// Unknown; carries the key hash for the follow-up insert.
    Miss(u64),
}

/// Point-in-time counters of a [`SharedMemo`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoSnapshot {
    /// Width bound the table's verdicts are relative to.
    pub k: usize,
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Configured entry cap.
    pub cap: usize,
}

/// The shared `det-k-decomp` memo table. One instance serves every hybrid
/// handoff and rayon branch of a solve.
///
/// `None` values mean "exhaustively refuted"; `Some` values are
/// arena-independent witnesses, `Arc`-wrapped so a hit can leave the
/// shard lock before the re-interning clone pass runs.
pub struct SharedMemo {
    table: StripedTable<Option<Arc<PortableFragment>>, EntryCap>,
    /// Width bound the memoised verdicts are relative to. A verdict for
    /// `k = 2` is meaningless at `k = 3` (and vice versa), so sharers are
    /// checked against this at attach time.
    k: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl SharedMemo {
    /// Creates an empty table for width bound `k`, capped at `cap`
    /// entries. Every engine sharing the table must search at this `k` —
    /// [`super::DetKDecomp::with_shared_memo`] enforces it.
    pub fn new(k: usize, cap: usize) -> Self {
        SharedMemo {
            table: StripedTable::new(EntryCap::new(cap)),
            k,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// The width bound this table's verdicts are relative to.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured entry cap.
    pub fn cap(&self) -> usize {
        self.table.policy().cap()
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Looks up `(sub, conn)` without building an owned key. A positive
    /// hit clones only an `Arc` under the shard lock; the re-interning
    /// pass over the fragment runs after the lock is released, so
    /// concurrent handoffs don't convoy behind fragment clones.
    pub fn probe(&self, arena: &SpecialArena, sub: &Subproblem, conn: &VertexSet) -> MemoProbe {
        let (hash, hit) = self
            .table
            .probe_with(arena, sub, conn, None, |result| result.clone());
        match hit {
            Some(None) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return MemoProbe::Hit(None);
            }
            Some(Some(pf)) => {
                if let Some((frag, _rewrites)) = pf.instantiate(arena, &sub.specials) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return MemoProbe::Hit(Some(frag));
                }
                debug_assert!(false, "matched memo entry failed to instantiate");
            }
            None => {}
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        MemoProbe::Miss(hash)
    }

    /// Memoises the verdict for `(sub, conn)` under the cap discipline.
    pub fn insert(
        &self,
        hash: u64,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        result: &Option<Fragment>,
    ) {
        // Early-out before the (portable-conversion) value build: past
        // the cap nothing will be admitted anyway.
        if self.len() >= self.cap() {
            return;
        }
        let value = result
            .as_ref()
            .map(|f| Arc::new(PortableFragment::from_fragment(f, arena)));
        if self.table.insert(hash, arena, sub, conn, None, value, 0) == InsertOutcome::Inserted {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time snapshot of the counters.
    pub fn snapshot(&self) -> MemoSnapshot {
        MemoSnapshot {
            k: self.k,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len(),
            cap: self.cap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{Edge, Hypergraph, Vertex};

    #[test]
    fn memo_resolves_specials_across_arenas() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let n = hg.num_vertices();
        let memo = SharedMemo::new(2, 1 << 10);

        let mut a1 = SpecialArena::new();
        let s1 = a1.push(VertexSet::from_iter(n, [Vertex(0), Vertex(3)]));
        let mut sub1 = Subproblem::empty(&hg);
        sub1.edges.insert(Edge(1));
        sub1.specials.push(s1);
        let conn = hg.vertex_set();

        let hash = match memo.probe(&a1, &sub1, &conn) {
            MemoProbe::Miss(h) => h,
            _ => panic!("fresh memo must miss"),
        };
        let mut frag = Fragment::leaf(vec![Edge(1)], hg.union_of_slice(&[Edge(1)]));
        frag.attach_under(0, Fragment::special_leaf(s1, a1.get(s1).clone()));
        memo.insert(hash, &a1, &sub1, &conn, &Some(frag));

        // A different arena with a different id for the same set hits.
        let mut a2 = SpecialArena::new();
        let _pad = a2.push(VertexSet::from_iter(n, [Vertex(2)]));
        let s2 = a2.push(VertexSet::from_iter(n, [Vertex(0), Vertex(3)]));
        let mut sub2 = Subproblem::empty(&hg);
        sub2.edges.insert(Edge(1));
        sub2.specials.push(s2);
        match memo.probe(&a2, &sub2, &conn) {
            MemoProbe::Hit(Some(f)) => assert_eq!(f.find_special_leaf(s2), Some(1)),
            _ => panic!("resolved key must hit across arenas"),
        }
        assert_eq!(memo.snapshot().hits, 1);
    }

    #[test]
    fn cap_freezes_inserts() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let memo = SharedMemo::new(2, 1);
        for e in 0..3u32 {
            let mut sub = Subproblem::empty(&hg);
            sub.edges.insert(Edge(e));
            let hash = match memo.probe(&arena, &sub, &conn) {
                MemoProbe::Miss(h) => h,
                _ => panic!("must miss"),
            };
            memo.insert(hash, &arena, &sub, &conn, &None);
        }
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.snapshot().inserts, 1);
    }

    #[test]
    fn negative_verdicts_hit() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2]]);
        let arena = SpecialArena::new();
        let conn = hg.vertex_set();
        let memo = SharedMemo::new(2, 16);
        let sub = Subproblem::whole(&hg);
        let hash = match memo.probe(&arena, &sub, &conn) {
            MemoProbe::Miss(h) => h,
            _ => panic!("must miss"),
        };
        memo.insert(hash, &arena, &sub, &conn, &None);
        assert!(matches!(
            memo.probe(&arena, &sub, &conn),
            MemoProbe::Hit(None)
        ));
    }
}
