//! `det-k-decomp` — the backtracking HD algorithm of Gottlob & Samer
//! (ACM JEA 2008), re-implemented from scratch and *extended to handle
//! extended subhypergraphs* (special edges), exactly as the paper's hybrid
//! strategy requires (Section 5.2: "our own implementation of det-k-decomp,
//! extended to handle extended subhypergraphs correctly").
//!
//! The algorithm constructs an HD strictly top-down: for the current
//! component it guesses a λ-label, derives the (minimal) bag
//! `χ(u) = ⋃λ(u) ∩ V(C)`, splits `C` into `[χ(u)]`-components and recurses.
//! Positive and negative results are memoised per `(component, connector)`
//! — the extensive caching that makes the algorithm strong on small
//! instances but, as the paper argues, inherently hard to parallelise.
//!
//! The memo table lives in [`memo::SharedMemo`]: keys resolve special
//! edges to vertex sets and positive results are stored arena-independent
//! ([`decomp::PortableFragment`]), so one table can be shared across *all*
//! hybrid handoffs and rayon branches of a `log-k-decomp` solve
//! ([`DetKDecomp::with_shared_memo`]) instead of each handoff rebuilding
//! its memoisation from zero.
//!
//! The search itself runs on per-level scratch workspaces
//! ([`DetkScratch`]), mirroring the main engine's `LevelScratch`
//! discipline: candidate evaluation (`⋃λ`, `χ(u)`, the `[χ(u)]`-split,
//! per-child connectors) allocates nothing once a level is warm, and the
//! stack can be moved between engine instances
//! ([`DetKDecomp::with_scratch`] / [`DetKDecomp::take_scratch`]) so the
//! hybrid driver's handoffs reuse warm buffers instead of paying cold
//! allocations per call.

use std::cell::OnceCell;
use std::ops::ControlFlow;

use decomp::{Control, Decomposition, Fragment, Interrupted};
use hypergraph::subsets::for_each_subset_in;
use hypergraph::{
    separate_into, Edge, Hypergraph, LevelStack, Scratch, Separation, SpecialArena, Subproblem,
    VertexSet,
};

pub mod memo;

pub use memo::{MemoProbe, MemoSnapshot, SharedMemo};

/// Result of a whole-hypergraph solve.
pub type SolveResult = Result<Option<Decomposition>, Interrupted>;

/// Per-recursion-level scratch buffers of the det-k search: everything
/// `try_label` touches per candidate lives here, so candidate evaluation
/// performs no heap allocation once a level is warm — the same discipline
/// as the main engine's `LevelScratch`.
#[derive(Default)]
struct DetkLevel {
    /// BFS buffers for `separate_into`.
    bfs: Scratch,
    /// `[χ(u)]`-components of the current subproblem.
    seps: Separation,
    /// `V(H')` of the current subproblem.
    vsub: VertexSet,
    /// `⋃λ` of the current candidate.
    union: VertexSet,
    /// `χ(u) = ⋃λ ∩ V(H')`.
    chi: VertexSet,
    /// Connector handed to child recursions.
    conn_c: VertexSet,
    /// λ candidate edges.
    cands: Vec<Edge>,
    /// Enumeration buffer for the subset walk.
    lam_buf: Vec<Edge>,
    /// Child fragments of the current candidate, drained into the
    /// returned fragment on acceptance.
    children: Vec<Fragment>,
    /// Growth events of the non-BFS buffers (the BFS scratch meters its
    /// own).
    grow: u64,
}

impl DetkLevel {
    fn grow_events(&self) -> u64 {
        self.bfs.grow_events + self.grow
    }
}

/// Warm per-level scratch stack for [`DetKDecomp`] — an instantiation of
/// the generic [`LevelStack`] take/put discipline — reusable across
/// engine instances: the hybrid driver of `log-k-decomp` pools these so
/// its (very frequent) det-k handoffs stop allocating fresh buffers per
/// call — move one in with [`DetKDecomp::with_scratch`] and recover it
/// with [`DetKDecomp::take_scratch`] when the engine retires.
#[derive(Default)]
pub struct DetkScratch {
    levels: LevelStack<DetkLevel>,
}

impl DetkScratch {
    /// Creates an empty (cold) scratch stack.
    pub fn new() -> Self {
        Self::default()
    }

    fn take(&mut self, depth: usize) -> DetkLevel {
        self.levels.take_or_default(depth)
    }

    fn put(&mut self, depth: usize, lvl: DetkLevel) {
        self.levels.put(depth, lvl);
    }

    /// Total buffer growth events across all levels — constant once the
    /// stack is warm (the steady-state zero-allocation meter).
    pub fn grow_events(&self) -> u64 {
        self.levels.warm().map(DetkLevel::grow_events).sum()
    }
}

/// The engine's memo table: owned by this engine, or borrowed from the
/// hybrid driver that shares one table across every handoff. The owned
/// table is built on first use, so engines that are immediately handed a
/// shared table (one per hybrid handoff!) never pay for shard
/// construction they will throw away.
enum MemoHandle<'a> {
    Owned {
        cell: OnceCell<Box<SharedMemo>>,
        k: usize,
        cap: usize,
    },
    Shared(&'a SharedMemo),
}

impl MemoHandle<'_> {
    fn get(&self) -> &SharedMemo {
        match self {
            MemoHandle::Owned { cell, k, cap } => {
                cell.get_or_init(|| Box::new(SharedMemo::new(*k, *cap)))
            }
            MemoHandle::Shared(m) => m,
        }
    }
}

/// Reusable `det-k-decomp` engine over a [`SharedMemo`].
///
/// The engine borrows the hypergraph and control; the special-edge arena is
/// passed per call so that `log-k-decomp`'s hybrid driver can hand over
/// subproblems referencing its own arena.
pub struct DetKDecomp<'h> {
    hg: &'h Hypergraph,
    k: usize,
    ctrl: &'h Control,
    memo: MemoHandle<'h>,
    /// Per-level scratch buffers; either fresh or moved in warm by the
    /// hybrid driver ([`Self::with_scratch`]).
    scratch: DetkScratch,
    /// Current recursion depth (diagnostics).
    depth: usize,
    /// Deepest recursion reached — Θ(|E|) on chains, in contrast to
    /// log-k-decomp's logarithmic bound (the paper's core argument).
    max_depth: usize,
}

type Found<T> = ControlFlow<Result<T, Interrupted>>;

impl<'h> DetKDecomp<'h> {
    /// Default soft cap on memoised subproblems.
    pub const DEFAULT_CACHE_CAP: usize = 1 << 20;

    /// Creates an engine for width bound `k` with its own (lazily built)
    /// memo table.
    pub fn new(hg: &'h Hypergraph, k: usize, ctrl: &'h Control) -> Self {
        assert!(k >= 1, "width parameter k must be at least 1");
        DetKDecomp {
            hg,
            k,
            ctrl,
            memo: MemoHandle::Owned {
                cell: OnceCell::new(),
                k,
                cap: Self::DEFAULT_CACHE_CAP,
            },
            scratch: DetkScratch::new(),
            depth: 0,
            max_depth: 0,
        }
    }

    /// Replaces the memo-table entry cap of an engine-owned table.
    /// No-op when the table is shared — the sharer configured its cap.
    pub fn with_cache_cap(mut self, cap: usize) -> Self {
        if matches!(self.memo, MemoHandle::Owned { .. }) {
            self.memo = MemoHandle::Owned {
                cell: OnceCell::new(),
                k: self.k,
                cap,
            };
        }
        self
    }

    /// Replaces the engine-owned memo table with one shared by the caller
    /// — `log-k-decomp`'s hybrid driver threads a single lock-striped
    /// table through every handoff and rayon branch this way.
    ///
    /// # Panics
    ///
    /// If the table was created for a different width bound: its verdicts
    /// ("refuted at k", "witness of width ≤ k") are meaningless at any
    /// other `k`, so sharing across bounds would be unsound.
    pub fn with_shared_memo<'m>(self, memo: &'m SharedMemo) -> DetKDecomp<'m>
    where
        'h: 'm,
    {
        assert_eq!(
            memo.k(),
            self.k,
            "a SharedMemo stores verdicts relative to one width bound"
        );
        DetKDecomp {
            hg: self.hg,
            k: self.k,
            ctrl: self.ctrl,
            memo: MemoHandle::Shared(memo),
            scratch: self.scratch,
            depth: self.depth,
            max_depth: self.max_depth,
        }
    }

    /// Moves a (typically warm) scratch stack into the engine, so this
    /// instance starts with the previous instance's buffers instead of
    /// allocating its own — the hybrid driver pools stacks across its
    /// det-k handoffs this way.
    pub fn with_scratch(mut self, scratch: DetkScratch) -> Self {
        self.scratch = scratch;
        self
    }

    /// Recovers the scratch stack (leaving this engine a cold one), so
    /// the caller can pool it for the next engine instance.
    pub fn take_scratch(&mut self) -> DetkScratch {
        std::mem::take(&mut self.scratch)
    }

    /// Total scratch buffer growth events so far (constant in the steady
    /// state).
    pub fn scratch_grow_events(&self) -> u64 {
        self.scratch.grow_events()
    }

    /// Number of memoised subproblems (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.memo.get().len()
    }

    /// The configured memo-table entry cap (diagnostics).
    pub fn cache_cap(&self) -> usize {
        self.memo.get().cap()
    }

    /// Deepest recursion level reached so far (diagnostics; the paper's
    /// motivation for log-k-decomp is that this is linear for det-k).
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Decomposes the extended subhypergraph `(sub, conn)`, returning an
    /// HD-fragment of width ≤ k or `None` if none exists.
    pub fn decompose(
        &mut self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
    ) -> Result<Option<Fragment>, Interrupted> {
        decomp::faults::hit_ctrl("detk/decomp", self.ctrl);
        self.ctrl.checkpoint()?;
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        let result = self.decompose_inner(arena, sub, conn);
        self.depth -= 1;
        result
    }

    fn decompose_inner(
        &mut self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
    ) -> Result<Option<Fragment>, Interrupted> {
        // Base cases (shared with log-k-decomp).
        if sub.edges.len() <= self.k && sub.specials.is_empty() {
            let lambda: Vec<Edge> = sub.edges.iter().collect();
            let chi = self.hg.union_of(&sub.edges);
            return Ok(Some(Fragment::leaf(lambda, chi)));
        }
        if sub.edges.is_empty() && sub.specials.len() == 1 {
            let s = sub.specials[0];
            return Ok(Some(Fragment::special_leaf(s, arena.get(s).clone())));
        }
        if sub.edges.is_empty() && sub.specials.len() > 1 {
            // Only "old" edges could separate the remaining specials, which
            // the normal form forbids (no progress).
            return Ok(None);
        }

        // Borrowed-key probe: no owned key is built unless the result is
        // actually memoised.
        let hash = match self.memo.get().probe(arena, sub, conn) {
            MemoProbe::Hit(result) => return Ok(result),
            MemoProbe::Miss(h) => h,
        };

        let result = self.search(arena, sub, conn)?;
        self.memo.get().insert(hash, arena, sub, conn, &result);
        Ok(result)
    }

    fn search(
        &mut self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
    ) -> Result<Option<Fragment>, Interrupted> {
        // Take this level's buffers out of the stack so the recursion
        // below (which draws depth + 1) can borrow the stack freely.
        let depth = self.depth;
        let mut lvl = self.scratch.take(depth);
        let result = self.search_in(arena, sub, conn, &mut lvl);
        self.scratch.put(depth, lvl);
        result
    }

    fn search_in(
        &mut self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        lvl: &mut DetkLevel,
    ) -> Result<Option<Fragment>, Interrupted> {
        let DetkLevel {
            bfs,
            seps,
            vsub,
            union,
            chi,
            conn_c,
            cands,
            lam_buf,
            children,
            grow,
        } = lvl;
        *grow += sub.vertices_into(self.hg, arena, vsub) as u64;
        // Candidate λ-edges: only edges touching the component can change
        // χ(u) = ⋃λ ∩ V(C) or cover Conn ⊆ V(C); others are redundant.
        let cands_cap = cands.capacity();
        cands.clear();
        cands.extend(
            self.hg
                .edge_ids()
                .filter(|&e| self.hg.edge(e).intersects(vsub)),
        );
        *grow += (cands.capacity() > cands_cap) as u64;

        let lam_cap = lam_buf.capacity();
        let children_cap = children.capacity();
        let found = for_each_subset_in(cands, self.k, lam_buf, |lambda| {
            self.try_label(
                arena, sub, conn, vsub, lambda, bfs, seps, union, chi, conn_c, children, grow,
            )
        });
        *grow += (lam_buf.capacity() > lam_cap) as u64;
        *grow += (children.capacity() > children_cap) as u64;
        match found {
            Some(Ok(f)) => Ok(Some(f)),
            Some(Err(e)) => Err(e),
            None => Ok(None),
        }
    }

    /// One λ-label candidate. A *rejected* candidate — the common case —
    /// runs entirely inside the level's scratch buffers: no allocation.
    #[allow(clippy::too_many_arguments)]
    fn try_label(
        &mut self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        vsub: &VertexSet,
        lambda: &[Edge],
        bfs: &mut Scratch,
        seps: &mut Separation,
        union: &mut VertexSet,
        chi: &mut VertexSet,
        conn_c: &mut VertexSet,
        children: &mut Vec<Fragment>,
        grow: &mut u64,
    ) -> Found<Fragment> {
        if let Err(e) = self.ctrl.checkpoint() {
            return ControlFlow::Break(Err(e));
        }
        // Progress (normal form, Def. 3.5(2)): λ must pick up an edge of
        // the component itself.
        if !lambda.iter().any(|e| sub.edges.contains(*e)) {
            return ControlFlow::Continue(());
        }
        *grow += self.hg.union_of_slice_into(lambda, union) as u64;
        // Connectedness: Conn ⊆ χ(u); since Conn ⊆ V(C) this reduces to
        // Conn ⊆ ⋃λ.
        if !conn.is_subset_of(union) {
            return ControlFlow::Continue(());
        }
        // Minimal bag (Def. 3.5(3)), one fused pass.
        *grow += chi.assign_and(union, vsub) as u64;

        separate_into(self.hg, arena, sub, chi, bfs, seps);
        children.clear();
        for comp in &seps.components {
            // Conn_C = V(C) ∩ χ(u); the recursion draws its own buffers
            // from the next level of the stack.
            *grow += conn_c.assign_and(&comp.vertices, chi) as u64;
            match self.decompose(arena, comp.as_subproblem(), conn_c) {
                Ok(Some(f)) => children.push(f),
                Ok(None) => return ControlFlow::Continue(()),
                Err(e) => return ControlFlow::Break(Err(e)),
            }
        }

        let mut frag = Fragment::leaf(lambda.to_vec(), chi.clone());
        for f in children.drain(..) {
            frag.attach_under(0, f);
        }
        // Specials fully inside χ(u) still need their dedicated leaves.
        for &s in &seps.covered_specials {
            frag.attach_under(0, Fragment::special_leaf(s, arena.get(s).clone()));
        }
        ControlFlow::Break(Ok(frag))
    }
}

/// Decides `hw(H) ≤ k` and materialises a witness HD (whole hypergraph).
pub fn decompose_detk(hg: &Hypergraph, k: usize, ctrl: &Control) -> SolveResult {
    if hg.num_edges() == 0 {
        return Ok(Some(Decomposition::singleton(vec![], hg.vertex_set())));
    }
    let arena = SpecialArena::new();
    let mut engine = DetKDecomp::new(hg, k, ctrl);
    let sub = Subproblem::whole(hg);
    match engine.decompose(&arena, &sub, &hg.vertex_set())? {
        Some(frag) => {
            let d = frag
                .into_decomposition()
                .expect("whole-graph fragments have no special leaves");
            Ok(Some(d))
        }
        None => Ok(None),
    }
}

/// Decision-only variant of [`decompose_detk`].
pub fn decide_detk(hg: &Hypergraph, k: usize, ctrl: &Control) -> Result<bool, Interrupted> {
    Ok(decompose_detk(hg, k, ctrl)?.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate_hd_width;

    fn cycle(n: u32) -> Hypergraph {
        let edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        Hypergraph::from_edge_lists(&edges)
    }

    #[test]
    fn acyclic_instances_width_one() {
        let path = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let ctrl = Control::unlimited();
        let d = decompose_detk(&path, 1, &ctrl).unwrap().unwrap();
        validate_hd_width(&path, &d, 1).unwrap();

        let star = Hypergraph::from_edge_lists(&[vec![0, 1], vec![0, 2], vec![0, 3]]);
        let d = decompose_detk(&star, 1, &ctrl).unwrap().unwrap();
        validate_hd_width(&star, &d, 1).unwrap();
    }

    #[test]
    fn cycle10_width_two() {
        let hg = cycle(10);
        let ctrl = Control::unlimited();
        assert!(decompose_detk(&hg, 1, &ctrl).unwrap().is_none());
        let d = decompose_detk(&hg, 2, &ctrl).unwrap().unwrap();
        validate_hd_width(&hg, &d, 2).unwrap();
    }

    #[test]
    fn larger_cycle_width_two() {
        let hg = cycle(20);
        let ctrl = Control::unlimited();
        let d = decompose_detk(&hg, 2, &ctrl).unwrap().unwrap();
        validate_hd_width(&hg, &d, 2).unwrap();
    }

    #[test]
    fn cache_is_exercised() {
        let hg = cycle(12);
        let ctrl = Control::unlimited();
        let arena = SpecialArena::new();
        let mut engine = DetKDecomp::new(&hg, 2, &ctrl);
        let sub = Subproblem::whole(&hg);
        let f = engine.decompose(&arena, &sub, &hg.vertex_set()).unwrap();
        assert!(f.is_some());
        assert!(engine.cache_len() > 0);
    }

    #[test]
    fn extended_subproblem_with_special_edge() {
        // Decompose a path fragment whose interface to the rest is a
        // special edge; detk must give it a dedicated leaf.
        let hg = cycle(10);
        let ctrl = Control::unlimited();
        let mut arena = SpecialArena::new();
        let n = hg.num_vertices();
        let s = arena.push(VertexSet::from_iter(
            n,
            [
                hypergraph::Vertex(0),
                hypergraph::Vertex(5),
                hypergraph::Vertex(6),
            ],
        ));
        let mut sub = Subproblem::empty(&hg);
        for e in [2u32, 3, 4] {
            sub.edges.insert(Edge(e));
        }
        sub.specials.push(s);
        let conn = VertexSet::from_iter(n, [hypergraph::Vertex(0), hypergraph::Vertex(2)]);
        let mut engine = DetKDecomp::new(&hg, 2, &ctrl);
        let frag = engine.decompose(&arena, &sub, &conn).unwrap().unwrap();
        decomp::validate_extended_hd(&hg, &arena, &sub, &conn, &frag).unwrap();
    }

    #[test]
    fn two_specials_no_edges_is_negative() {
        let hg = cycle(6);
        let ctrl = Control::unlimited();
        let mut arena = SpecialArena::new();
        let n = hg.num_vertices();
        let s1 = arena.push(VertexSet::from_iter(n, [hypergraph::Vertex(0)]));
        let s2 = arena.push(VertexSet::from_iter(n, [hypergraph::Vertex(3)]));
        let mut sub = Subproblem::empty(&hg);
        sub.specials = vec![s1, s2];
        let mut engine = DetKDecomp::new(&hg, 2, &ctrl);
        let r = engine.decompose(&arena, &sub, &hg.vertex_set()).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn shared_memo_carries_results_across_engines() {
        // Two engine instances over one SharedMemo — the shape of the
        // hybrid driver's repeated handoffs. The second engine must answer
        // from the table built by the first.
        let hg = cycle(12);
        let ctrl = Control::unlimited();
        let memo = SharedMemo::new(2, 1 << 16);
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);

        let mut first = DetKDecomp::new(&hg, 2, &ctrl).with_shared_memo(&memo);
        let f = first.decompose(&arena, &sub, &hg.vertex_set()).unwrap();
        assert!(f.is_some());
        let after_first = memo.snapshot();
        assert!(after_first.inserts > 0);

        let mut second = DetKDecomp::new(&hg, 2, &ctrl).with_shared_memo(&memo);
        let g = second.decompose(&arena, &sub, &hg.vertex_set()).unwrap();
        assert!(g.is_some());
        let after_second = memo.snapshot();
        assert!(
            after_second.hits > after_first.hits,
            "second engine must reuse the shared table"
        );
        // The top-level answer itself is served from the memo: no new
        // entries were needed.
        assert_eq!(after_second.inserts, after_first.inserts);
    }

    #[test]
    fn scratch_reaches_steady_state_and_survives_handoffs() {
        // First solve warms the buffers; a second engine instance fed the
        // same stack (the hybrid-handoff shape) must not regrow any.
        let hg = cycle(14);
        let ctrl = Control::unlimited();
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);

        let mut first = DetKDecomp::new(&hg, 2, &ctrl);
        first.decompose(&arena, &sub, &hg.vertex_set()).unwrap();
        let warm_events = first.scratch_grow_events();
        assert!(warm_events > 0, "cold buffers must have grown");
        let scratch = first.take_scratch();

        let mut second = DetKDecomp::new(&hg, 2, &ctrl).with_scratch(scratch);
        let f = second.decompose(&arena, &sub, &hg.vertex_set()).unwrap();
        assert!(f.is_some());
        assert_eq!(
            second.scratch_grow_events(),
            warm_events,
            "a warm scratch stack must not allocate on reuse"
        );
    }

    #[test]
    fn take_scratch_leaves_a_cold_stack() {
        let hg = cycle(10);
        let ctrl = Control::unlimited();
        let arena = SpecialArena::new();
        let sub = Subproblem::whole(&hg);
        let mut engine = DetKDecomp::new(&hg, 2, &ctrl);
        engine.decompose(&arena, &sub, &hg.vertex_set()).unwrap();
        let warm = engine.take_scratch();
        assert!(warm.grow_events() > 0);
        assert_eq!(engine.scratch_grow_events(), 0, "engine keeps a cold stack");
        // The engine still works after losing its warm buffers.
        let f = engine.decompose(&arena, &sub, &hg.vertex_set()).unwrap();
        assert!(f.is_some());
    }

    #[test]
    fn timeout_propagates() {
        let hg = cycle(30);
        let ctrl = Control::with_timeout(std::time::Duration::from_millis(0));
        let r = decompose_detk(&hg, 3, &ctrl);
        assert!(matches!(r, Err(Interrupted::Timeout)));
    }
}
