//! `det-k-decomp` — the backtracking HD algorithm of Gottlob & Samer
//! (ACM JEA 2008), re-implemented from scratch and *extended to handle
//! extended subhypergraphs* (special edges), exactly as the paper's hybrid
//! strategy requires (Section 5.2: "our own implementation of det-k-decomp,
//! extended to handle extended subhypergraphs correctly").
//!
//! The algorithm constructs an HD strictly top-down: for the current
//! component it guesses a λ-label, derives the (minimal) bag
//! `χ(u) = ⋃λ(u) ∩ V(C)`, splits `C` into `[χ(u)]`-components and recurses.
//! Positive and negative results are memoised per `(component, connector)`
//! — the extensive caching that makes the algorithm strong on small
//! instances but, as the paper argues, inherently hard to parallelise.

use std::collections::HashMap;
use std::ops::ControlFlow;

use decomp::{Control, Decomposition, Fragment, Interrupted};
use hypergraph::subsets::for_each_subset;
use hypergraph::{
    separate, Edge, EdgeSet, Hypergraph, SpecialArena, SpecialId, Subproblem, VertexSet,
};

/// Result of a whole-hypergraph solve.
pub type SolveResult = Result<Option<Decomposition>, Interrupted>;

#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    edges: EdgeSet,
    specials: Vec<SpecialId>,
    conn: VertexSet,
}

/// Reusable `det-k-decomp` engine with its memoisation cache.
///
/// The engine borrows the hypergraph and control; the special-edge arena is
/// passed per call so that `log-k-decomp`'s hybrid driver can hand over
/// subproblems referencing its own arena.
pub struct DetKDecomp<'h> {
    hg: &'h Hypergraph,
    k: usize,
    ctrl: &'h Control,
    cache: HashMap<CacheKey, Option<Fragment>>,
    /// Soft cap on cache entries, mirroring the paper's 1 GB memory limit
    /// discipline: beyond the cap we keep solving but stop memoising.
    cache_cap: usize,
    /// Current recursion depth (diagnostics).
    depth: usize,
    /// Deepest recursion reached — Θ(|E|) on chains, in contrast to
    /// log-k-decomp's logarithmic bound (the paper's core argument).
    max_depth: usize,
}

type Found<T> = ControlFlow<Result<T, Interrupted>>;

impl<'h> DetKDecomp<'h> {
    /// Default soft cap on memoised subproblems.
    pub const DEFAULT_CACHE_CAP: usize = 1 << 20;

    /// Creates an engine for width bound `k`.
    pub fn new(hg: &'h Hypergraph, k: usize, ctrl: &'h Control) -> Self {
        assert!(k >= 1, "width parameter k must be at least 1");
        DetKDecomp {
            hg,
            k,
            ctrl,
            cache: HashMap::new(),
            cache_cap: Self::DEFAULT_CACHE_CAP,
            depth: 0,
            max_depth: 0,
        }
    }

    /// Replaces the memo-table entry cap (`log-k-decomp`'s hybrid driver
    /// threads its `EngineConfig::detk_cache_cap` through here).
    pub fn with_cache_cap(mut self, cap: usize) -> Self {
        self.cache_cap = cap;
        self
    }

    /// Number of memoised subproblems (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The configured memo-table entry cap (diagnostics).
    pub fn cache_cap(&self) -> usize {
        self.cache_cap
    }

    /// Deepest recursion level reached so far (diagnostics; the paper's
    /// motivation for log-k-decomp is that this is linear for det-k).
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Decomposes the extended subhypergraph `(sub, conn)`, returning an
    /// HD-fragment of width ≤ k or `None` if none exists.
    pub fn decompose(
        &mut self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
    ) -> Result<Option<Fragment>, Interrupted> {
        self.ctrl.checkpoint()?;
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        let result = self.decompose_inner(arena, sub, conn);
        self.depth -= 1;
        result
    }

    fn decompose_inner(
        &mut self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
    ) -> Result<Option<Fragment>, Interrupted> {
        // Base cases (shared with log-k-decomp).
        if sub.edges.len() <= self.k && sub.specials.is_empty() {
            let lambda: Vec<Edge> = sub.edges.iter().collect();
            let chi = self.hg.union_of(&sub.edges);
            return Ok(Some(Fragment::leaf(lambda, chi)));
        }
        if sub.edges.is_empty() && sub.specials.len() == 1 {
            let s = sub.specials[0];
            return Ok(Some(Fragment::special_leaf(s, arena.get(s).clone())));
        }
        if sub.edges.is_empty() && sub.specials.len() > 1 {
            // Only "old" edges could separate the remaining specials, which
            // the normal form forbids (no progress).
            return Ok(None);
        }

        let key = CacheKey {
            edges: sub.edges.clone(),
            specials: sub.specials.clone(),
            conn: conn.clone(),
        };
        if let Some(hit) = self.cache.get(&key) {
            return Ok(hit.clone());
        }

        let result = self.search(arena, sub, conn)?;
        if self.cache.len() < self.cache_cap {
            self.cache.insert(key, result.clone());
        }
        Ok(result)
    }

    fn search(
        &mut self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
    ) -> Result<Option<Fragment>, Interrupted> {
        let vsub = sub.vertices(self.hg, arena);
        // Candidate λ-edges: only edges touching the component can change
        // χ(u) = ⋃λ ∩ V(C) or cover Conn ⊆ V(C); others are redundant.
        let cands: Vec<Edge> = self
            .hg
            .edge_ids()
            .filter(|&e| self.hg.edge(e).intersects(&vsub))
            .collect();

        let found = for_each_subset(&cands, self.k, |lambda| {
            self.try_label(arena, sub, conn, &vsub, lambda)
        });
        match found {
            Some(Ok(f)) => Ok(Some(f)),
            Some(Err(e)) => Err(e),
            None => Ok(None),
        }
    }

    fn try_label(
        &mut self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        vsub: &VertexSet,
        lambda: &[Edge],
    ) -> Found<Fragment> {
        if let Err(e) = self.ctrl.checkpoint() {
            return ControlFlow::Break(Err(e));
        }
        // Progress (normal form, Def. 3.5(2)): λ must pick up an edge of
        // the component itself.
        if !lambda.iter().any(|e| sub.edges.contains(*e)) {
            return ControlFlow::Continue(());
        }
        let union = self.hg.union_of_slice(lambda);
        // Connectedness: Conn ⊆ χ(u); since Conn ⊆ V(C) this reduces to
        // Conn ⊆ ⋃λ.
        if !conn.is_subset_of(&union) {
            return ControlFlow::Continue(());
        }
        // Minimal bag (Def. 3.5(3)).
        let chi = union.intersection(vsub);

        let seps = separate(self.hg, arena, sub, &chi);
        let mut children = Vec::with_capacity(seps.components.len());
        for comp in &seps.components {
            let conn_c = comp.vertices.intersection(&chi);
            match self.decompose(arena, &comp.to_subproblem(), &conn_c) {
                Ok(Some(f)) => children.push(f),
                Ok(None) => return ControlFlow::Continue(()),
                Err(e) => return ControlFlow::Break(Err(e)),
            }
        }

        let mut frag = Fragment::leaf(lambda.to_vec(), chi);
        for f in children {
            frag.attach_under(0, f);
        }
        // Specials fully inside χ(u) still need their dedicated leaves.
        for &s in &seps.covered_specials {
            frag.attach_under(0, Fragment::special_leaf(s, arena.get(s).clone()));
        }
        ControlFlow::Break(Ok(frag))
    }
}

/// Decides `hw(H) ≤ k` and materialises a witness HD (whole hypergraph).
pub fn decompose_detk(hg: &Hypergraph, k: usize, ctrl: &Control) -> SolveResult {
    if hg.num_edges() == 0 {
        return Ok(Some(Decomposition::singleton(vec![], hg.vertex_set())));
    }
    let arena = SpecialArena::new();
    let mut engine = DetKDecomp::new(hg, k, ctrl);
    let sub = Subproblem::whole(hg);
    match engine.decompose(&arena, &sub, &hg.vertex_set())? {
        Some(frag) => {
            let d = frag
                .into_decomposition()
                .expect("whole-graph fragments have no special leaves");
            Ok(Some(d))
        }
        None => Ok(None),
    }
}

/// Decision-only variant of [`decompose_detk`].
pub fn decide_detk(hg: &Hypergraph, k: usize, ctrl: &Control) -> Result<bool, Interrupted> {
    Ok(decompose_detk(hg, k, ctrl)?.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate_hd_width;

    fn cycle(n: u32) -> Hypergraph {
        let edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        Hypergraph::from_edge_lists(&edges)
    }

    #[test]
    fn acyclic_instances_width_one() {
        let path = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let ctrl = Control::unlimited();
        let d = decompose_detk(&path, 1, &ctrl).unwrap().unwrap();
        validate_hd_width(&path, &d, 1).unwrap();

        let star = Hypergraph::from_edge_lists(&[vec![0, 1], vec![0, 2], vec![0, 3]]);
        let d = decompose_detk(&star, 1, &ctrl).unwrap().unwrap();
        validate_hd_width(&star, &d, 1).unwrap();
    }

    #[test]
    fn cycle10_width_two() {
        let hg = cycle(10);
        let ctrl = Control::unlimited();
        assert!(decompose_detk(&hg, 1, &ctrl).unwrap().is_none());
        let d = decompose_detk(&hg, 2, &ctrl).unwrap().unwrap();
        validate_hd_width(&hg, &d, 2).unwrap();
    }

    #[test]
    fn larger_cycle_width_two() {
        let hg = cycle(20);
        let ctrl = Control::unlimited();
        let d = decompose_detk(&hg, 2, &ctrl).unwrap().unwrap();
        validate_hd_width(&hg, &d, 2).unwrap();
    }

    #[test]
    fn cache_is_exercised() {
        let hg = cycle(12);
        let ctrl = Control::unlimited();
        let arena = SpecialArena::new();
        let mut engine = DetKDecomp::new(&hg, 2, &ctrl);
        let sub = Subproblem::whole(&hg);
        let f = engine.decompose(&arena, &sub, &hg.vertex_set()).unwrap();
        assert!(f.is_some());
        assert!(engine.cache_len() > 0);
    }

    #[test]
    fn extended_subproblem_with_special_edge() {
        // Decompose a path fragment whose interface to the rest is a
        // special edge; detk must give it a dedicated leaf.
        let hg = cycle(10);
        let ctrl = Control::unlimited();
        let mut arena = SpecialArena::new();
        let n = hg.num_vertices();
        let s = arena.push(VertexSet::from_iter(
            n,
            [
                hypergraph::Vertex(0),
                hypergraph::Vertex(5),
                hypergraph::Vertex(6),
            ],
        ));
        let mut sub = Subproblem::empty(&hg);
        for e in [2u32, 3, 4] {
            sub.edges.insert(Edge(e));
        }
        sub.specials.push(s);
        let conn = VertexSet::from_iter(n, [hypergraph::Vertex(0), hypergraph::Vertex(2)]);
        let mut engine = DetKDecomp::new(&hg, 2, &ctrl);
        let frag = engine.decompose(&arena, &sub, &conn).unwrap().unwrap();
        decomp::validate_extended_hd(&hg, &arena, &sub, &conn, &frag).unwrap();
    }

    #[test]
    fn two_specials_no_edges_is_negative() {
        let hg = cycle(6);
        let ctrl = Control::unlimited();
        let mut arena = SpecialArena::new();
        let n = hg.num_vertices();
        let s1 = arena.push(VertexSet::from_iter(n, [hypergraph::Vertex(0)]));
        let s2 = arena.push(VertexSet::from_iter(n, [hypergraph::Vertex(3)]));
        let mut sub = Subproblem::empty(&hg);
        sub.specials = vec![s1, s2];
        let mut engine = DetKDecomp::new(&hg, 2, &ctrl);
        let r = engine.decompose(&arena, &sub, &hg.vertex_set()).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn timeout_propagates() {
        let hg = cycle(30);
        let ctrl = Control::with_timeout(std::time::Duration::from_millis(0));
        let r = decompose_detk(&hg, 3, &ctrl);
        assert!(matches!(r, Err(Interrupted::Timeout)));
    }
}
