//! SAT-based optimal-width decomposition solver — the workspace's
//! substitute for **HtdLEO** (Schidler & Szeider, IJCAI 2021).
//!
//! # Substitution caveat (see also `DESIGN.md` §5)
//!
//! HtdLEO decides *hypertree width* with an ordering-based SAT encoding
//! that includes special-condition constraints. This crate's encoding
//! ([`encode`](mod@encode)) decides **generalized hypertree width** exactly:
//!
//! * `ghw(H) ≤ k` **iff** some elimination ordering of `H`'s primal graph
//!   yields fill-in bags that are each coverable by ≤ k hyperedges.
//!   (⇐) such a tree decomposition with its covers *is* a GHD;
//!   (⇒) a GHD is a TD with covers, and any TD can be converted to an
//!   elimination-ordering TD whose bags only shrink, preserving covers.
//!
//! The paper observes (Section 5.2) that on every HyperBench instance with
//! known optimum, `ghw = hw`; the harness cross-checks this on our corpus
//! and reports any divergence, keeping the baseline comparison honest.
//!
//! Like HtdLEO, this solver computes the **optimal** width directly
//! (iterating the decision encoding), needs no width parameter from the
//! user, and is memory-hungry: encodings above a clause budget are refused
//! with [`HtdSatError::EncodingTooLarge`], mirroring HtdLEO's memouts.

pub mod encode;

use decomp::{validate_ghd, Control, Decomposition, Interrupted};
use hypergraph::{Edge, Hypergraph, VertexSet};
use satsolver::{LBool, Solver, Status};

pub use encode::{encode, estimate_clauses, Encoding};

/// Failure modes of the SAT baseline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HtdSatError {
    /// Cancelled or timed out.
    Interrupted(Interrupted),
    /// The encoding would exceed the clause budget (a memout, in the
    /// paper's terms).
    EncodingTooLarge {
        /// The estimate that tripped the budget.
        estimated_clauses: u64,
    },
}

impl std::fmt::Display for HtdSatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HtdSatError::Interrupted(i) => write!(f, "{i}"),
            HtdSatError::EncodingTooLarge { estimated_clauses } => {
                write!(f, "encoding too large ({estimated_clauses} clauses)")
            }
        }
    }
}

impl std::error::Error for HtdSatError {}

/// Default clause budget (≈ a few hundred MB of clause storage).
pub const DEFAULT_CLAUSE_BUDGET: u64 = 3_000_000;

/// Configured SAT-baseline solver — the pooled, `Control`-scoped entry
/// point symmetric with the other engines' façades (a `LogK`-style
/// builder with one `decide` call), so an algorithm portfolio can treat
/// it interchangeably and cancel it within the bounded latency the
/// interruption suite pins.
#[derive(Clone, Debug, Default)]
pub struct HtdSat {
    clause_budget: Option<u64>,
    pool: Option<std::sync::Arc<rayon::ThreadPool>>,
}

impl HtdSat {
    /// Solver with the default clause budget, running on the caller's
    /// thread.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides [`DEFAULT_CLAUSE_BUDGET`].
    pub fn with_clause_budget(mut self, budget: u64) -> Self {
        self.clause_budget = Some(budget);
        self
    }

    /// Runs `decide` calls under `pool` (the encode + CDCL search still
    /// occupies one worker — the SAT core is sequential — but the solve
    /// is accounted to the pool like every other engine's, and nested
    /// parallel constructs would target it).
    pub fn with_pool(mut self, pool: std::sync::Arc<rayon::ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Decides `ghw(H) ≤ k` under `ctrl`, returning a witness GHD on
    /// success. Identical verdict contract to [`decide_ghw`]; the
    /// control is polled throughout the CDCL search, so cancellation
    /// latency is bounded exactly as the interruption suite pins it.
    pub fn decide(
        &self,
        hg: &Hypergraph,
        k: usize,
        ctrl: &Control,
    ) -> Result<Option<Decomposition>, HtdSatError> {
        let budget = self.clause_budget.unwrap_or(DEFAULT_CLAUSE_BUDGET);
        match &self.pool {
            Some(pool) => pool.install(|| decide_ghw_with_budget(hg, k, ctrl, budget)),
            None => decide_ghw_with_budget(hg, k, ctrl, budget),
        }
    }
}

/// Decides `ghw(H) ≤ k`; on success returns a witness GHD.
pub fn decide_ghw(
    hg: &Hypergraph,
    k: usize,
    ctrl: &Control,
) -> Result<Option<Decomposition>, HtdSatError> {
    decide_ghw_with_budget(hg, k, ctrl, DEFAULT_CLAUSE_BUDGET)
}

/// [`decide_ghw`] with an explicit clause budget.
pub fn decide_ghw_with_budget(
    hg: &Hypergraph,
    k: usize,
    ctrl: &Control,
    budget: u64,
) -> Result<Option<Decomposition>, HtdSatError> {
    assert!(k >= 1);
    // Bail before paying for an encoding nobody will solve: a portfolio
    // race may have cancelled this engine while it sat queued.
    if let Err(e) = ctrl.checkpoint_coarse() {
        return Err(HtdSatError::Interrupted(e));
    }
    if hg.num_edges() == 0 {
        return Ok(Some(Decomposition::singleton(vec![], hg.vertex_set())));
    }
    let est = estimate_clauses(hg);
    if est > budget {
        return Err(HtdSatError::EncodingTooLarge {
            estimated_clauses: est,
        });
    }
    let mut solver = Solver::new();
    let enc = encode(hg, k, &mut solver);
    // The solver polls once per batch of conflicts — far too sparse for
    // the stride-amortised `checkpoint`, whose deadline consult would
    // then hinge on the control's one-shot first poll (consumed above).
    match solver.solve_with(|| ctrl.checkpoint_coarse().is_err()) {
        Status::Unsat => Ok(None),
        Status::Interrupted => Err(HtdSatError::Interrupted(
            ctrl.checkpoint_coarse()
                .expect_err("solver only interrupts when ctrl fired"),
        )),
        Status::Sat => Ok(Some(decode(hg, &enc, &solver))),
    }
}

/// Computes the optimal generalized hypertree width (≤ `k_max`), like
/// HtdLEO computes optimal hw directly.
pub fn optimal_ghw(
    hg: &Hypergraph,
    k_max: usize,
    ctrl: &Control,
) -> Result<Option<(usize, Decomposition)>, HtdSatError> {
    for k in 1..=k_max {
        if let Some(d) = decide_ghw(hg, k, ctrl)? {
            return Ok(Some((k, d)));
        }
    }
    Ok(None)
}

/// Rebuilds a certified GHD from a model: take the *order* from the model,
/// recompute the fill-in bags from scratch (models may over-approximate
/// `arc`), and use the model's cover choices (valid for any subset of the
/// model's bags).
#[allow(clippy::needless_range_loop)] // parallel arrays indexed by vertex position
fn decode(hg: &Hypergraph, enc: &Encoding, solver: &Solver) -> Decomposition {
    let n = enc.verts.len();
    // Positions from the ord variables: vertex with fewer predecessors
    // comes first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&a| {
        (0..n)
            .filter(|&b| b != a && solver_value(solver, enc.before(b, a)))
            .count()
    });
    let mut rank = vec![0usize; n];
    for (r, &a) in order.iter().enumerate() {
        rank[a] = r;
    }

    // Fill-in simulation over positions in `verts`.
    let mut adj: Vec<Vec<bool>> = vec![vec![false; n]; n];
    let mut pos_of = vec![usize::MAX; hg.num_vertices()];
    for (i, &v) in enc.verts.iter().enumerate() {
        pos_of[v.0 as usize] = i;
    }
    for e in hg.edge_ids() {
        let members: Vec<usize> = hg.edge(e).iter().map(|v| pos_of[v.0 as usize]).collect();
        for (x, &a) in members.iter().enumerate() {
            for &b in &members[x + 1..] {
                adj[a][b] = true;
                adj[b][a] = true;
            }
        }
    }
    let mut bags: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &a in &order {
        let higher: Vec<usize> = (0..n)
            .filter(|&b| b != a && adj[a][b] && rank[b] > rank[a])
            .collect();
        for (x, &b) in higher.iter().enumerate() {
            for &c in &higher[x + 1..] {
                adj[b][c] = true;
                adj[c][b] = true;
            }
        }
        bags[a] = higher;
    }

    // One decomposition node per vertex: χ = {a} ∪ bag, λ = model covers.
    // Parent: the earliest higher member of the bag; vertices with empty
    // bags chain to the last vertex in the order (disconnected parts).
    let nverts = hg.num_vertices();
    let mut labels: Vec<(Vec<Edge>, VertexSet)> = Vec::with_capacity(n);
    for a in 0..n {
        let mut chi = VertexSet::empty(nverts);
        chi.insert(enc.verts[a]);
        for &b in &bags[a] {
            chi.insert(enc.verts[b]);
        }
        let lambda: Vec<Edge> = hg
            .edge_ids()
            .filter(|&e| solver.value(enc.cov(a, e)) == LBool::True)
            .collect();
        labels.push((lambda, chi));
    }
    let root = *order.last().expect("n >= 1");
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for a in 0..n {
        if a == root {
            continue;
        }
        let parent = bags[a]
            .iter()
            .copied()
            .min_by_key(|&b| rank[b])
            .unwrap_or(root);
        children[parent].push(a as u32);
    }
    Decomposition::from_parts(labels, children, root as u32)
}

fn solver_value(solver: &Solver, lit: satsolver::Lit) -> bool {
    match solver.value(lit.var()) {
        LBool::True => !lit.is_neg(),
        LBool::False => lit.is_neg(),
        LBool::Undef => false,
    }
}

/// Validates a returned GHD (used by tests; exposed for the harness).
pub fn check_witness(hg: &Hypergraph, d: &Decomposition, k: usize) -> bool {
    d.width() <= k && validate_ghd(hg, d).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> Control {
        Control::unlimited()
    }

    fn cycle(n: u32) -> Hypergraph {
        let edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        Hypergraph::from_edge_lists(&edges)
    }

    fn clique(q: u32) -> Hypergraph {
        let mut edges = Vec::new();
        for a in 0..q {
            for b in a + 1..q {
                edges.push(vec![a, b]);
            }
        }
        Hypergraph::from_edge_lists(&edges)
    }

    #[test]
    fn paths_have_ghw_one() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let (w, d) = optimal_ghw(&hg, 4, &ctrl()).unwrap().unwrap();
        assert_eq!(w, 1);
        assert!(check_witness(&hg, &d, 1));
    }

    #[test]
    fn cycles_have_ghw_two() {
        for n in [4u32, 6, 9] {
            let hg = cycle(n);
            let (w, d) = optimal_ghw(&hg, 4, &ctrl()).unwrap().unwrap();
            assert_eq!(w, 2, "C_{n}");
            assert!(check_witness(&hg, &d, 2));
        }
    }

    #[test]
    fn cliques_have_ghw_half_q() {
        for (q, want) in [(4u32, 2usize), (5, 3), (6, 3)] {
            let hg = clique(q);
            let (w, d) = optimal_ghw(&hg, 5, &ctrl()).unwrap().unwrap();
            assert_eq!(w, want, "K_{q}");
            assert!(check_witness(&hg, &d, want));
        }
    }

    #[test]
    fn hyperedges_cover_in_one_bag() {
        // A single ternary edge plus pendant edges: ghw 1.
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1, 2], vec![2, 3], vec![3, 4]]);
        let (w, d) = optimal_ghw(&hg, 3, &ctrl()).unwrap().unwrap();
        assert_eq!(w, 1);
        assert!(check_witness(&hg, &d, 1));
    }

    #[test]
    fn budget_refusal() {
        let hg = cycle(12);
        let err = decide_ghw_with_budget(&hg, 2, &ctrl(), 10).unwrap_err();
        assert!(matches!(err, HtdSatError::EncodingTooLarge { .. }));
    }

    #[test]
    fn interruption_propagates() {
        let hg = cycle(14);
        let c = Control::with_timeout(std::time::Duration::from_millis(0));
        // Exhaust the deadline detector first.
        while c.checkpoint().is_ok() {}
        let r = decide_ghw(&hg, 2, &c);
        assert!(matches!(
            r,
            Err(HtdSatError::Interrupted(Interrupted::Timeout))
        ));
    }

    #[test]
    fn disconnected_hypergraphs_decompose() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![2, 3], vec![3, 4]]);
        let (w, d) = optimal_ghw(&hg, 3, &ctrl()).unwrap().unwrap();
        assert_eq!(w, 1);
        assert!(check_witness(&hg, &d, 1));
    }
}
