//! Elimination-ordering SAT encoding of "generalized hypertree width ≤ k".
//!
//! The encoding extends the Samer–Veith treewidth encoding with bag-cover
//! variables and a sequential-counter width bound:
//!
//! * `ord(a,b)` — vertex `a` precedes `b` in the elimination order
//!   (one variable per unordered pair, sign-flipped for the converse);
//! * `arc(a,b)` — `b` is a *higher neighbour* of `a` in the fill-in graph,
//!   i.e. `b ∈ bag(a)`;
//! * `cov(a,e)` — hyperedge `e` is used in the cover of `bag(a)`;
//!   `Σ_e cov(a,e) ≤ k` per vertex.
//!
//! Soundness/completeness for **ghw** (see crate docs for why this decides
//! ghw exactly): a TD whose every bag has an edge cover of size ≤ k *is* a
//! GHD of width ≤ k, every GHD is such a TD, and every TD can be turned
//! into an elimination-ordering TD whose bags only shrink.

use hypergraph::{Edge, Hypergraph, Vertex};
use satsolver::{at_most_k, Lit, Solver, Var};

/// The variable layout of one encoding instance.
pub struct Encoding {
    /// Active (degree ≥ 1) vertices, in hypergraph order.
    pub verts: Vec<Vertex>,
    /// `ord[p]` for pair index of `(a,b)`, `a < b` (positions in `verts`).
    ord: Vec<Var>,
    /// `arc[a][b]`, positions in `verts`, `a ≠ b`.
    arc: Vec<Vec<Var>>,
    /// `cov[a][e]` cover-choice variables.
    cov: Vec<Vec<Var>>,
}

impl Encoding {
    fn pair_index(&self, a: usize, b: usize) -> usize {
        debug_assert!(a < b);
        let n = self.verts.len();
        // Index into the upper-triangular pair array.
        a * n - a * (a + 1) / 2 + (b - a - 1)
    }

    /// Literal for "`verts[a]` precedes `verts[b]`".
    pub fn before(&self, a: usize, b: usize) -> Lit {
        if a < b {
            Lit::pos(self.ord[self.pair_index(a, b)])
        } else {
            Lit::neg(self.ord[self.pair_index(b, a)])
        }
    }

    /// The `arc(a,b)` variable.
    pub fn arc(&self, a: usize, b: usize) -> Var {
        self.arc[a][b]
    }

    /// The `cov(a,e)` variable.
    pub fn cov(&self, a: usize, e: Edge) -> Var {
        self.cov[a][e.0 as usize]
    }
}

/// Estimated clause count; used to refuse encodings that would exceed the
/// memory discipline of the paper's experiments (HtdLEO ran with a 24 GB
/// cap and still reported memory-bound failures on large instances).
pub fn estimate_clauses(hg: &Hypergraph) -> u64 {
    let n = hg
        .vertex_ids()
        .filter(|&v| !hg.incident_edges(v).is_empty())
        .count() as u64;
    let m = hg.num_edges() as u64;
    // transitivity + fill-in dominate at n³; covers at n²·m.
    2 * n * n * n / 6 + n * n * n + n * n * m / 8 + n * m
}

/// Builds the full encoding for width bound `k` into `solver`.
pub fn encode(hg: &Hypergraph, k: usize, solver: &mut Solver) -> Encoding {
    let verts: Vec<Vertex> = hg
        .vertex_ids()
        .filter(|&v| !hg.incident_edges(v).is_empty())
        .collect();
    let n = verts.len();
    let m = hg.num_edges();

    let ord: Vec<Var> = (0..n * (n - 1) / 2).map(|_| solver.new_var()).collect();
    let arc: Vec<Vec<Var>> = (0..n)
        .map(|_| (0..n).map(|_| solver.new_var()).collect())
        .collect();
    let cov: Vec<Vec<Var>> = (0..n)
        .map(|_| (0..m).map(|_| solver.new_var()).collect())
        .collect();
    let enc = Encoding {
        verts,
        ord,
        arc,
        cov,
    };

    // Total-order transitivity: forbid directed 3-cycles on each triple.
    for a in 0..n {
        for b in a + 1..n {
            for c in b + 1..n {
                let (ab, bc, ca) = (enc.before(a, b), enc.before(b, c), enc.before(c, a));
                solver.add_clause(&[!ab, !bc, !ca]);
                solver.add_clause(&[ab, bc, ca]);
            }
        }
    }

    // arc(a,b) implies a before b.
    for a in 0..n {
        for b in 0..n {
            if a != b {
                solver.add_clause(&[Lit::neg(enc.arc(a, b)), enc.before(a, b)]);
            }
        }
    }

    // Vertex position lookup: verts index by hypergraph vertex.
    let mut pos_of = vec![usize::MAX; hg.num_vertices()];
    for (i, &v) in enc.verts.iter().enumerate() {
        pos_of[v.0 as usize] = i;
    }

    // Initial arcs: for every pair inside a hyperedge, the earlier vertex
    // gets an arc to the later one.
    for e in hg.edge_ids() {
        let members: Vec<usize> = hg.edge(e).iter().map(|v| pos_of[v.0 as usize]).collect();
        for (x, &a) in members.iter().enumerate() {
            for &b in &members[x + 1..] {
                solver.add_clause(&[!enc.before(a, b), Lit::pos(enc.arc(a, b))]);
                solver.add_clause(&[!enc.before(b, a), Lit::pos(enc.arc(b, a))]);
            }
        }
    }

    // Fill-in: eliminating a connects its higher neighbours.
    for a in 0..n {
        for b in 0..n {
            if b == a {
                continue;
            }
            for c in b + 1..n {
                if c == a {
                    continue;
                }
                let (ab, ac) = (Lit::pos(enc.arc(a, b)), Lit::pos(enc.arc(a, c)));
                solver.add_clause(&[!ab, !ac, !enc.before(b, c), Lit::pos(enc.arc(b, c))]);
                solver.add_clause(&[!ab, !ac, !enc.before(c, b), Lit::pos(enc.arc(c, b))]);
            }
        }
    }

    // Covers: every bag member needs a chosen edge containing it.
    for a in 0..n {
        let va = enc.verts[a];
        let own: Vec<Lit> = hg
            .incident_edges(va)
            .iter()
            .map(|e| Lit::pos(enc.cov(a, e)))
            .collect();
        solver.add_clause(&own);
        for b in 0..n {
            if b == a {
                continue;
            }
            let vb = enc.verts[b];
            let mut clause: Vec<Lit> = vec![Lit::neg(enc.arc(a, b))];
            clause.extend(
                hg.incident_edges(vb)
                    .iter()
                    .map(|e| Lit::pos(enc.cov(a, e))),
            );
            solver.add_clause(&clause);
        }
    }

    // Width bound: at most k cover edges per bag.
    for a in 0..n {
        let lits: Vec<Lit> = (0..m).map(|e| Lit::pos(enc.cov[a][e])).collect();
        at_most_k(solver, &lits, k);
    }

    enc
}

#[cfg(test)]
mod tests {
    use super::*;
    use satsolver::Status;

    #[test]
    fn pair_index_is_a_bijection() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1, 2, 3, 4]]);
        let mut s = Solver::new();
        let enc = encode(&hg, 1, &mut s);
        let n = enc.verts.len();
        let mut seen = std::collections::HashSet::new();
        for a in 0..n {
            for b in a + 1..n {
                assert!(seen.insert(enc.pair_index(a, b)));
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn single_edge_is_width_one() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1, 2]]);
        let mut s = Solver::new();
        encode(&hg, 1, &mut s);
        assert_eq!(s.solve(), Status::Sat);
    }

    #[test]
    fn triangle_needs_two() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 0]]);
        let mut s1 = Solver::new();
        encode(&hg, 1, &mut s1);
        assert_eq!(s1.solve(), Status::Unsat);
        let mut s2 = Solver::new();
        encode(&hg, 2, &mut s2);
        assert_eq!(s2.solve(), Status::Sat);
    }

    #[test]
    fn estimate_grows_with_size() {
        let small = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2]]);
        let big =
            Hypergraph::from_edge_lists(&(0..40u32).map(|i| vec![i, i + 1]).collect::<Vec<_>>());
        assert!(estimate_clauses(&small) < estimate_clauses(&big));
    }
}
