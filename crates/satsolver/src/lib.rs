//! A from-scratch CDCL SAT solver.
//!
//! Substrate for the SAT-based optimal-width baseline (`htdsat`, the
//! workspace's stand-in for HtdLEO — Schidler & Szeider, IJCAI 2021).
//! Architecture follows MiniSat: two-watched-literal propagation
//! ([`solver`]), first-UIP learning, VSIDS branching on an indexed heap
//! ([`heap`]), phase saving and Luby restarts.
//!
//! The solver is differentially tested against a brute-force model
//! enumerator on thousands of random small formulas (see `tests/`).

pub mod card;
pub mod dimacs;
pub mod heap;
pub mod lit;
pub mod solver;

pub use card::{at_least_one, at_most_k};
pub use dimacs::{parse_dimacs, write_dimacs, Cnf};
pub use lit::{LBool, Lit, Var};
pub use solver::{Solver, Status};
