//! DIMACS CNF reader/writer (testing and interoperability).

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// A parsed CNF: variable count and clauses over 1-based signed ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables declared in the header.
    pub num_vars: usize,
    /// Clauses as signed 1-based literals (DIMACS convention).
    pub clauses: Vec<Vec<i32>>,
}

impl Cnf {
    /// Loads the formula into a fresh [`Solver`], returning the solver and
    /// the variable mapping (`vars[i]` is DIMACS variable `i+1`).
    pub fn into_solver(&self) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| s.new_var()).collect();
        for c in &self.clauses {
            let lits: Vec<Lit> = c
                .iter()
                .map(|&i| {
                    let v = vars[(i.unsigned_abs() - 1) as usize];
                    if i < 0 {
                        Lit::neg(v)
                    } else {
                        Lit::pos(v)
                    }
                })
                .collect();
            s.add_clause(&lits);
        }
        (s, vars)
    }
}

/// Parses DIMACS CNF text.
pub fn parse_dimacs(input: &str) -> Result<Cnf, String> {
    let mut num_vars = 0usize;
    let mut declared_clauses = None;
    let mut clauses = Vec::new();
    let mut current: Vec<i32> = Vec::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p cnf") {
            let nums: Vec<&str> = rest.split_whitespace().collect();
            if nums.len() != 2 {
                return Err("malformed `p cnf` header".into());
            }
            num_vars = nums[0].parse().map_err(|e| format!("{e}"))?;
            declared_clauses = Some(nums[1].parse::<usize>().map_err(|e| format!("{e}"))?);
            continue;
        }
        for tok in line.split_whitespace() {
            let x: i32 = tok.parse().map_err(|e| format!("bad literal {tok}: {e}"))?;
            if x == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                if x.unsigned_abs() as usize > num_vars {
                    return Err(format!("literal {x} exceeds declared variable count"));
                }
                current.push(x);
            }
        }
    }
    if !current.is_empty() {
        return Err("final clause not terminated with 0".into());
    }
    if let Some(d) = declared_clauses {
        if d != clauses.len() {
            return Err(format!(
                "header declares {d} clauses, found {}",
                clauses.len()
            ));
        }
    } else {
        return Err("missing `p cnf` header".into());
    }
    Ok(Cnf { num_vars, clauses })
}

/// Serialises a CNF to DIMACS text.
pub fn write_dimacs(cnf: &Cnf) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for c in &cnf.clauses {
        for &l in c {
            let _ = write!(out, "{l} ");
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Status;

    #[test]
    fn parses_and_solves() {
        let src = "c sample\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse_dimacs(src).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let (mut s, _) = cnf.into_solver();
        assert_eq!(s.solve(), Status::Sat);
    }

    #[test]
    fn roundtrip() {
        let cnf = Cnf {
            num_vars: 4,
            clauses: vec![vec![1, -3], vec![2, 3, -4]],
        };
        let back = parse_dimacs(&write_dimacs(&cnf)).unwrap();
        assert_eq!(cnf, back);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_dimacs("1 2 0").is_err());
        assert!(parse_dimacs("p cnf 1 1\n2 0\n").is_err());
        assert!(parse_dimacs("p cnf 2 2\n1 0\n").is_err());
        assert!(parse_dimacs("p cnf 2 1\n1 2\n").is_err());
    }
}
