//! Cardinality constraints via the sequential-counter (Sinz) encoding.
//!
//! `at_most_k` adds auxiliary variables `s(j, c)` = "at least `c` of the
//! first `j+1` literals are true" and forbids exceeding `k`. The encoding
//! is arc-consistent under unit propagation, which is what the width-bound
//! constraints of the `htdsat` baseline need to propagate well.

use crate::lit::Lit;
use crate::solver::Solver;

/// Adds clauses enforcing `Σ lits ≤ k`.
pub fn at_most_k(solver: &mut Solver, lits: &[Lit], k: usize) {
    let m = lits.len();
    if m <= k {
        return; // trivially satisfied
    }
    if k == 0 {
        for &l in lits {
            solver.add_clause(&[!l]);
        }
        return;
    }
    // s[j][c-1] ⇔ "at least c of lits[0..=j] are true" (one direction
    // suffices for ≤-constraints).
    let mut s: Vec<Vec<Lit>> = Vec::with_capacity(m);
    for _ in 0..m {
        let row: Vec<Lit> = (0..k).map(|_| Lit::pos(solver.new_var())).collect();
        s.push(row);
    }
    // Base: x_0 → s(0,1).
    solver.add_clause(&[!lits[0], s[0][0]]);
    for j in 1..m {
        // x_j → s(j,1)
        solver.add_clause(&[!lits[j], s[j][0]]);
        for c in 0..k {
            // s(j-1,c) → s(j,c)
            solver.add_clause(&[!s[j - 1][c], s[j][c]]);
            if c + 1 < k {
                // x_j ∧ s(j-1,c+1-1) → s(j,c+1)
                solver.add_clause(&[!lits[j], !s[j - 1][c], s[j][c + 1]]);
            }
        }
        // Overflow: x_j ∧ s(j-1,k) → ⊥
        solver.add_clause(&[!lits[j], !s[j - 1][k - 1]]);
    }
}

/// Adds clauses enforcing `Σ lits ≥ 1` (a plain clause; provided for
/// symmetry and readability at call sites).
pub fn at_least_one(solver: &mut Solver, lits: &[Lit]) {
    solver.add_clause(lits);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::{LBool, Var};
    use crate::solver::Status;

    /// Enumerate all assignments of `n` base variables and check that the
    /// constrained formula is satisfiable exactly when ≤ k are set.
    fn exhaustive_check(n: usize, k: usize) {
        for mask in 0u32..(1 << n) {
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
            at_most_k(&mut s, &lits, k);
            // Pin the base variables to the mask.
            for (i, &v) in vars.iter().enumerate() {
                let l = if mask & (1 << i) != 0 {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                };
                s.add_clause(&[l]);
            }
            let want = (mask.count_ones() as usize) <= k;
            let got = s.solve() == Status::Sat;
            assert_eq!(want, got, "n={n} k={k} mask={mask:b}");
        }
    }

    #[test]
    fn at_most_k_is_exact() {
        for n in 1..=6 {
            for k in 0..=n {
                exhaustive_check(n, k);
            }
        }
    }

    #[test]
    fn at_most_zero_forces_all_false() {
        let mut s = Solver::new();
        let v: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        let lits: Vec<Lit> = v.iter().map(|&x| Lit::pos(x)).collect();
        at_most_k(&mut s, &lits, 0);
        assert_eq!(s.solve(), Status::Sat);
        for &x in &v {
            assert_eq!(s.value(x), LBool::False);
        }
    }

    #[test]
    fn unconstrained_when_k_geq_n() {
        let mut s = Solver::new();
        let v: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        let lits: Vec<Lit> = v.iter().map(|&x| Lit::pos(x)).collect();
        let before = s.num_clauses();
        at_most_k(&mut s, &lits, 3);
        assert_eq!(s.num_clauses(), before);
    }
}
