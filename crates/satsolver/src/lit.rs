//! Variables, literals and the three-valued assignment domain.

use std::fmt;
use std::ops::Not;

/// A propositional variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: variable plus sign, encoded as `var << 1 | is_negative`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// Positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "¬x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

/// Three-valued assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    Undef,
}

impl LBool {
    /// The value of a literal under this variable value.
    #[inline]
    pub fn of_lit(self, l: Lit) -> LBool {
        match self {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode() {
        let v = Var(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
    }

    #[test]
    fn lbool_of_lit() {
        let v = Var(0);
        assert_eq!(LBool::True.of_lit(Lit::pos(v)), LBool::True);
        assert_eq!(LBool::True.of_lit(Lit::neg(v)), LBool::False);
        assert_eq!(LBool::False.of_lit(Lit::neg(v)), LBool::True);
        assert_eq!(LBool::Undef.of_lit(Lit::pos(v)), LBool::Undef);
    }
}
