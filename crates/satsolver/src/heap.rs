//! Indexed max-heap over variable activities (the VSIDS order).
//!
//! Standard MiniSat `VarOrder`: a binary heap keyed by activity with an
//! index array for O(log n) `bump` of arbitrary elements.

use crate::lit::Var;

/// Max-heap of variables ordered by activity.
pub struct VarHeap {
    heap: Vec<Var>,
    /// `pos[v] = index in heap`, or `usize::MAX` when absent.
    pos: Vec<usize>,
    activity: Vec<f64>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        VarHeap {
            heap: Vec::new(),
            pos: Vec::new(),
            activity: Vec::new(),
        }
    }

    /// Registers storage for one more variable (ids are dense).
    pub fn grow(&mut self) {
        self.pos.push(ABSENT);
        self.activity.push(0.0);
    }

    /// Current activity of `v`.
    pub fn activity(&self, v: Var) -> f64 {
        self.activity[v.index()]
    }

    /// Multiplies all activities by `factor` (rescaling).
    pub fn rescale(&mut self, factor: f64) {
        for a in &mut self.activity {
            *a *= factor;
        }
    }

    /// Whether `v` is currently in the heap.
    pub fn contains(&self, v: Var) -> bool {
        self.pos[v.index()] != ABSENT
    }

    /// Inserts `v` if absent.
    pub fn push(&mut self, v: Var) {
        if self.contains(v) {
            return;
        }
        self.pos[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the most active variable.
    pub fn pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top.index()] = ABSENT;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    /// Increases the activity of `v` and restores heap order.
    pub fn bump(&mut self, v: Var, amount: f64) {
        self.activity[v.index()] += amount;
        let p = self.pos[v.index()];
        if p != ABSENT {
            self.sift_up(p);
        }
    }

    fn less(&self, a: Var, b: Var) -> bool {
        self.activity[a.index()] > self.activity[b.index()]
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(self.heap[i], self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a;
        self.pos[self.heap[b].index()] = b;
    }
}

impl Default for VarHeap {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_with(n: u32) -> VarHeap {
        let mut h = VarHeap::new();
        for i in 0..n {
            h.grow();
            h.push(Var(i));
        }
        h
    }

    #[test]
    fn pops_by_activity() {
        let mut h = heap_with(5);
        h.bump(Var(2), 3.0);
        h.bump(Var(4), 5.0);
        h.bump(Var(0), 1.0);
        assert_eq!(h.pop(), Some(Var(4)));
        assert_eq!(h.pop(), Some(Var(2)));
        assert_eq!(h.pop(), Some(Var(0)));
    }

    #[test]
    fn push_is_idempotent() {
        let mut h = heap_with(3);
        h.push(Var(1));
        h.push(Var(1));
        let mut seen = Vec::new();
        while let Some(v) = h.pop() {
            seen.push(v);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn bump_of_absent_var_keeps_activity() {
        let mut h = heap_with(2);
        assert!(h.pop().is_some());
        assert!(h.pop().is_some());
        h.bump(Var(0), 9.0);
        assert_eq!(h.activity(Var(0)), 9.0);
        h.push(Var(0));
        h.push(Var(1));
        assert_eq!(h.pop(), Some(Var(0)));
    }

    #[test]
    fn rescale_preserves_order() {
        let mut h = heap_with(3);
        h.bump(Var(1), 10.0);
        h.bump(Var(2), 20.0);
        h.rescale(1e-3);
        assert_eq!(h.pop(), Some(Var(2)));
        assert_eq!(h.pop(), Some(Var(1)));
    }
}
