//! A compact CDCL solver: two-watched-literal propagation, first-UIP
//! clause learning, VSIDS branching with an indexed heap, phase saving and
//! Luby restarts. Modeled on the MiniSat architecture.

use crate::heap::VarHeap;
use crate::lit::{LBool, Lit, Var};

/// Outcome of a [`Solver::solve_with`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// A satisfying assignment was found (readable via [`Solver::value`]).
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The interrupt callback fired.
    Interrupted,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct ClauseRef(u32);

struct Clause {
    lits: Vec<Lit>,
}

#[derive(Clone, Copy)]
struct Watch {
    clause: ClauseRef,
    /// A literal of the clause other than the watched one; if it is
    /// already true the clause is satisfied and the watch list scan can
    /// skip loading the clause.
    blocker: Lit,
}

/// CDCL SAT solver.
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>, // indexed by literal code
    assigns: Vec<LBool>,      // per var
    polarity: Vec<bool>,      // saved phase, true = last assigned true
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    heap: VarHeap,
    var_inc: f64,
    seen: Vec<bool>,
    ok: bool,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
}

const VAR_DECAY: f64 = 0.95;
const RESCALE_LIMIT: f64 = 1e100;

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            heap: VarHeap::new(),
            var_inc: 1.0,
            seen: Vec::new(),
            ok: true,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow();
        self.heap.push(v);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (problem + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Conflicts encountered so far (diagnostics).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.conflicts, self.decisions, self.propagations)
    }

    /// Adds a clause; returns `false` if the solver is already trivially
    /// unsatisfiable (in which case later `solve` calls return `Unsat`).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        // Simplify: drop false/duplicate literals, detect tautologies.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            match self.lit_value(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => continue,
                LBool::Undef => {
                    if c.contains(&!l) {
                        return true; // tautology
                    }
                    if !c.contains(&l) {
                        c.push(l);
                    }
                }
            }
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(c[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(c);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>) -> ClauseRef {
        let cref = ClauseRef(self.clauses.len() as u32);
        self.watches[(!lits[0]).index()].push(Watch {
            clause: cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).index()].push(Watch {
            clause: cref,
            blocker: lits[0],
        });
        self.clauses.push(Clause { lits });
        cref
    }

    /// Value of a variable in the current (final, after `Sat`) assignment.
    pub fn value(&self, v: Var) -> LBool {
        self.assigns[v.index()]
    }

    /// Value of a literal under the current assignment.
    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].of_lit(l)
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, from: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = if l.is_neg() {
            LBool::False
        } else {
            LBool::True
        };
        self.polarity[v.index()] = !l.is_neg();
        self.reason[v.index()] = from;
        self.level[v.index()] = self.decision_level();
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let false_lit = !p;
            // Clauses watching ¬p (registered under `watches[p]`, MiniSat
            // convention) just lost a watched literal.
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            'watches: while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.clause;
                let assigns = &self.assigns;
                let lits = &mut self.clauses[cref.0 as usize].lits;
                // Normalise: the false literal goes to position 1.
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit);
                let first = lits[0];
                if first != w.blocker && lit_value_in(assigns, first) == LBool::True {
                    // Clause satisfied through its other watch.
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Find a new literal to watch.
                let mut moved = false;
                for k in 2..lits.len() {
                    if lit_value_in(assigns, lits[k]) != LBool::False {
                        lits.swap(1, k);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    let new_watch = self.clauses[cref.0 as usize].lits[1];
                    self.watches[(!new_watch).index()].push(Watch {
                        clause: cref,
                        blocker: first,
                    });
                    ws.swap_remove(i);
                    continue 'watches;
                }
                // No replacement: unit or conflict.
                if self.lit_value(first) == LBool::False {
                    // Conflict: restore remaining watches and bail out.
                    self.watches[p.index()] = ws;
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[p.index()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.heap.bump(v, self.var_inc);
        if self.heap.activity(v) > RESCALE_LIMIT {
            self.heap.rescale(1.0 / RESCALE_LIMIT);
            self.var_inc /= RESCALE_LIMIT;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut idx = self.trail.len();

        loop {
            let clause = &self.clauses[cref.0 as usize];
            let start = if p.is_some() { 1 } else { 0 };
            for k in start..clause.lits.len() {
                let q = clause.lits[k];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    if self.level[v.index()] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let lit = self.trail[idx];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            cref = self.reason[lit.var().index()].expect("non-decision has a reason");
            p = Some(lit);
        }
        learnt[0] = !p.expect("loop sets p before breaking");

        // Bump all involved variables.
        for &l in &learnt {
            self.bump_var(l.var());
        }
        self.var_inc /= VAR_DECAY;

        // Backjump level = highest level among the non-asserting literals;
        // move that literal to position 1 for watching.
        let mut bt = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            bt = self.level[learnt[1].var().index()];
        }
        // Clear remaining seen flags.
        for l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            for &l in &self.trail[lim..] {
                let v = l.var();
                self.assigns[v.index()] = LBool::Undef;
                self.reason[v.index()] = None;
                self.heap.push(v);
            }
            self.trail.truncate(lim);
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop() {
            if self.assigns[v.index()] == LBool::Undef {
                let lit = if self.polarity[v.index()] {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                };
                return Some(lit);
            }
        }
        None
    }

    /// Solves the formula; `interrupt` is polled between conflicts.
    pub fn solve_with(&mut self, interrupt: impl Fn() -> bool) -> Status {
        if !self.ok {
            return Status::Unsat;
        }
        let mut restart_count = 0u32;
        loop {
            let budget = 100u64 * luby(restart_count) as u64;
            restart_count += 1;
            match self.search(budget, &interrupt) {
                SearchResult::Sat => return Status::Sat,
                SearchResult::Unsat => return Status::Unsat,
                SearchResult::Interrupted => return Status::Interrupted,
                SearchResult::Restart => {
                    self.cancel_until(0);
                }
            }
        }
    }

    /// Convenience wrapper without interruption.
    pub fn solve(&mut self) -> Status {
        self.solve_with(|| false)
    }

    fn search(&mut self, budget: u64, interrupt: &impl Fn() -> bool) -> SearchResult {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchResult::Unsat;
                }
                let (learnt, bt) = self.analyze(conflict);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], None);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt);
                    self.enqueue(asserting, Some(cref));
                }
                if conflicts_here.is_multiple_of(64) && interrupt() {
                    return SearchResult::Interrupted;
                }
                if conflicts_here >= budget {
                    return SearchResult::Restart;
                }
            } else {
                match self.pick_branch() {
                    None => return SearchResult::Sat,
                    Some(lit) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, None);
                    }
                }
            }
        }
    }
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

enum SearchResult {
    Sat,
    Unsat,
    Interrupted,
    Restart,
}

/// Literal value lookup that borrows only the assignment array — used
/// inside `propagate` where the clause database is mutably borrowed.
#[inline]
fn lit_value_in(assigns: &[LBool], l: Lit) -> LBool {
    assigns[l.var().index()].of_lit(l)
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,… (MiniSat's formulation).
fn luby(x: u32) -> u32 {
    let (mut size, mut seq) = (1u32, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver_vars: &[Var], spec: &[i32]) -> Vec<Lit> {
        spec.iter()
            .map(|&i| {
                let v = solver_vars[(i.unsigned_abs() - 1) as usize];
                if i < 0 {
                    Lit::neg(v)
                } else {
                    Lit::pos(v)
                }
            })
            .collect()
    }

    fn mk(n: usize) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
        (s, vars)
    }

    #[test]
    fn trivial_sat() {
        let (mut s, v) = mk(2);
        s.add_clause(&lits(&v, &[1, 2]));
        assert_eq!(s.solve(), Status::Sat);
    }

    #[test]
    fn trivial_unsat() {
        let (mut s, v) = mk(1);
        s.add_clause(&lits(&v, &[1]));
        s.add_clause(&lits(&v, &[-1]));
        assert_eq!(s.solve(), Status::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let (mut s, v) = mk(4);
        s.add_clause(&lits(&v, &[1]));
        s.add_clause(&lits(&v, &[-1, 2]));
        s.add_clause(&lits(&v, &[-2, 3]));
        s.add_clause(&lits(&v, &[-3, 4]));
        assert_eq!(s.solve(), Status::Sat);
        for &x in &v {
            assert_eq!(s.value(x), LBool::True);
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p(i,j): pigeon i in hole j; 3 pigeons, 2 holes.
        let (mut s, v) = mk(6);
        let p = |i: usize, j: usize| v[i * 2 + j];
        for i in 0..3 {
            s.add_clause(&[Lit::pos(p(i, 0)), Lit::pos(p(i, 1))]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in a + 1..3 {
                    s.add_clause(&[Lit::neg(p(a, j)), Lit::neg(p(b, j))]);
                }
            }
        }
        assert_eq!(s.solve(), Status::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // A moderately tangled satisfiable instance.
        let (mut s, v) = mk(8);
        let cls: Vec<Vec<i32>> = vec![
            vec![1, 2, -3],
            vec![-1, 4],
            vec![3, -4, 5],
            vec![-5, 6],
            vec![-6, -2, 7],
            vec![-7, 8],
            vec![2, 3, 8],
            vec![-8, 1, 5],
        ];
        for c in &cls {
            s.add_clause(&lits(&v, c));
        }
        assert_eq!(s.solve(), Status::Sat);
        for c in &cls {
            let sat = c.iter().any(|&i| {
                let val = s.value(v[(i.unsigned_abs() - 1) as usize]);
                (i > 0 && val == LBool::True) || (i < 0 && val == LBool::False)
            });
            assert!(sat, "clause {c:?} not satisfied");
        }
    }

    #[test]
    fn empty_clause_makes_unsat() {
        let (mut s, _v) = mk(1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), Status::Unsat);
    }

    #[test]
    fn interrupt_fires() {
        // A hard pigeonhole instance; interrupt immediately.
        let n = 8usize;
        let mut s = Solver::new();
        let mut vars = Vec::new();
        for _ in 0..(n + 1) * n {
            vars.push(s.new_var());
        }
        let p = |i: usize, j: usize| vars[i * n + j];
        for i in 0..=n {
            let c: Vec<Lit> = (0..n).map(|j| Lit::pos(p(i, j))).collect();
            s.add_clause(&c);
        }
        for j in 0..n {
            for a in 0..=n {
                for b in a + 1..=n {
                    s.add_clause(&[Lit::neg(p(a, j)), Lit::neg(p(b, j))]);
                }
            }
        }
        let status = s.solve_with(|| true);
        assert_eq!(status, Status::Interrupted);
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u32> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }
}
