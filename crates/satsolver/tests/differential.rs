//! Differential test: CDCL vs brute-force enumeration on random 3-CNF.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use satsolver::{LBool, Lit, Solver, Status, Var};

/// Brute-force satisfiability by enumerating all assignments (n ≤ 20).
fn brute_force_sat(num_vars: usize, clauses: &[Vec<i32>]) -> bool {
    assert!(num_vars <= 20);
    'assignments: for mask in 0u32..(1 << num_vars) {
        for c in clauses {
            let sat = c.iter().any(|&l| {
                let v = (l.unsigned_abs() - 1) as usize;
                let val = mask & (1 << v) != 0;
                (l > 0) == val
            });
            if !sat {
                continue 'assignments;
            }
        }
        return true;
    }
    false
}

fn run_solver(num_vars: usize, clauses: &[Vec<i32>]) -> (Status, Option<Vec<bool>>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| s.new_var()).collect();
    for c in clauses {
        let lits: Vec<Lit> = c
            .iter()
            .map(|&i| {
                let v = vars[(i.unsigned_abs() - 1) as usize];
                if i < 0 {
                    Lit::neg(v)
                } else {
                    Lit::pos(v)
                }
            })
            .collect();
        s.add_clause(&lits);
    }
    let st = s.solve();
    let model = if st == Status::Sat {
        Some(vars.iter().map(|&v| s.value(v) == LBool::True).collect())
    } else {
        None
    };
    (st, model)
}

fn random_cnf(
    rng: &mut StdRng,
    num_vars: usize,
    num_clauses: usize,
    width: usize,
) -> Vec<Vec<i32>> {
    (0..num_clauses)
        .map(|_| {
            let len = rng.random_range(1..=width);
            (0..len)
                .map(|_| {
                    let v = rng.random_range(1..=num_vars as i32);
                    if rng.random_bool(0.5) {
                        v
                    } else {
                        -v
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn cdcl_agrees_with_brute_force_on_small_formulas() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..400 {
        let n = rng.random_range(3..=10usize);
        let m = rng.random_range(1..=35usize);
        let cls = random_cnf(&mut rng, n, m, 3);
        let want = brute_force_sat(n, &cls);
        let (st, model) = run_solver(n, &cls);
        let got = st == Status::Sat;
        assert_eq!(want, got, "round {round}: n={n} m={m} cls={cls:?}");
        // Models must actually satisfy the formula.
        if let Some(model) = model {
            for c in &cls {
                let sat = c.iter().any(|&l| {
                    let val = model[(l.unsigned_abs() - 1) as usize];
                    (l > 0) == val
                });
                assert!(sat, "model violates clause {c:?}");
            }
        }
    }
}

#[test]
fn near_threshold_random_3sat() {
    // Clause/variable ratio near the phase transition (≈ 4.26) produces
    // the hardest random instances; exercises learning and restarts.
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    for round in 0..30 {
        let n = 14usize;
        let m = 60usize;
        let cls: Vec<Vec<i32>> = (0..m)
            .map(|_| {
                let mut c = Vec::new();
                while c.len() < 3 {
                    let v = rng.random_range(1..=n as i32);
                    if !c.contains(&v) && !c.contains(&-v) {
                        c.push(if rng.random_bool(0.5) { v } else { -v });
                    }
                }
                c
            })
            .collect();
        let want = brute_force_sat(n, &cls);
        let (st, _) = run_solver(n, &cls);
        assert_eq!(want, st == Status::Sat, "round {round}");
    }
}
