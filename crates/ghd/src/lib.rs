//! Balanced-separator GHD search — the workspace's stand-in for
//! **BalancedGo** (Gottlob, Okulmus, Pichler — IJCAI 2020).
//!
//! Generalized hypertree decompositions drop the special condition, so a
//! node's bag can be derived from its own λ-label alone
//! (`χ(u) = ⋃λ(u) ∩ V(C)`) — no parent/child pair search is needed. This
//! implementation searches top-down for λ-labels that are *balanced
//! separators* of the current component (every `[χ]`-component at most
//! half the size), which is both BalancedGo's signature pruning rule and
//! the termination argument.
//!
//! # Substitution caveat (see `DESIGN.md` §5)
//!
//! Exact GHD computation is NP-hard already for width 2 and BalancedGo
//! pays for exactness with subedge expansion and unrooted reassembly.
//! This crate implements the *sound* balanced rooted search without
//! subedges: every returned decomposition is a valid GHD of width ≤ k
//! (validated in tests), but the search may miss decompositions that need
//! subedge bags or middle-of-fragment separators. The harness therefore
//! treats its results as upper bounds and cross-checks optimality claims
//! against `htdsat`'s exact ghw. The practical effect — solving *fewer*
//! instances than `log-k-decomp` at higher cost — is exactly the
//! comparison shape reported in Section 5.2 of the paper.

use std::ops::ControlFlow;

use decomp::{Control, Decomposition, Fragment, Interrupted};
use hypergraph::subsets::for_each_subset_in;
use hypergraph::{
    separate_into, Edge, Hypergraph, LevelStack, Scratch, Separation, SpecialArena, Subproblem,
    VertexSet,
};

/// Result of a solve.
pub type SolveResult = Result<Option<Decomposition>, Interrupted>;

/// Decides (one-sidedly, see crate docs) `ghw(H) ≤ k`; returns a witness
/// GHD of width ≤ k when the balanced rooted search finds one.
pub fn decompose_ghd(hg: &Hypergraph, k: usize, ctrl: &Control) -> SolveResult {
    assert!(k >= 1);
    if hg.num_edges() == 0 {
        return Ok(Some(Decomposition::singleton(vec![], hg.vertex_set())));
    }
    let engine = Ghd {
        hg,
        k,
        ctrl,
        arena: SpecialArena::new(),
    };
    let sub = Subproblem::whole(hg);
    let mut scratch = GhdScratch::default();
    match engine.decompose(&sub, &hg.vertex_set(), 0, &mut scratch)? {
        Some(frag) => Ok(Some(
            frag.into_decomposition()
                .expect("the GHD search creates no special edges"),
        )),
        None => Ok(None),
    }
}

/// Smallest `k ≤ k_max` for which the search succeeds (an upper bound on
/// `ghw`, exact whenever the search is complete on the instance family).
pub fn minimal_width_ghd(
    hg: &Hypergraph,
    k_max: usize,
    ctrl: &Control,
) -> Result<Option<(usize, Decomposition)>, Interrupted> {
    for k in 1..=k_max {
        if let Some(d) = decompose_ghd(hg, k, ctrl)? {
            return Ok(Some((k, d)));
        }
    }
    Ok(None)
}

/// Per-recursion-level scratch of the GHD search: BFS workspace, the
/// `[χ]`-separation, and the per-candidate vertex-set /candidate buffers —
/// the `DetkScratch` discipline, so candidate evaluation allocates nothing
/// once a level is warm.
#[derive(Default)]
struct GhdLevel {
    bfs: Scratch,
    seps: Separation,
    /// `V(H')` of the current subproblem.
    vsub: VertexSet,
    /// `⋃λ` of the current candidate.
    union: VertexSet,
    /// `χ = ⋃λ ∩ V(H')`.
    chi: VertexSet,
    /// Connector handed to child recursions.
    conn_c: VertexSet,
    /// λ candidate edges.
    cands: Vec<Edge>,
    /// Enumeration buffer for the subset walk.
    lam_buf: Vec<Edge>,
}

/// Stack of per-level bundles, taken out while a level is active so the
/// recursion can borrow the stack freely — an instantiation of the
/// generic [`LevelStack`] take/put discipline.
type GhdScratch = LevelStack<GhdLevel>;

struct Ghd<'h> {
    hg: &'h Hypergraph,
    k: usize,
    ctrl: &'h Control,
    /// Always empty (the rooted GHD search creates no special edges);
    /// exists so `separate_into` has an arena to borrow.
    arena: SpecialArena,
}

impl Ghd<'_> {
    fn decompose(
        &self,
        sub: &Subproblem,
        conn: &VertexSet,
        depth: usize,
        scratch: &mut GhdScratch,
    ) -> Result<Option<Fragment>, Interrupted> {
        self.ctrl.checkpoint()?;
        debug_assert!(sub.specials.is_empty(), "rooted GHD search is special-free");

        if sub.edges.len() <= self.k {
            let lambda: Vec<Edge> = sub.edges.iter().collect();
            let chi = self.hg.union_of(&sub.edges);
            return Ok(Some(Fragment::leaf(lambda, chi)));
        }

        let mut lvl = scratch.take_or_default(depth);
        let result = self.decompose_level(sub, conn, depth, &mut lvl, scratch);
        scratch.put(depth, lvl);
        result
    }

    fn decompose_level(
        &self,
        sub: &Subproblem,
        conn: &VertexSet,
        depth: usize,
        lvl: &mut GhdLevel,
        scratch: &mut GhdScratch,
    ) -> Result<Option<Fragment>, Interrupted> {
        let GhdLevel {
            bfs,
            seps,
            vsub,
            union,
            chi,
            conn_c,
            cands,
            lam_buf,
        } = lvl;
        self.hg.union_of_into(&sub.edges, vsub);
        cands.clear();
        cands.extend(
            self.hg
                .edge_ids()
                .filter(|&e| self.hg.edge(e).intersects(vsub)),
        );
        let size = sub.size();

        let found = for_each_subset_in(cands, self.k, lam_buf, |lambda| {
            if let Err(e) = self.ctrl.checkpoint() {
                return ControlFlow::Break(Err(e));
            }
            self.hg.union_of_slice_into(lambda, union);
            // The fragment root must cover the interface to its parent.
            if !conn.is_subset_of(union) {
                return ControlFlow::Continue(());
            }
            chi.assign_and(union, vsub);
            separate_into(self.hg, &self.arena, sub, chi, bfs, seps);
            // BalancedGo's criterion: χ must be a balanced separator.
            if seps.components.iter().any(|c| 2 * c.size() > size) {
                return ControlFlow::Continue(());
            }
            let mut children = Vec::with_capacity(seps.components.len());
            for comp in &seps.components {
                conn_c.assign_and(&comp.vertices, chi);
                match self.decompose(comp.as_subproblem(), conn_c, depth + 1, scratch) {
                    Ok(Some(f)) => children.push(f),
                    Ok(None) => return ControlFlow::Continue(()),
                    Err(e) => return ControlFlow::Break(Err(e)),
                }
            }
            let mut frag = Fragment::leaf(lambda.to_vec(), chi.clone());
            for f in children {
                frag.attach_under(0, f);
            }
            ControlFlow::Break(Ok(frag))
        });
        match found {
            Some(Ok(f)) => Ok(Some(f)),
            Some(Err(e)) => Err(e),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate_ghd;

    fn ctrl() -> Control {
        Control::unlimited()
    }

    fn cycle(n: u32) -> Hypergraph {
        let edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
        Hypergraph::from_edge_lists(&edges)
    }

    #[test]
    fn witnesses_are_valid_ghds() {
        for n in [4u32, 6, 10] {
            let hg = cycle(n);
            let d = decompose_ghd(&hg, 2, &ctrl()).unwrap().unwrap();
            assert!(d.width() <= 2);
            validate_ghd(&hg, &d).unwrap();
        }
    }

    #[test]
    fn paths_are_width_one() {
        let hg = Hypergraph::from_edge_lists(&[vec![0, 1], vec![1, 2], vec![2, 3]]);
        let (w, d) = minimal_width_ghd(&hg, 3, &ctrl()).unwrap().unwrap();
        assert_eq!(w, 1);
        validate_ghd(&hg, &d).unwrap();
    }

    #[test]
    fn upper_bound_dominates_exact_ghw() {
        // The balanced rooted search never undercuts the exact ghw.
        for n in [5u32, 7, 9] {
            let hg = cycle(n);
            let exact = htdsat_ghw(&hg);
            let ours = minimal_width_ghd(&hg, 5, &ctrl()).unwrap().map(|(w, _)| w);
            if let Some(w) = ours {
                assert!(w >= exact, "C_{n}: ours {w} < exact {exact}");
            }
        }
    }

    fn htdsat_ghw(hg: &Hypergraph) -> usize {
        htdsat::optimal_ghw(hg, 6, &Control::unlimited())
            .unwrap()
            .unwrap()
            .0
    }

    #[test]
    fn interruption_propagates() {
        let hg = cycle(20);
        let c = Control::unlimited();
        c.cancel();
        assert!(matches!(
            decompose_ghd(&hg, 2, &c),
            Err(Interrupted::Cancelled)
        ));
    }
}
