//! Frame codec: length-prefixed, versioned, checksummed framing.
//!
//! See [`crate::proto`] for the byte-exact layout. This module owns the
//! mechanical half: building a frame around a payload and incrementally
//! decoding frames out of an arbitrary byte stream without ever
//! panicking, whatever the bytes.
//!
//! # Error discipline
//!
//! Every way a byte stream can be wrong maps to a typed [`FrameError`],
//! split by whether framing survives:
//!
//! * **Recoverable** (`is_fatal() == false`): the header was valid, so
//!   the decoder knows the frame's extent, consumes it whole, and can
//!   keep decoding the same stream. A checksum mismatch or an unknown
//!   frame kind rejects *one frame*, not the connection.
//! * **Fatal** (`is_fatal() == true`): the stream is desynchronised
//!   (bad magic, unsupported version) or refuses to fit in memory
//!   (declared length above the cap). The decoder leaves the buffer
//!   untouched; the connection must be torn down after the typed error
//!   is reported.

/// Frame magic: `b"HTDW"`.
pub const MAGIC: [u8; 4] = *b"HTDW";

/// Frame-*layout* version, written into header byte 4 of every frame.
///
/// This is deliberately distinct from the negotiated *session* version
/// ([`crate::proto::MIN_VERSION`]`..=`[`crate::proto::MAX_VERSION`]):
/// the session version governs which messages a peer may send (v2 adds
/// the `Race` job and `Raced` outcome), while this byte only changes if
/// the 16-byte header shape itself ever does. Every session version so
/// far shares frame layout 1, so mixed-version peers still frame-sync.
pub const FRAME_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;

/// Default payload cap: strict enough to bound per-connection memory,
/// loose enough for every real instance this service handles.
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Frame kinds on the wire. The numeric values are the protocol —
/// never renumber (see [`crate::proto`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server version negotiation.
    Hello = 1,
    /// Server → client negotiation acceptance.
    HelloAck = 2,
    /// Client → server job submission.
    Submit = 3,
    /// Server → client terminal verdict for a submission.
    Reply = 4,
    /// Server → client typed rejection (admission shed, malformed
    /// frame, unsupported version).
    Reject = 5,
    /// Server → client farewell before an orderly close (idle reap or
    /// drain), so clients can distinguish it from a crash.
    Goodbye = 6,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::HelloAck,
            3 => FrameKind::Submit,
            4 => FrameKind::Reply,
            5 => FrameKind::Reject,
            6 => FrameKind::Goodbye,
            _ => return None,
        })
    }
}

/// One decoded frame: kind plus verified payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the payload encodes.
    pub kind: FrameKind,
    /// Payload bytes, checksum already verified.
    pub payload: Vec<u8>,
}

/// Why a frame could not be decoded (see the module docs for the
/// fatal/recoverable split).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream does not start with [`MAGIC`] — desynchronised or not
    /// speaking this protocol at all. Fatal.
    BadMagic {
        /// The four bytes found where the magic should be.
        found: [u8; 4],
    },
    /// A frame-layout version this build does not speak. Fatal (the
    /// header shape may differ, so no resync is possible). Note this is
    /// the *layout* version ([`FRAME_VERSION`]), not the negotiated
    /// session version — session mismatches are handled politely at the
    /// message layer.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// Reserved header bytes were not zero. Fatal: a v1 peer never
    /// sends this, so the stream is desynchronised or corrupt.
    BadReserved {
        /// The reserved field's value.
        found: u16,
    },
    /// Declared payload length exceeds the cap. Fatal: honouring it
    /// would buffer unbounded attacker-controlled bytes, and skipping
    /// it cannot be trusted when the header may itself be garbage.
    TooLarge {
        /// Length the header declared.
        declared: u32,
        /// The decoder's configured cap.
        cap: u32,
    },
    /// An unknown frame kind with an otherwise valid header. The frame
    /// is consumed whole; recoverable.
    UnknownKind {
        /// The kind byte found.
        found: u8,
    },
    /// Payload bytes do not match the header checksum. The frame is
    /// consumed whole; recoverable.
    ChecksumMismatch {
        /// CRC the header declared.
        declared: u32,
        /// CRC of the bytes actually received.
        actual: u32,
    },
}

impl FrameError {
    /// Whether the stream is beyond recovery (see the module docs).
    pub fn is_fatal(&self) -> bool {
        !matches!(
            self,
            FrameError::UnknownKind { .. } | FrameError::ChecksumMismatch { .. }
        )
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { found } => write!(f, "bad frame magic {found:02x?}"),
            FrameError::BadVersion { found } => write!(f, "unsupported protocol version {found}"),
            FrameError::BadReserved { found } => {
                write!(f, "non-zero reserved header bytes {found:#06x}")
            }
            FrameError::TooLarge { declared, cap } => {
                write!(f, "declared payload {declared} B exceeds cap {cap} B")
            }
            FrameError::UnknownKind { found } => write!(f, "unknown frame kind {found}"),
            FrameError::ChecksumMismatch { declared, actual } => {
                write!(
                    f,
                    "payload checksum {actual:#010x} != declared {declared:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the payload checksum in every frame
/// header.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Encodes one frame: header (magic, version, kind, reserved, length,
/// CRC) followed by the payload.
///
/// Panics if `payload` exceeds `u32::MAX` bytes — callers cap payloads
/// far below that (see [`DEFAULT_MAX_PAYLOAD`]).
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("payload length must fit in u32");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(FRAME_VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&0u16.to_le_bytes()); // reserved
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame decoder: feed arbitrary bytes, pull verified
/// frames (or typed errors) out.
///
/// Never panics on any input. Recoverable errors consume the offending
/// frame so decoding can continue; fatal errors freeze the buffer (the
/// caller is expected to drop the connection).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes consumed from the front of `buf` (compacted lazily).
    start: usize,
    max_payload: u32,
}

impl FrameDecoder {
    /// A decoder enforcing `max_payload` as its strict size cap.
    pub fn new(max_payload: u32) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            start: 0,
            max_payload,
        }
    }

    /// Appends raw stream bytes to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by
        // HEADER_LEN + max_payload + one read's worth of bytes.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed (mid-frame when non-zero
    /// after a `next_frame` returning `Ok(None)` — torn-frame
    /// detection at EOF hinges on this).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Tries to decode the next frame. `Ok(None)` means "need more
    /// bytes"; errors follow the fatal/recoverable discipline in the
    /// module docs.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let header = &avail[..HEADER_LEN];
        if header[0..4] != MAGIC {
            return Err(FrameError::BadMagic {
                found: [header[0], header[1], header[2], header[3]],
            });
        }
        if header[4] != FRAME_VERSION {
            return Err(FrameError::BadVersion { found: header[4] });
        }
        let reserved = u16::from_le_bytes([header[6], header[7]]);
        if reserved != 0 {
            return Err(FrameError::BadReserved { found: reserved });
        }
        let declared = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if declared > self.max_payload {
            return Err(FrameError::TooLarge {
                declared,
                cap: self.max_payload,
            });
        }
        let total = HEADER_LEN + declared as usize;
        if avail.len() < total {
            return Ok(None);
        }
        // The frame's extent is known and buffered: whatever happens
        // below, consume it whole so recoverable errors skip exactly
        // one frame.
        let kind_byte = header[5];
        let crc_declared = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        let payload = avail[HEADER_LEN..total].to_vec();
        self.start += total;

        let Some(kind) = FrameKind::from_u8(kind_byte) else {
            return Err(FrameError::UnknownKind { found: kind_byte });
        };
        let actual = crc32(&payload);
        if actual != crc_declared {
            return Err(FrameError::ChecksumMismatch {
                declared: crc_declared,
                actual,
            });
        }
        Ok(Some(Frame { kind, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrip_single_frame() {
        let bytes = encode_frame(FrameKind::Submit, b"hello world");
        let mut d = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
        d.feed(&bytes);
        let f = d.next_frame().unwrap().unwrap();
        assert_eq!(f.kind, FrameKind::Submit);
        assert_eq!(f.payload, b"hello world");
        assert_eq!(d.pending(), 0);
        assert_eq!(d.next_frame().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_feeding() {
        let bytes = encode_frame(FrameKind::Reply, &[0xAB; 300]);
        let mut d = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
        for &b in &bytes[..bytes.len() - 1] {
            d.feed(&[b]);
            assert_eq!(d.next_frame().unwrap(), None, "frame complete early");
        }
        d.feed(&bytes[bytes.len() - 1..]);
        let f = d.next_frame().unwrap().unwrap();
        assert_eq!(f.payload.len(), 300);
    }

    #[test]
    fn two_frames_one_feed() {
        let mut bytes = encode_frame(FrameKind::Hello, b"a");
        bytes.extend(encode_frame(FrameKind::Goodbye, b"bb"));
        let mut d = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
        d.feed(&bytes);
        assert_eq!(d.next_frame().unwrap().unwrap().kind, FrameKind::Hello);
        assert_eq!(d.next_frame().unwrap().unwrap().kind, FrameKind::Goodbye);
        assert_eq!(d.next_frame().unwrap(), None);
    }

    #[test]
    fn checksum_mismatch_is_recoverable() {
        let mut bad = encode_frame(FrameKind::Submit, b"payload");
        let n = bad.len();
        bad[n - 1] ^= 0xFF; // corrupt the payload, not the header
        bad.extend(encode_frame(FrameKind::Submit, b"clean"));
        let mut d = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
        d.feed(&bad);
        let err = d.next_frame().unwrap_err();
        assert!(matches!(err, FrameError::ChecksumMismatch { .. }));
        assert!(!err.is_fatal());
        // The stream continues at the next frame.
        assert_eq!(d.next_frame().unwrap().unwrap().payload, b"clean");
    }

    #[test]
    fn unknown_kind_is_recoverable() {
        let mut bytes = encode_frame(FrameKind::Hello, b"x");
        bytes[5] = 0x7F;
        bytes.extend(encode_frame(FrameKind::Hello, b"y"));
        let mut d = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
        d.feed(&bytes);
        let err = d.next_frame().unwrap_err();
        assert_eq!(err, FrameError::UnknownKind { found: 0x7F });
        assert!(!err.is_fatal());
        assert_eq!(d.next_frame().unwrap().unwrap().payload, b"y");
    }

    #[test]
    fn oversize_magic_and_version_are_fatal() {
        let mut d = FrameDecoder::new(64);
        let mut big = encode_frame(FrameKind::Submit, &[0u8; 65]);
        d.feed(&big);
        let err = d.next_frame().unwrap_err();
        assert_eq!(
            err,
            FrameError::TooLarge {
                declared: 65,
                cap: 64
            }
        );
        assert!(err.is_fatal());

        let mut d = FrameDecoder::new(64);
        big[0] = b'X';
        d.feed(&big);
        assert!(d.next_frame().unwrap_err().is_fatal());

        let mut d = FrameDecoder::new(64);
        let mut vbad = encode_frame(FrameKind::Submit, b"");
        vbad[4] = 99;
        d.feed(&vbad);
        assert_eq!(
            d.next_frame().unwrap_err(),
            FrameError::BadVersion { found: 99 }
        );
    }

    #[test]
    fn pending_reports_torn_frames() {
        let bytes = encode_frame(FrameKind::Submit, b"torn off mid-flight");
        let mut d = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
        d.feed(&bytes[..bytes.len() / 2]);
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(d.pending() > 0, "a torn frame must be visible at EOF");
    }
}
