//! The framed TCP frontend over [`htdserve::Server`].
//!
//! One [`WireServer`] owns a listener, an accept loop and one handler
//! thread per live connection. Handlers are synchronous: a connection
//! carries one request at a time, and the handler blocks on the
//! service ticket while the solve runs. Robustness properties:
//!
//! * **Malformed input never panics and never widens.** Recoverable
//!   frame errors (bad checksum, unknown kind, undecodable payload)
//!   produce a typed [`WireError::Malformed`] reject and the *same*
//!   connection keeps serving; fatal errors (lost sync, oversized
//!   declaration) tear down only that one connection. The service, the
//!   executor pool and every other connection are untouched.
//! * **Deadlines everywhere.** Reads run under a short `SO_RCVTIMEO`
//!   tick so handlers observe shutdown promptly; connections idle past
//!   [`WireConfig::idle_timeout`] are reaped with a polite
//!   [`Message::Goodbye`].
//! * **Graceful degradation.** Admission failures surface as typed
//!   wire errors — [`WireError::Overloaded`] carries a retry-after
//!   hint, [`WireError::Expired`] the remaining budget,
//!   [`WireError::ShuttingDown`] the drain state — so clients can
//!   distinguish "back off" from "give up".
//! * **Clean endings.** [`WireServer::shutdown`] cancels in-flight
//!   work through the service's root control; [`WireServer::drain`]
//!   lets it finish. Both join every thread and return a final
//!   [`WireReport`] even with clients still attached.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use decomp::Interrupted;
use htdserve::{Job, Outcome, Rejected, Request, Server, ServerConfig, ServiceStats};
use hypergraph::Hypergraph;

use crate::codec::{FrameDecoder, FrameError};
use crate::net;
use crate::proto::{
    GoodbyeReason, Message, WireDecomp, WireError, WireInterrupt, WireJob, WireOutcome,
    MAX_VERSION, MIN_VERSION, NO_REQUEST, RACE_VERSION,
};

/// Largest vertex id a `Submit` may mention. Edge lists are index-based,
/// so a single absurd id would otherwise make the server allocate a
/// universe-sized bitset. Instances this large are far beyond what the
/// solvers handle anyway.
pub const MAX_VERTEX_ID: u32 = 1 << 20;

/// Largest number of edges a `Submit` may carry (same rationale).
pub const MAX_EDGES: u32 = 1 << 20;

/// Configuration for [`WireServer::start`].
#[derive(Clone, Debug)]
pub struct WireConfig {
    /// The backing decomposition service.
    pub service: ServerConfig,
    /// Live-connection cap; further connects are refused with
    /// [`WireError::Overloaded`].
    pub max_connections: usize,
    /// Connections with no traffic for this long get a
    /// [`GoodbyeReason::Idle`] and are closed.
    pub idle_timeout: Duration,
    /// Granularity of handler reads (`SO_RCVTIMEO`); bounds how fast
    /// handlers notice shutdown and idle expiry.
    pub read_tick: Duration,
    /// Per-frame payload cap enforced by the decoder.
    pub max_payload: u32,
    /// Backoff hint attached to [`WireError::Overloaded`] rejects.
    pub retry_after_ms: u32,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            service: ServerConfig::default(),
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            read_tick: Duration::from_millis(20),
            max_payload: crate::codec::DEFAULT_MAX_PAYLOAD,
            retry_after_ms: 10,
        }
    }
}

/// Wire-level counters (the service keeps its own [`ServiceStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Connections accepted and handed to a handler.
    pub connections_accepted: u64,
    /// Connections refused at the live-connection cap.
    pub connections_refused: u64,
    /// Connections torn down by a fatal framing error.
    pub connections_torn: u64,
    /// Connections reaped for idleness.
    pub idle_reaped: u64,
    /// Recoverable malformed frames rejected (connection survived).
    pub frames_rejected: u64,
    /// Requests answered with a [`Message::Reply`].
    pub replies_sent: u64,
    /// Replies carrying a portfolio-race verdict ([`WireOutcome::Raced`]);
    /// a subset of `replies_sent`. Per-engine win counts live in the
    /// service's [`ServiceStats::races_won_by`].
    pub race_replies_sent: u64,
    /// Requests answered with a [`Message::Reject`].
    pub rejects_sent: u64,
}

/// Final accounting returned by [`WireServer::shutdown`] / [`drain`](WireServer::drain).
#[derive(Clone, Debug)]
pub struct WireReport {
    /// The backing service's counters (admission invariants included).
    pub service: ServiceStats,
    /// The frontend's counters.
    pub wire: WireStats,
}

#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_refused: AtomicU64,
    connections_torn: AtomicU64,
    idle_reaped: AtomicU64,
    frames_rejected: AtomicU64,
    replies_sent: AtomicU64,
    race_replies_sent: AtomicU64,
    rejects_sent: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> WireStats {
        WireStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            connections_torn: self.connections_torn.load(Ordering::Relaxed),
            idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
            frames_rejected: self.frames_rejected.load(Ordering::Relaxed),
            replies_sent: self.replies_sent.load(Ordering::Relaxed),
            race_replies_sent: self.race_replies_sent.load(Ordering::Relaxed),
            rejects_sent: self.rejects_sent.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    svc: Server,
    stopping: AtomicBool,
    draining: AtomicBool,
    live: AtomicU64,
    idle_timeout: Duration,
    read_tick: Duration,
    max_payload: u32,
    max_connections: usize,
    retry_after_ms: u32,
    counters: Counters,
}

/// The TCP frontend. See the [module docs](self) for the guarantees.
pub struct WireServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// service plus the accept loop.
    pub fn start<A: ToSocketAddrs>(addr: A, cfg: WireConfig) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            svc: Server::start(cfg.service),
            stopping: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            live: AtomicU64::new(0),
            idle_timeout: cfg.idle_timeout,
            read_tick: cfg.read_tick,
            max_payload: cfg.max_payload,
            max_connections: cfg.max_connections,
            retry_after_ms: cfg.retry_after_ms,
            counters: Counters::default(),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("wire-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &handlers))
                .expect("spawn accept thread")
        };
        Ok(WireServer {
            shared,
            addr,
            accept: Some(accept),
            handlers,
        })
    }

    /// The bound address (resolved, so tests can connect to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live wire-level counters.
    pub fn wire_stats(&self) -> WireStats {
        self.shared.counters.snapshot()
    }

    /// Live service counters.
    pub fn service_stats(&self) -> ServiceStats {
        self.shared.svc.stats()
    }

    /// Stops accepting, cancels in-flight work, answers attached
    /// clients ([`Outcome::Cancelled`]/[`Outcome::TimedOut`] replies and
    /// a goodbye), joins every thread.
    pub fn shutdown(mut self) -> WireReport {
        self.halt(true)
    }

    /// Stops accepting and lets in-flight and queued work finish;
    /// attached clients get their replies, then a goodbye.
    pub fn drain(mut self) -> WireReport {
        self.halt(false)
    }

    fn halt(&mut self, cancel: bool) -> WireReport {
        self.shared.draining.store(true, Ordering::Release);
        if cancel {
            // Cancel first so handlers blocked in `ticket.wait()` come
            // back promptly with a terminal outcome.
            self.shared.svc.begin_shutdown();
        } else {
            self.shared.svc.begin_drain();
        }
        self.shared.stopping.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let drained: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.handlers.lock().expect("handler registry"));
        for h in drained {
            let _ = h.join();
        }
        let service = self.shared.svc.halt(cancel);
        WireReport {
            service,
            wire: self.shared.counters.snapshot(),
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            let _ = self.halt(true);
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.stopping.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if net::accept_fault(&stream, "wire/accept") {
                    continue;
                }
                if shared.live.load(Ordering::Acquire) >= shared.max_connections as u64 {
                    shared
                        .counters
                        .connections_refused
                        .fetch_add(1, Ordering::Relaxed);
                    refuse(stream, shared);
                    continue;
                }
                shared.live.fetch_add(1, Ordering::AcqRel);
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                let sh = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("wire-conn".into())
                    .spawn(move || {
                        handle_connection(&sh, stream);
                        sh.live.fetch_sub(1, Ordering::AcqRel);
                    })
                    .expect("spawn connection handler");
                let mut reg = handlers.lock().expect("handler registry");
                // Opportunistically reap finished handlers so the
                // registry stays proportional to live connections.
                let mut kept = Vec::with_capacity(reg.len() + 1);
                for h in reg.drain(..) {
                    if h.is_finished() {
                        let _ = h.join();
                    } else {
                        kept.push(h);
                    }
                }
                kept.push(handle);
                *reg = kept;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Over-capacity farewell: a typed overload reject, then close.
fn refuse(mut stream: TcpStream, shared: &Shared) {
    let msg = Message::Reject {
        id: NO_REQUEST,
        error: WireError::Overloaded {
            queue_depth: shared.max_connections as u32,
            retry_after_ms: shared.retry_after_ms,
        },
    };
    let _ = net::write_frame(&mut stream, &msg.encode_frame(), "wire/server/write");
}

fn send(stream: &mut TcpStream, msg: &Message) -> io::Result<()> {
    net::write_frame(stream, &msg.encode_frame(), "wire/server/write")
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.read_tick));
    let mut decoder = FrameDecoder::new(shared.max_payload);
    let mut buf = [0u8; 8192];
    let mut last_activity = Instant::now();
    let mut version: Option<u8> = None;

    loop {
        if shared.stopping.load(Ordering::Acquire) {
            let _ = send(
                &mut stream,
                &Message::Goodbye {
                    reason: GoodbyeReason::ShuttingDown,
                },
            );
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                last_activity = Instant::now();
                decoder.feed(&buf[..n]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() >= shared.idle_timeout {
                    shared.counters.idle_reaped.fetch_add(1, Ordering::Relaxed);
                    let _ = send(
                        &mut stream,
                        &Message::Goodbye {
                            reason: GoodbyeReason::Idle,
                        },
                    );
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        loop {
            match decoder.next_frame() {
                Ok(None) => break,
                Ok(Some(frame)) => match Message::decode_payload(frame.kind, &frame.payload) {
                    Ok(msg) => {
                        if !dispatch(shared, &mut stream, &mut version, msg) {
                            return;
                        }
                    }
                    Err(e) => {
                        // The frame itself was sound, so the stream is
                        // still in sync: reject just this message.
                        shared
                            .counters
                            .frames_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        let reject = Message::Reject {
                            id: NO_REQUEST,
                            error: WireError::Malformed {
                                detail: e.to_string(),
                            },
                        };
                        if send(&mut stream, &reject).is_err() {
                            return;
                        }
                    }
                },
                Err(e) if !e.is_fatal() => {
                    shared
                        .counters
                        .frames_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    let reject = Message::Reject {
                        id: NO_REQUEST,
                        error: WireError::Malformed {
                            detail: e.to_string(),
                        },
                    };
                    if send(&mut stream, &reject).is_err() {
                        return;
                    }
                }
                Err(e) => {
                    // Desync or oversize: this connection is done, but
                    // only this connection. Best-effort typed farewell.
                    shared
                        .counters
                        .connections_torn
                        .fetch_add(1, Ordering::Relaxed);
                    let error = match e {
                        FrameError::TooLarge { declared, cap } => {
                            WireError::TooLarge { declared, cap }
                        }
                        other => WireError::Malformed {
                            detail: other.to_string(),
                        },
                    };
                    let _ = send(
                        &mut stream,
                        &Message::Reject {
                            id: NO_REQUEST,
                            error,
                        },
                    );
                    return;
                }
            }
        }
    }
}

/// Handles one decoded message. Returns `false` when the connection
/// should close.
fn dispatch(
    shared: &Shared,
    stream: &mut TcpStream,
    version: &mut Option<u8>,
    msg: Message,
) -> bool {
    match msg {
        Message::Hello {
            min_version,
            max_version,
        } => {
            let lo = min_version.max(MIN_VERSION);
            let hi = max_version.min(MAX_VERSION);
            if lo <= hi {
                *version = Some(hi);
                send(stream, &Message::HelloAck { version: hi }).is_ok()
            } else {
                let _ = send(
                    stream,
                    &Message::Reject {
                        id: NO_REQUEST,
                        error: WireError::Unsupported {
                            server_min: MIN_VERSION,
                            server_max: MAX_VERSION,
                        },
                    },
                );
                false
            }
        }
        Message::Submit {
            id,
            job,
            deadline_ms,
            idempotent: _,
            edges,
        } => {
            let reply = serve_submit(shared, *version, id, job, deadline_ms, &edges);
            match &reply {
                Message::Reply { outcome, .. } => {
                    shared.counters.replies_sent.fetch_add(1, Ordering::Relaxed);
                    if matches!(outcome, WireOutcome::Raced { .. }) {
                        shared
                            .counters
                            .race_replies_sent
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => {
                    shared.counters.rejects_sent.fetch_add(1, Ordering::Relaxed);
                }
            };
            send(stream, &reply).is_ok()
        }
        Message::Goodbye { .. } => false,
        // A server-role frame arriving at the server is nonsense, but
        // it was well-framed: reject it and keep the connection.
        Message::HelloAck { .. } | Message::Reply { .. } | Message::Reject { .. } => {
            shared
                .counters
                .frames_rejected
                .fetch_add(1, Ordering::Relaxed);
            send(
                stream,
                &Message::Reject {
                    id: NO_REQUEST,
                    error: WireError::Malformed {
                        detail: "unexpected client frame kind".into(),
                    },
                },
            )
            .is_ok()
        }
    }
}

/// Admission + execution for one `Submit`; always returns the message
/// to write back.
fn serve_submit(
    shared: &Shared,
    version: Option<u8>,
    id: u64,
    job: WireJob,
    deadline_ms: Option<u64>,
    edges: &[Vec<u32>],
) -> Message {
    let Some(version) = version else {
        return Message::Reject {
            id,
            error: WireError::Malformed {
                detail: "submit before hello".into(),
            },
        };
    };
    // Race submits decode on any session (decoding is version-blind)
    // but only *run* on sessions that negotiated v2: a v1 peer that
    // sends one is confused, and the reject's version range tells it
    // the fix is renegotiation, not a different request.
    if matches!(job, WireJob::Race { .. }) && version < RACE_VERSION {
        return Message::Reject {
            id,
            error: WireError::Unsupported {
                server_min: MIN_VERSION,
                server_max: MAX_VERSION,
            },
        };
    }
    if shared.draining.load(Ordering::Acquire) {
        return Message::Reject {
            id,
            error: WireError::ShuttingDown,
        };
    }
    if edges.len() as u64 > MAX_EDGES as u64 {
        return Message::Reject {
            id,
            error: WireError::Malformed {
                detail: format!("{} edges exceeds cap {MAX_EDGES}", edges.len()),
            },
        };
    }
    for e in edges {
        if let Some(&v) = e.iter().max() {
            if v > MAX_VERTEX_ID {
                return Message::Reject {
                    id,
                    error: WireError::Malformed {
                        detail: format!("vertex id {v} exceeds cap {MAX_VERTEX_ID}"),
                    },
                };
            }
        }
    }
    let hg = Arc::new(Hypergraph::from_edge_lists(edges));
    let mut req = Request {
        hg,
        job: match job {
            WireJob::Decide { k } => Job::Decide { k: k as usize },
            WireJob::MinimalWidth { k_max } => Job::MinimalWidth {
                k_max: k_max as usize,
            },
            WireJob::Race { k } => Job::Race { k: k as usize },
        },
        deadline: None,
    };
    if let Some(ms) = deadline_ms {
        req = req.with_deadline(Duration::from_millis(ms));
    }
    match shared.svc.submit(req) {
        Ok(ticket) => {
            let resp = ticket.wait();
            Message::Reply {
                id,
                outcome: wire_outcome(resp.outcome),
                queue_wait_ns: resp.queue_wait.as_nanos() as u64,
                solve_ns: resp.solve_time.as_nanos() as u64,
                retries: resp.retries,
            }
        }
        Err(rej) => Message::Reject {
            id,
            error: match rej {
                Rejected::Overloaded { queue_depth } => WireError::Overloaded {
                    queue_depth: queue_depth as u32,
                    retry_after_ms: shared.retry_after_ms,
                },
                Rejected::Expired { remaining } => WireError::Expired {
                    remaining_us: remaining.as_micros() as u64,
                },
                Rejected::ShuttingDown => WireError::ShuttingDown,
            },
        },
    }
}

fn wire_outcome(outcome: Outcome) -> WireOutcome {
    match outcome {
        Outcome::Decided { k, witness } => WireOutcome::Decided {
            k: k as u32,
            witness: witness.as_ref().map(WireDecomp::from_decomposition),
        },
        Outcome::Width(b) => WireOutcome::Width {
            proven_lower: b.proven_lower as u32,
            best_upper: b.best_upper.map(|u| u as u32),
            witness: b.witness.as_ref().map(WireDecomp::from_decomposition),
            interrupted: b.interrupted.map(|i| match i {
                Interrupted::Timeout => WireInterrupt::Timeout,
                Interrupted::Cancelled => WireInterrupt::Cancelled,
            }),
        },
        Outcome::TimedOut => WireOutcome::TimedOut,
        Outcome::Cancelled => WireOutcome::Cancelled,
        Outcome::Panicked { message } => WireOutcome::Panicked { message },
        Outcome::Raced { k, winner, witness } => WireOutcome::Raced {
            k: k as u32,
            winner: winner.index() as u8,
            witness: witness.as_ref().map(WireDecomp::from_decomposition),
        },
    }
}
