//! The retrying wire client.
//!
//! [`WireClient::request`] runs one job to a verdict across connection
//! failures and server backpressure:
//!
//! * **Jittered exponential backoff.** Retryable failures wait
//!   `random(0 ..= base·2^attempt)` (full jitter, capped), never less
//!   than the server's `retry_after_ms` hint when one came with an
//!   [`WireError::Overloaded`] reject.
//! * **Bounded retries.** At most [`ClientConfig::max_attempts`]
//!   attempts; terminal rejections ([`WireError::is_backpressure`]
//!   `== false`) stop immediately.
//! * **Idempotency honesty.** If a connection dies *after* the submit
//!   frame was (possibly partially) written and the job was marked
//!   non-idempotent, the client refuses to blind-retry and returns
//!   [`ClientError::Ambiguous`] — the server may or may not have run
//!   it. Idempotent jobs (all decomposition queries are) retry freely.
//! * **Hedged resubmission.** With [`ClientConfig::hedge_after`] set,
//!   an idempotent request that hasn't answered within the hedge delay
//!   is raced by a second, independent attempt; first verdict wins.
//!   Non-idempotent jobs are never hedged. (Duplicated work is cheap
//!   server-side: the service canonicalises content-equal instances,
//!   so the loser mostly hits warm tables.)

use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::codec::FrameDecoder;
use crate::net;
use crate::proto::{
    Message, WireError, WireJob, WireOutcome, MAX_VERSION, MIN_VERSION, RACE_VERSION,
};

/// Configuration for [`WireClient`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Read poll granularity while waiting for frames.
    pub read_tick: Duration,
    /// Per-attempt cap on waiting for the verdict once submitted.
    /// `None` trusts the server's deadline handling (recommended when
    /// requests carry deadlines).
    pub reply_timeout: Option<Duration>,
    /// Total attempts (first try included) before giving up.
    pub max_attempts: u32,
    /// Base of the exponential backoff.
    pub base_backoff: Duration,
    /// Cap on a single backoff sleep.
    pub max_backoff: Duration,
    /// Hedge delay: race a second attempt for idempotent requests that
    /// haven't answered within this long. `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Decoder payload cap (must be ≥ the server's replies).
    pub max_payload: u32,
    /// Seed for backoff jitter (deterministic per client).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_tick: Duration::from_millis(10),
            reply_timeout: None,
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            hedge_after: None,
            max_payload: crate::codec::DEFAULT_MAX_PAYLOAD,
            seed: 0x5eed_cafe,
        }
    }
}

/// One job to run over the wire.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// What to compute.
    pub job: WireJob,
    /// The instance as vertex-index edge lists.
    pub edges: Vec<Vec<u32>>,
    /// Deadline budget, measured from server admission.
    pub deadline: Option<Duration>,
    /// Whether blind retry/hedging is safe. Decomposition queries are
    /// pure, so this defaults to `true`; flip it to model effectful
    /// requests and exercise the ambiguity path.
    pub idempotent: bool,
}

impl JobSpec {
    /// A `hw(H) ≤ k` decision for the instance given as edge lists.
    pub fn decide(edges: Vec<Vec<u32>>, k: u32) -> Self {
        JobSpec {
            job: WireJob::Decide { k },
            edges,
            deadline: None,
            idempotent: true,
        }
    }

    /// A minimal-width sweep up to `k_max`.
    pub fn minimal_width(edges: Vec<Vec<u32>>, k_max: u32) -> Self {
        JobSpec {
            job: WireJob::MinimalWidth { k_max },
            edges,
            deadline: None,
            idempotent: true,
        }
    }

    /// A portfolio-race decision of `hw(H) ≤ k` (needs a v2 server;
    /// against a v1 server the request fails with a terminal
    /// [`WireError::Unsupported`] rejection instead of being sent).
    /// Races are pure decisions, so blind retry and hedging are safe.
    pub fn race(edges: Vec<Vec<u32>>, k: u32) -> Self {
        JobSpec {
            job: WireJob::Race { k },
            edges,
            deadline: None,
            idempotent: true,
        }
    }

    /// Caps the request at `budget` from server admission.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Marks the job unsafe to blind-retry (see [`ClientError::Ambiguous`]).
    pub fn non_idempotent(mut self) -> Self {
        self.idempotent = false;
        self
    }
}

/// A verdict, with both server- and client-side accounting.
#[derive(Clone, Debug)]
pub struct ClientReply {
    /// The verdict.
    pub outcome: WireOutcome,
    /// Server-side queue wait.
    pub queue_wait: Duration,
    /// Server-side solve time.
    pub solve_time: Duration,
    /// Contained-panic re-executions the server consumed.
    pub server_retries: u32,
    /// Connection/submit attempts this client made (1 = first try won).
    pub attempts: u32,
    /// Whether the hedge (not the primary) produced this verdict.
    pub hedged: bool,
}

/// Why [`WireClient::request`] gave up.
#[derive(Clone, Debug)]
pub enum ClientError {
    /// Terminal rejection from the server.
    Rejected(WireError),
    /// The peer broke protocol (bad frame, wrong id, wrong kind).
    Protocol(String),
    /// A non-idempotent submit may or may not have executed; the
    /// client refuses to guess.
    Ambiguous {
        /// Attempts made before ambiguity stopped the retry loop.
        attempts: u32,
    },
    /// All attempts failed with retryable errors.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// Description of the final failure.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Rejected(e) => write!(f, "rejected: {e}"),
            ClientError::Protocol(s) => write!(f, "protocol violation: {s}"),
            ClientError::Ambiguous { attempts } => write!(
                f,
                "non-idempotent request outcome unknown after {attempts} attempt(s)"
            ),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// What one attempt produced (internal).
enum AttemptError {
    /// Server said no, typed.
    Reject(WireError),
    /// Transport failed; `submitted` = the submit frame had (possibly
    /// partially) left the client.
    Io { submitted: bool, err: io::Error },
    /// Peer broke protocol — not retryable.
    Protocol(String),
}

struct Inner {
    addr: SocketAddr,
    cfg: ClientConfig,
    rng: Mutex<StdRng>,
    next_id: AtomicU64,
}

/// The retrying client. Cheap to clone handles are not provided —
/// wrap in `Arc` to share, or create one per thread (connections are
/// per-request anyway).
pub struct WireClient {
    inner: Arc<Inner>,
}

impl WireClient {
    /// A client for the server at `addr`.
    pub fn new(addr: SocketAddr, cfg: ClientConfig) -> WireClient {
        WireClient {
            inner: Arc::new(Inner {
                addr,
                cfg: ClientConfig {
                    max_attempts: cfg.max_attempts.max(1),
                    ..cfg
                },
                rng: Mutex::new(StdRng::seed_from_u64(cfg.seed)),
                next_id: AtomicU64::new(1),
            }),
        }
    }

    /// Runs `spec` to a verdict, retrying and (if configured) hedging.
    pub fn request(&self, spec: JobSpec) -> Result<ClientReply, ClientError> {
        match self.inner.cfg.hedge_after {
            Some(delay) if spec.idempotent => self.request_hedged(spec, delay),
            _ => self.inner.retry_loop(&spec).map(|mut r| {
                r.hedged = false;
                r
            }),
        }
    }

    /// Races a second attempt after `delay`; first verdict wins. The
    /// loser keeps running detached (its reply is discarded). Hedging
    /// covers *slowness*; outright failures are the retry loop's job —
    /// a primary that fails before the hedge delay elapses just
    /// reports its error.
    fn request_hedged(&self, spec: JobSpec, delay: Duration) -> Result<ClientReply, ClientError> {
        let (tx, rx) = mpsc::channel::<(bool, Result<ClientReply, ClientError>)>();
        let spawn_racer = |hedged: bool| {
            let inner = Arc::clone(&self.inner);
            let spec = spec.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                let _ = tx.send((hedged, inner.retry_loop(&spec)));
            });
        };
        spawn_racer(false);
        let (first, racers) = match rx.recv_timeout(delay) {
            Ok(res) => (res, 1),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                spawn_racer(true);
                let res = rx.recv().expect("a racer always reports");
                (res, 2)
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("tx is still held by this frame")
            }
        };
        match first {
            (who, Ok(mut reply)) => {
                reply.hedged = who;
                Ok(reply)
            }
            (_, Err(first_err)) if racers == 2 => {
                // First finisher failed but a second racer is live: its
                // verdict decides.
                match rx.recv().expect("second racer always reports") {
                    (who, Ok(mut reply)) => {
                        reply.hedged = who;
                        Ok(reply)
                    }
                    (_, Err(_)) => Err(first_err),
                }
            }
            (_, Err(first_err)) => Err(first_err),
        }
    }
}

impl Inner {
    fn retry_loop(&self, spec: &JobSpec) -> Result<ClientReply, ClientError> {
        let mut last = String::from("no attempt made");
        let mut attempt = 0u32;
        while attempt < self.cfg.max_attempts {
            attempt += 1;
            match self.attempt(spec) {
                Ok((outcome, queue_wait, solve_time, server_retries)) => {
                    return Ok(ClientReply {
                        outcome,
                        queue_wait,
                        solve_time,
                        server_retries,
                        attempts: attempt,
                        hedged: false,
                    })
                }
                Err(AttemptError::Reject(e)) if e.is_backpressure() => {
                    let hint = match &e {
                        WireError::Overloaded { retry_after_ms, .. } => {
                            Duration::from_millis(*retry_after_ms as u64)
                        }
                        _ => Duration::ZERO,
                    };
                    last = format!("backpressure: {e}");
                    if attempt < self.cfg.max_attempts {
                        std::thread::sleep(self.backoff(attempt, hint));
                    }
                }
                Err(AttemptError::Reject(e)) => return Err(ClientError::Rejected(e)),
                Err(AttemptError::Io { submitted, err }) => {
                    if submitted && !spec.idempotent {
                        return Err(ClientError::Ambiguous { attempts: attempt });
                    }
                    last = format!("transport: {err}");
                    if attempt < self.cfg.max_attempts {
                        std::thread::sleep(self.backoff(attempt, Duration::ZERO));
                    }
                }
                Err(AttemptError::Protocol(s)) => return Err(ClientError::Protocol(s)),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: attempt,
            last,
        })
    }

    /// Full-jitter exponential backoff, floored at the server's hint.
    fn backoff(&self, attempt: u32, hint: Duration) -> Duration {
        let exp = self
            .cfg
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.cfg.max_backoff);
        let jittered = {
            let mut rng = self.rng.lock().expect("rng");
            Duration::from_nanos(rng.random_range(0..=exp.as_nanos() as u64))
        };
        jittered.max(hint)
    }

    /// One connect → hello → submit → reply cycle.
    #[allow(clippy::type_complexity)]
    fn attempt(
        &self,
        spec: &JobSpec,
    ) -> Result<(WireOutcome, Duration, Duration, u32), AttemptError> {
        let io_err = |submitted: bool| move |err: io::Error| AttemptError::Io { submitted, err };
        let stream = TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout)
            .map_err(io_err(false))?;
        stream.set_nodelay(true).map_err(io_err(false))?;
        stream
            .set_read_timeout(Some(self.cfg.read_tick))
            .map_err(io_err(false))?;
        let mut conn = Conn {
            stream,
            decoder: FrameDecoder::new(self.cfg.max_payload),
            tick: self.cfg.read_tick,
        };

        // Version handshake.
        let hello = Message::Hello {
            min_version: MIN_VERSION,
            max_version: MAX_VERSION,
        };
        conn.write(&hello).map_err(io_err(false))?;
        match conn.read_message(None).map_err(io_err(false))? {
            Message::HelloAck { version } if (MIN_VERSION..=MAX_VERSION).contains(&version) => {
                // Never send a job the negotiated session can't carry:
                // a v1 server would reject a Race submit anyway, so
                // fail it here as the same terminal rejection.
                if matches!(spec.job, WireJob::Race { .. }) && version < RACE_VERSION {
                    return Err(AttemptError::Reject(WireError::Unsupported {
                        server_min: version,
                        server_max: version,
                    }));
                }
            }
            Message::HelloAck { version } => {
                return Err(AttemptError::Protocol(format!(
                    "server acked unoffered version {version}"
                )))
            }
            Message::Reject { error, .. } => return Err(AttemptError::Reject(error)),
            other => {
                return Err(AttemptError::Protocol(format!(
                    "expected HelloAck, got {:?}",
                    other.kind()
                )))
            }
        }

        // Submit. From the first byte written, the server may have the
        // request: any later transport failure is ambiguous.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let submit = Message::Submit {
            id,
            job: spec.job,
            deadline_ms: spec.deadline.map(|d| d.as_millis().max(1) as u64),
            idempotent: spec.idempotent,
            edges: spec.edges.clone(),
        };
        conn.write(&submit).map_err(io_err(true))?;

        let wait_cap = self.cfg.reply_timeout;
        match conn.read_message(wait_cap).map_err(io_err(true))? {
            Message::Reply {
                id: rid,
                outcome,
                queue_wait_ns,
                solve_ns,
                retries,
            } => {
                if rid != id {
                    return Err(AttemptError::Protocol(format!(
                        "reply for id {rid}, expected {id}"
                    )));
                }
                Ok((
                    outcome,
                    Duration::from_nanos(queue_wait_ns),
                    Duration::from_nanos(solve_ns),
                    retries,
                ))
            }
            Message::Reject { id: rid, error } => {
                if rid != id && rid != crate::proto::NO_REQUEST {
                    return Err(AttemptError::Protocol(format!(
                        "reject for id {rid}, expected {id}"
                    )));
                }
                Err(AttemptError::Reject(error))
            }
            Message::Goodbye { .. } => {
                // The server is closing without answering; whether
                // the job ran is unknown → transport-class failure.
                Err(AttemptError::Io {
                    submitted: true,
                    err: io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "server said goodbye before replying",
                    ),
                })
            }
            other => Err(AttemptError::Protocol(format!(
                "unexpected frame {:?} while awaiting reply",
                other.kind()
            ))),
        }
    }
}

/// One live connection: a stream plus its frame decoder.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    tick: Duration,
}

impl Conn {
    fn write(&mut self, msg: &Message) -> io::Result<()> {
        net::write_frame(&mut self.stream, &msg.encode_frame(), "wire/client/write")
    }

    /// Blocks (in `tick` steps) until one whole message arrives.
    /// `cap` bounds the total wait when `Some`.
    fn read_message(&mut self, cap: Option<Duration>) -> io::Result<Message> {
        let start = Instant::now();
        let mut buf = [0u8; 8192];
        loop {
            match self.decoder.next_frame() {
                Ok(Some(frame)) => {
                    return Message::decode_payload(frame.kind, &frame.payload).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("undecodable frame from server: {e}"),
                        )
                    })
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad frame from server: {e}"),
                    ))
                }
            }
            if let Some(cap) = cap {
                if start.elapsed() >= cap {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no reply within the per-attempt cap",
                    ));
                }
            }
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        if self.decoder.pending() > 0 {
                            "connection closed mid-frame"
                        } else {
                            "connection closed"
                        },
                    ))
                }
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Tick elapsed; loop re-checks the cap.
                    let _ = self.tick;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}
