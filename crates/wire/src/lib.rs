//! `htdwire` — a hardened TCP wire protocol for the decomposition
//! service.
//!
//! Three layers, bottom-up:
//!
//! * [`codec`] — length-prefixed, versioned, checksummed frames with a
//!   strict size cap and an incremental decoder whose errors split into
//!   *recoverable* (reject the frame, keep the connection) and *fatal*
//!   (close this one connection). No input makes it panic.
//! * [`proto`] — the message layer: job submission, typed verdicts,
//!   typed rejections, version negotiation and farewells, with the full
//!   protocol specification in the module docs.
//! * [`server`] / [`client`] — a [`WireServer`] frontend that puts
//!   [`htdserve::Server`] on a socket (per-connection deadlines, idle
//!   reaping, graceful drain), and a [`WireClient`] that retries with
//!   jittered exponential backoff, honors server overload hints, and
//!   hedges idempotent requests.
//!
//! Under `--features fault-injection`, [`net`] wires
//! [`decomp::faults::take_net`] chaos plans (mid-frame disconnects,
//! slow-loris dribbles, stalled accepts) into every socket operation so
//! the fault suite can prove the blast-radius claims deterministically.

pub mod client;
pub mod codec;
pub mod net;
pub mod proto;
pub mod server;

pub use client::{ClientConfig, ClientError, ClientReply, JobSpec, WireClient};
pub use codec::{Frame, FrameDecoder, FrameError, FrameKind, DEFAULT_MAX_PAYLOAD, FRAME_VERSION};
pub use proto::{
    GoodbyeReason, Message, WireDecomp, WireError, WireInterrupt, WireJob, WireOutcome,
    MAX_VERSION, MIN_VERSION, RACE_VERSION,
};
pub use server::{WireConfig, WireReport, WireServer, WireStats};
