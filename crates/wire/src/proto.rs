//! Protocol specification and message codecs.
//!
//! # `htdwire` protocol, versions 1–2
//!
//! A connection carries a bidirectional stream of *frames* over TCP.
//! All integers are **little-endian**; there is no padding.
//!
//! Version 2 adds portfolio racing: the `Race` job (Submit job tag 2)
//! and the `Raced` reply outcome (tag 5). Everything else is identical
//! to version 1, including the frame layout.
//!
//! ## Frame layout
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     4  magic, ASCII "HTDW"
//!      4     1  frame-layout version (1 for every session version)
//!      5     1  frame kind (table below)
//!      6     2  reserved, must be zero
//!      8     4  payload length N (u32; strict cap, default 16 MiB)
//!     12     4  CRC-32 (IEEE 802.3) of the payload bytes
//!     16     N  payload
//! ```
//!
//! Header byte 4 is the *layout* version ([`crate::codec::FRAME_VERSION`]),
//! not the negotiated session version: it only changes if the header
//! shape itself does, so v1 and v2 peers always stay frame-synchronised
//! and version mismatches surface as polite message-level rejects
//! instead of torn connections.
//!
//! | kind | name       | direction | payload |
//! |------|------------|-----------|---------|
//! | 1    | `Hello`    | C → S     | `min_version: u8, max_version: u8` |
//! | 2    | `HelloAck` | S → C     | `version: u8` |
//! | 3    | `Submit`   | C → S     | see *Submit payload* |
//! | 4    | `Reply`    | S → C     | see *Reply payload* |
//! | 5    | `Reject`   | S → C     | `id: u64, error` (see *Error codes*) |
//! | 6    | `Goodbye`  | S → C     | `reason: u8` (0 idle, 1 shutting down) |
//!
//! ## Version negotiation
//!
//! The client's first frame MUST be `Hello` carrying the inclusive
//! range of versions it speaks. The server answers `HelloAck` with the
//! highest version inside the intersection, or `Reject` with error
//! code 6 (`Unsupported`, carrying the server's own range) and closes.
//! Every subsequent frame on the connection uses the agreed version.
//! A `Submit` before `Hello` is rejected as `Malformed`; a `Race`
//! submit on a session that negotiated version 1 is rejected as
//! `Unsupported` (the payload still *decodes* — decoding is
//! version-blind — but the server refuses to run it).
//!
//! ## Submit payload
//!
//! ```text
//! id: u64            client-chosen correlation id, echoed in the reply
//! flags: u8          bit 0: idempotent (safe to retry/hedge blindly)
//! job: u8            0 = Decide, 1 = MinimalWidth, 2 = Race (v2+)
//! k: u32             width to decide / largest width to sweep
//! deadline_ms: u64   0 = no deadline, else budget from server receipt
//! num_edges: u32     hypergraph as plain vertex-index edge lists
//! repeat num_edges:  { arity: u32, vertices: u32 × arity }
//! ```
//!
//! `Race` decides `hw(H) ≤ k` like `Decide`, but by racing the
//! server's whole algorithm portfolio; the reply names the winning
//! engine.
//!
//! ## Reply payload
//!
//! ```text
//! id: u64            echoed correlation id
//! queue_wait_ns: u64 server-side queue wait
//! solve_ns: u64      server-side execution time (including retries)
//! retries: u32       contained-panic re-executions consumed
//! outcome: u8        0 Decided / 1 Width / 2 TimedOut / 3 Cancelled
//!                    / 4 Panicked / 5 Raced (v2+)
//! Decided:  k: u32, has_witness: u8, [decomposition]
//! Width:    proven_lower: u32, has_upper: u8, [best_upper: u32],
//!           has_witness: u8, [decomposition],
//!           interrupted: u8 (0 none / 1 timeout / 2 cancelled)
//! Panicked: msg_len: u32, msg: utf-8 × msg_len
//! Raced:    k: u32, winner: u8, has_witness: u8, [decomposition]
//! ```
//!
//! `Raced.winner` is the portfolio engine index (`portfolio::EngineKind`
//! order: 0 logk-seq, 1 logk-par, 2 logk-hybrid, 3 det-k, 4 ghd,
//! 5 htd-sat). Servers may add engines over time, so clients MUST
//! tolerate winner values they do not recognise — the verdict
//! (`has_witness`) is authoritative regardless of who produced it.
//!
//! A decomposition is encoded as:
//!
//! ```text
//! num_nodes: u32, root: u32
//! repeat num_nodes: { lambda_len: u32, edge_ids: u32 × lambda_len,
//!                     chi_len: u32, vertex_ids: u32 × chi_len,
//!                     child_count: u32, child_ids: u32 × child_count }
//! ```
//!
//! ## Error codes (`Reject` payload)
//!
//! `id: u64` (the correlation id being rejected, or `u64::MAX` for a
//! connection-level rejection), `code: u8`, then per-code fields:
//!
//! | code | name           | fields | client action |
//! |------|----------------|--------|---------------|
//! | 0    | `Overloaded`   | `queue_depth: u32, retry_after_ms: u32` | back off ≥ hint, retry |
//! | 1    | `Expired`      | `remaining_us: u64` | give up (deadline spent) |
//! | 2    | `ShuttingDown` | —      | reconnect elsewhere / later |
//! | 3    | `Malformed`    | `detail_len: u32, detail: utf-8` | fix the frame; not retryable as-is |
//! | 4    | `TooLarge`     | `declared: u32, cap: u32` | shrink the instance |
//! | 5    | `Busy`         | —      | one request at a time per connection |
//! | 6    | `Unsupported`  | `server_min: u8, server_max: u8` | renegotiate version |
//!
//! `Overloaded`, `ShuttingDown` and `Busy` are *backpressure*: the
//! request was not (and will not be) executed, so retrying is always
//! safe, idempotent or not. `Expired`, `Malformed`, `TooLarge` and
//! `Unsupported` are terminal for the request as submitted.
//!
//! ## Framing errors
//!
//! Torn, oversized or desynchronised frames follow the
//! fatal/recoverable split documented in [`crate::codec`]: recoverable
//! errors produce a `Reject(Malformed)` for that frame and the
//! connection continues; fatal errors produce a best-effort
//! `Reject(Malformed)`/`Reject(TooLarge)` and the connection closes.
//! A malformed frame never affects any other connection, and never
//! panics the server.

use decomp::{Decomposition, Interrupted};

use crate::codec::FrameKind;

/// Lowest session version this build can speak.
pub const MIN_VERSION: u8 = 1;
/// Highest session version this build can speak (2 adds portfolio
/// racing: the `Race` job and the `Raced` outcome).
pub const MAX_VERSION: u8 = 2;

/// First session version that understands [`WireJob::Race`] and
/// [`WireOutcome::Raced`].
pub const RACE_VERSION: u8 = 2;

/// Correlation id used by connection-level [`WireError`]s that reject
/// no particular request.
pub const NO_REQUEST: u64 = u64::MAX;

/// What to compute, on the wire (mirrors `htdserve::Job`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireJob {
    /// Decide `hw(H) ≤ k`.
    Decide {
        /// Width bound to decide.
        k: u32,
    },
    /// Anytime minimal-width sweep up to `k_max`.
    MinimalWidth {
        /// Largest width the sweep tries.
        k_max: u32,
    },
    /// Decide `hw(H) ≤ k` by racing the server's algorithm portfolio
    /// (session version ≥ [`RACE_VERSION`] only).
    Race {
        /// Width bound to decide.
        k: u32,
    },
}

/// A decomposition in portable form: plain index arrays, convertible
/// to/from [`decomp::Decomposition`] losslessly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireDecomp {
    /// Per node: (λ edge ids, χ vertex ids).
    pub labels: Vec<(Vec<u32>, Vec<u32>)>,
    /// Per node: child node ids.
    pub children: Vec<Vec<u32>>,
    /// Root node id.
    pub root: u32,
}

impl WireDecomp {
    /// Portable form of `d`.
    pub fn from_decomposition(d: &Decomposition) -> Self {
        let n = d.num_nodes();
        let mut labels = Vec::with_capacity(n);
        let mut children = Vec::with_capacity(n);
        for i in 0..n {
            let node = d.node(decomp::NodeId(i as u32));
            labels.push((
                node.lambda.iter().map(|e| e.0).collect(),
                node.chi.iter().map(|v| v.0).collect(),
            ));
            children.push(node.children.iter().map(|c| c.0).collect());
        }
        WireDecomp {
            labels,
            children,
            root: d.root().0,
        }
    }

    /// Rebuilds a [`Decomposition`] over `hg`'s universe. Fails (with a
    /// decode error, never a panic) when ids are out of range for the
    /// instance or the tree shape is inconsistent.
    pub fn into_decomposition(
        self,
        hg: &hypergraph::Hypergraph,
    ) -> Result<Decomposition, DecodeError> {
        let n = self.labels.len();
        if self.children.len() != n {
            return Err(DecodeError::invalid(
                "decomp/children",
                self.children.len() as u64,
            ));
        }
        if self.root as usize >= n {
            return Err(DecodeError::invalid("decomp/root", self.root as u64));
        }
        let ne = hg.num_edges() as u32;
        let nv = hg.num_vertices() as u32;
        let mut labels = Vec::with_capacity(n);
        for (lambda, chi) in &self.labels {
            for &e in lambda {
                if e >= ne {
                    return Err(DecodeError::invalid("decomp/edge", e as u64));
                }
            }
            for &v in chi {
                if v >= nv {
                    return Err(DecodeError::invalid("decomp/vertex", v as u64));
                }
            }
            let lam: Vec<hypergraph::Edge> = lambda.iter().map(|&e| hypergraph::Edge(e)).collect();
            let chi_set = hypergraph::VertexSet::from_iter(
                hg.num_vertices(),
                chi.iter().map(|&v| hypergraph::Vertex(v)),
            );
            labels.push((lam, chi_set));
        }
        for ch in &self.children {
            for &c in ch {
                if c as usize >= n {
                    return Err(DecodeError::invalid("decomp/child", c as u64));
                }
            }
        }
        // `from_parts` asserts tree-shape consistency (each node one
        // parent, root unmentioned); pre-validate so garbage input
        // yields a typed error instead of reaching those asserts.
        let mut seen_parent = vec![false; n];
        for ch in &self.children {
            for &c in ch {
                if seen_parent[c as usize] || c == self.root {
                    return Err(DecodeError::invalid("decomp/tree", c as u64));
                }
                seen_parent[c as usize] = true;
            }
        }
        for (i, &has) in seen_parent.iter().enumerate() {
            if !has && i as u32 != self.root {
                return Err(DecodeError::invalid("decomp/orphan", i as u64));
            }
        }
        Ok(Decomposition::from_parts(labels, self.children, self.root))
    }
}

/// Why a sweep stopped early, on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireInterrupt {
    /// Deadline expiry.
    Timeout,
    /// Cancellation (server shutdown or ancestor control).
    Cancelled,
}

impl From<Interrupted> for WireInterrupt {
    fn from(i: Interrupted) -> Self {
        match i {
            Interrupted::Timeout => WireInterrupt::Timeout,
            Interrupted::Cancelled => WireInterrupt::Cancelled,
        }
    }
}

/// Terminal verdict on the wire (mirrors `htdserve::Outcome`, with the
/// witness in portable form).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    /// Decision verdict; `witness` is `Some` iff `hw(H) ≤ k`.
    Decided {
        /// The width bound that was decided.
        k: u32,
        /// Witness decomposition, when one exists.
        witness: Option<WireDecomp>,
    },
    /// Minimal-width bounds (possibly partial under deadline pressure).
    Width {
        /// All widths `< proven_lower` were exhaustively refuted.
        proven_lower: u32,
        /// Smallest witnessed width, if any.
        best_upper: Option<u32>,
        /// The witness behind `best_upper`.
        witness: Option<WireDecomp>,
        /// Why the sweep ended early, if it did.
        interrupted: Option<WireInterrupt>,
    },
    /// Deadline expired before a verdict.
    TimedOut,
    /// Cancelled (server shutdown).
    Cancelled,
    /// Every attempt panicked; contained server-side.
    Panicked {
        /// Final attempt's panic message.
        message: String,
    },
    /// Portfolio-race decision verdict (session version ≥
    /// [`RACE_VERSION`]); `witness` is `Some` iff `hw(H) ≤ k`.
    Raced {
        /// The width bound that was decided.
        k: u32,
        /// Engine index of the race winner (see the module docs for
        /// the table). Clients must tolerate unknown values.
        winner: u8,
        /// Witness decomposition, when one exists.
        witness: Option<WireDecomp>,
    },
}

/// Typed rejection (see *Error codes* in the [module docs](self)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Admission queue full — back off at least the hint, then retry.
    Overloaded {
        /// Configured queue capacity that was exhausted.
        queue_depth: u32,
        /// Server's suggested minimum backoff.
        retry_after_ms: u32,
    },
    /// Deadline already (nearly) spent at admission; not retryable.
    Expired {
        /// Time that was left at admission.
        remaining_us: u64,
    },
    /// Server is draining/stopping; retry against another server.
    ShuttingDown,
    /// The frame or payload could not be decoded.
    Malformed {
        /// Human-readable diagnostic.
        detail: String,
    },
    /// A frame exceeded the size cap.
    TooLarge {
        /// Length the header declared.
        declared: u32,
        /// The enforced cap.
        cap: u32,
    },
    /// A second `Submit` arrived while one was in flight.
    Busy,
    /// No protocol version in common.
    Unsupported {
        /// Lowest version the server speaks.
        server_min: u8,
        /// Highest version the server speaks.
        server_max: u8,
    },
}

impl WireError {
    /// Whether a client may retry the *same* request verbatim: true for
    /// pure backpressure (nothing was executed), false for terminal
    /// rejections.
    pub fn is_backpressure(&self) -> bool {
        matches!(
            self,
            WireError::Overloaded { .. } | WireError::ShuttingDown | WireError::Busy
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Overloaded {
                queue_depth,
                retry_after_ms,
            } => write!(
                f,
                "overloaded (queue {queue_depth} full; retry after {retry_after_ms} ms)"
            ),
            WireError::Expired { remaining_us } => {
                write!(f, "deadline leaves only {remaining_us} µs")
            }
            WireError::ShuttingDown => write!(f, "server shutting down"),
            WireError::Malformed { detail } => write!(f, "malformed: {detail}"),
            WireError::TooLarge { declared, cap } => {
                write!(f, "frame of {declared} B exceeds cap {cap} B")
            }
            WireError::Busy => write!(f, "a request is already in flight on this connection"),
            WireError::Unsupported {
                server_min,
                server_max,
            } => write!(
                f,
                "no common version (server speaks {server_min}..={server_max})"
            ),
        }
    }
}

/// Why the server said [`Message::Goodbye`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GoodbyeReason {
    /// The connection sat idle past the reaper's threshold.
    Idle,
    /// The server is draining or shutting down.
    ShuttingDown,
}

/// A fully decoded protocol message (one per frame).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Client hello: inclusive version range offered.
    Hello {
        /// Lowest version the client speaks.
        min_version: u8,
        /// Highest version the client speaks.
        max_version: u8,
    },
    /// Server acceptance of `version`.
    HelloAck {
        /// The agreed version.
        version: u8,
    },
    /// Job submission.
    Submit {
        /// Client correlation id, echoed in the reply.
        id: u64,
        /// What to compute.
        job: WireJob,
        /// Deadline budget in ms from server receipt; `None` = none.
        deadline_ms: Option<u64>,
        /// Whether blind retry/hedging is safe for this job.
        idempotent: bool,
        /// The instance as vertex-index edge lists.
        edges: Vec<Vec<u32>>,
    },
    /// Terminal verdict for `id`.
    Reply {
        /// Echoed correlation id.
        id: u64,
        /// The verdict.
        outcome: WireOutcome,
        /// Server-side queue wait in nanoseconds.
        queue_wait_ns: u64,
        /// Server-side solve time in nanoseconds.
        solve_ns: u64,
        /// Contained-panic re-executions consumed.
        retries: u32,
    },
    /// Typed rejection of `id` (or of the connection, id = `u64::MAX`).
    Reject {
        /// Correlation id being rejected ([`NO_REQUEST`] if none).
        id: u64,
        /// Why.
        error: WireError,
    },
    /// Orderly farewell before the server closes the connection.
    Goodbye {
        /// Why the server is closing.
        reason: GoodbyeReason,
    },
}

/// Typed payload-decoding failure. Never a panic: every length is
/// bounds-checked against the remaining bytes before use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Which field failed.
    pub field: &'static str,
    /// The offending value (0 for plain truncation).
    pub value: u64,
    /// Whether the payload simply ended early.
    pub truncated: bool,
}

impl DecodeError {
    fn truncated(field: &'static str) -> Self {
        DecodeError {
            field,
            value: 0,
            truncated: true,
        }
    }

    fn invalid(field: &'static str, value: u64) -> Self {
        DecodeError {
            field,
            value,
            truncated: false,
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.truncated {
            write!(f, "payload truncated at field `{}`", self.field)
        } else {
            write!(f, "invalid value {} for field `{}`", self.value, self.field)
        }
    }
}

impl std::error::Error for DecodeError {}

/// Little-endian payload writer.
#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    fn ids(&mut self, v: &[u32]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u32(x);
        }
    }
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError::truncated(field));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A `u32`-counted list of `u32` ids. The count is validated
    /// against the remaining bytes *before* any allocation, so a
    /// declared-huge list in a short payload cannot balloon memory.
    fn ids(&mut self, field: &'static str) -> Result<Vec<u32>, DecodeError> {
        let n = self.u32(field)? as usize;
        if (self.buf.len() - self.pos) / 4 < n {
            return Err(DecodeError::truncated(field));
        }
        (0..n).map(|_| self.u32(field)).collect()
    }

    fn utf8(&mut self, field: &'static str) -> Result<String, DecodeError> {
        let n = self.u32(field)? as usize;
        let bytes = self.take(n, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::invalid(field, n as u64))
    }

    fn finish(self, field: &'static str) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError::invalid(
                field,
                (self.buf.len() - self.pos) as u64,
            ));
        }
        Ok(())
    }
}

fn encode_decomp(w: &mut Writer, d: &WireDecomp) {
    w.u32(d.labels.len() as u32);
    w.u32(d.root);
    for ((lambda, chi), children) in d.labels.iter().zip(&d.children) {
        w.ids(lambda);
        w.ids(chi);
        w.ids(children);
    }
}

fn decode_decomp(r: &mut Reader<'_>) -> Result<WireDecomp, DecodeError> {
    let n = r.u32("decomp/num_nodes")? as usize;
    let root = r.u32("decomp/root")?;
    // Each node needs ≥ 12 bytes (three empty lists): cheap plausibility
    // bound before allocating.
    if (r.buf.len() - r.pos) / 12 < n {
        return Err(DecodeError::truncated("decomp/num_nodes"));
    }
    let mut labels = Vec::with_capacity(n);
    let mut children = Vec::with_capacity(n);
    for _ in 0..n {
        let lambda = r.ids("decomp/lambda")?;
        let chi = r.ids("decomp/chi")?;
        labels.push((lambda, chi));
        children.push(r.ids("decomp/children")?);
    }
    Ok(WireDecomp {
        labels,
        children,
        root,
    })
}

impl Message {
    /// The frame kind this message travels in.
    pub fn kind(&self) -> FrameKind {
        match self {
            Message::Hello { .. } => FrameKind::Hello,
            Message::HelloAck { .. } => FrameKind::HelloAck,
            Message::Submit { .. } => FrameKind::Submit,
            Message::Reply { .. } => FrameKind::Reply,
            Message::Reject { .. } => FrameKind::Reject,
            Message::Goodbye { .. } => FrameKind::Goodbye,
        }
    }

    /// Encodes the payload bytes (frame header excluded — see
    /// [`crate::codec::encode_frame`]).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::default();
        match self {
            Message::Hello {
                min_version,
                max_version,
            } => {
                w.u8(*min_version);
                w.u8(*max_version);
            }
            Message::HelloAck { version } => w.u8(*version),
            Message::Submit {
                id,
                job,
                deadline_ms,
                idempotent,
                edges,
            } => {
                w.u64(*id);
                w.u8(u8::from(*idempotent));
                match job {
                    WireJob::Decide { k } => {
                        w.u8(0);
                        w.u32(*k);
                    }
                    WireJob::MinimalWidth { k_max } => {
                        w.u8(1);
                        w.u32(*k_max);
                    }
                    WireJob::Race { k } => {
                        w.u8(2);
                        w.u32(*k);
                    }
                }
                w.u64(deadline_ms.unwrap_or(0));
                w.u32(edges.len() as u32);
                for e in edges {
                    w.ids(e);
                }
            }
            Message::Reply {
                id,
                outcome,
                queue_wait_ns,
                solve_ns,
                retries,
            } => {
                w.u64(*id);
                w.u64(*queue_wait_ns);
                w.u64(*solve_ns);
                w.u32(*retries);
                match outcome {
                    WireOutcome::Decided { k, witness } => {
                        w.u8(0);
                        w.u32(*k);
                        match witness {
                            Some(d) => {
                                w.u8(1);
                                encode_decomp(&mut w, d);
                            }
                            None => w.u8(0),
                        }
                    }
                    WireOutcome::Width {
                        proven_lower,
                        best_upper,
                        witness,
                        interrupted,
                    } => {
                        w.u8(1);
                        w.u32(*proven_lower);
                        match best_upper {
                            Some(u) => {
                                w.u8(1);
                                w.u32(*u);
                            }
                            None => w.u8(0),
                        }
                        match witness {
                            Some(d) => {
                                w.u8(1);
                                encode_decomp(&mut w, d);
                            }
                            None => w.u8(0),
                        }
                        w.u8(match interrupted {
                            None => 0,
                            Some(WireInterrupt::Timeout) => 1,
                            Some(WireInterrupt::Cancelled) => 2,
                        });
                    }
                    WireOutcome::TimedOut => w.u8(2),
                    WireOutcome::Cancelled => w.u8(3),
                    WireOutcome::Panicked { message } => {
                        w.u8(4);
                        w.u32(message.len() as u32);
                        w.bytes(message.as_bytes());
                    }
                    WireOutcome::Raced { k, winner, witness } => {
                        w.u8(5);
                        w.u32(*k);
                        w.u8(*winner);
                        match witness {
                            Some(d) => {
                                w.u8(1);
                                encode_decomp(&mut w, d);
                            }
                            None => w.u8(0),
                        }
                    }
                }
            }
            Message::Reject { id, error } => {
                w.u64(*id);
                match error {
                    WireError::Overloaded {
                        queue_depth,
                        retry_after_ms,
                    } => {
                        w.u8(0);
                        w.u32(*queue_depth);
                        w.u32(*retry_after_ms);
                    }
                    WireError::Expired { remaining_us } => {
                        w.u8(1);
                        w.u64(*remaining_us);
                    }
                    WireError::ShuttingDown => w.u8(2),
                    WireError::Malformed { detail } => {
                        w.u8(3);
                        w.u32(detail.len() as u32);
                        w.bytes(detail.as_bytes());
                    }
                    WireError::TooLarge { declared, cap } => {
                        w.u8(4);
                        w.u32(*declared);
                        w.u32(*cap);
                    }
                    WireError::Busy => w.u8(5),
                    WireError::Unsupported {
                        server_min,
                        server_max,
                    } => {
                        w.u8(6);
                        w.u8(*server_min);
                        w.u8(*server_max);
                    }
                }
            }
            Message::Goodbye { reason } => {
                w.u8(match reason {
                    GoodbyeReason::Idle => 0,
                    GoodbyeReason::ShuttingDown => 1,
                });
            }
        }
        w.buf
    }

    /// Decodes a payload for `kind`. Total: every byte must be consumed
    /// (trailing garbage is a decode error), and no input can panic.
    pub fn decode_payload(kind: FrameKind, payload: &[u8]) -> Result<Message, DecodeError> {
        let mut r = Reader::new(payload);
        let msg = match kind {
            FrameKind::Hello => {
                let min_version = r.u8("hello/min")?;
                let max_version = r.u8("hello/max")?;
                if min_version > max_version {
                    return Err(DecodeError::invalid("hello/range", min_version as u64));
                }
                Message::Hello {
                    min_version,
                    max_version,
                }
            }
            FrameKind::HelloAck => Message::HelloAck {
                version: r.u8("helloack/version")?,
            },
            FrameKind::Submit => {
                let id = r.u64("submit/id")?;
                let flags = r.u8("submit/flags")?;
                if flags & !1 != 0 {
                    return Err(DecodeError::invalid("submit/flags", flags as u64));
                }
                let job_tag = r.u8("submit/job")?;
                let k = r.u32("submit/k")?;
                let job = match job_tag {
                    0 => WireJob::Decide { k },
                    1 => WireJob::MinimalWidth { k_max: k },
                    // Decoding is version-blind; the server enforces
                    // the negotiated session version at dispatch.
                    2 => WireJob::Race { k },
                    other => return Err(DecodeError::invalid("submit/job", other as u64)),
                };
                let deadline_raw = r.u64("submit/deadline")?;
                let num_edges = r.u32("submit/num_edges")? as usize;
                // ≥ 4 bytes per (possibly empty) edge list.
                if (payload.len() - r.pos) / 4 < num_edges {
                    return Err(DecodeError::truncated("submit/num_edges"));
                }
                let mut edges = Vec::with_capacity(num_edges);
                for _ in 0..num_edges {
                    edges.push(r.ids("submit/edge")?);
                }
                Message::Submit {
                    id,
                    job,
                    deadline_ms: (deadline_raw != 0).then_some(deadline_raw),
                    idempotent: flags & 1 != 0,
                    edges,
                }
            }
            FrameKind::Reply => {
                let id = r.u64("reply/id")?;
                let queue_wait_ns = r.u64("reply/queue_wait")?;
                let solve_ns = r.u64("reply/solve")?;
                let retries = r.u32("reply/retries")?;
                let outcome = match r.u8("reply/outcome")? {
                    0 => {
                        let k = r.u32("reply/k")?;
                        let witness = match r.u8("reply/has_witness")? {
                            0 => None,
                            1 => Some(decode_decomp(&mut r)?),
                            other => {
                                return Err(DecodeError::invalid("reply/has_witness", other as u64))
                            }
                        };
                        WireOutcome::Decided { k, witness }
                    }
                    1 => {
                        let proven_lower = r.u32("reply/lower")?;
                        let best_upper = match r.u8("reply/has_upper")? {
                            0 => None,
                            1 => Some(r.u32("reply/upper")?),
                            other => {
                                return Err(DecodeError::invalid("reply/has_upper", other as u64))
                            }
                        };
                        let witness = match r.u8("reply/has_witness")? {
                            0 => None,
                            1 => Some(decode_decomp(&mut r)?),
                            other => {
                                return Err(DecodeError::invalid("reply/has_witness", other as u64))
                            }
                        };
                        let interrupted = match r.u8("reply/interrupted")? {
                            0 => None,
                            1 => Some(WireInterrupt::Timeout),
                            2 => Some(WireInterrupt::Cancelled),
                            other => {
                                return Err(DecodeError::invalid("reply/interrupted", other as u64))
                            }
                        };
                        WireOutcome::Width {
                            proven_lower,
                            best_upper,
                            witness,
                            interrupted,
                        }
                    }
                    2 => WireOutcome::TimedOut,
                    3 => WireOutcome::Cancelled,
                    4 => WireOutcome::Panicked {
                        message: r.utf8("reply/message")?,
                    },
                    5 => {
                        let k = r.u32("reply/k")?;
                        let winner = r.u8("reply/winner")?;
                        let witness = match r.u8("reply/has_witness")? {
                            0 => None,
                            1 => Some(decode_decomp(&mut r)?),
                            other => {
                                return Err(DecodeError::invalid("reply/has_witness", other as u64))
                            }
                        };
                        WireOutcome::Raced { k, winner, witness }
                    }
                    other => return Err(DecodeError::invalid("reply/outcome", other as u64)),
                };
                Message::Reply {
                    id,
                    outcome,
                    queue_wait_ns,
                    solve_ns,
                    retries,
                }
            }
            FrameKind::Reject => {
                let id = r.u64("reject/id")?;
                let error = match r.u8("reject/code")? {
                    0 => WireError::Overloaded {
                        queue_depth: r.u32("reject/queue_depth")?,
                        retry_after_ms: r.u32("reject/retry_after")?,
                    },
                    1 => WireError::Expired {
                        remaining_us: r.u64("reject/remaining")?,
                    },
                    2 => WireError::ShuttingDown,
                    3 => WireError::Malformed {
                        detail: r.utf8("reject/detail")?,
                    },
                    4 => WireError::TooLarge {
                        declared: r.u32("reject/declared")?,
                        cap: r.u32("reject/cap")?,
                    },
                    5 => WireError::Busy,
                    6 => WireError::Unsupported {
                        server_min: r.u8("reject/server_min")?,
                        server_max: r.u8("reject/server_max")?,
                    },
                    other => return Err(DecodeError::invalid("reject/code", other as u64)),
                };
                Message::Reject { id, error }
            }
            FrameKind::Goodbye => Message::Goodbye {
                reason: match r.u8("goodbye/reason")? {
                    0 => GoodbyeReason::Idle,
                    1 => GoodbyeReason::ShuttingDown,
                    other => return Err(DecodeError::invalid("goodbye/reason", other as u64)),
                },
            },
        };
        r.finish("trailing")?;
        Ok(msg)
    }

    /// Encodes the full frame (header + payload) for this message.
    pub fn encode_frame(&self) -> Vec<u8> {
        crate::codec::encode_frame(self.kind(), &self.encode_payload())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let payload = msg.encode_payload();
        let back = Message::decode_payload(msg.kind(), &payload).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn roundtrips_every_variant() {
        roundtrip(Message::Hello {
            min_version: 1,
            max_version: 3,
        });
        roundtrip(Message::HelloAck { version: 1 });
        roundtrip(Message::Submit {
            id: 42,
            job: WireJob::Decide { k: 3 },
            deadline_ms: Some(5000),
            idempotent: true,
            edges: vec![vec![0, 1, 2], vec![2, 3], vec![]],
        });
        roundtrip(Message::Submit {
            id: 7,
            job: WireJob::MinimalWidth { k_max: 4 },
            deadline_ms: None,
            idempotent: false,
            edges: vec![vec![0]],
        });
        roundtrip(Message::Submit {
            id: 8,
            job: WireJob::Race { k: 2 },
            deadline_ms: Some(250),
            idempotent: true,
            edges: vec![vec![0, 1], vec![1, 2]],
        });
        let decomp = WireDecomp {
            labels: vec![(vec![0], vec![0, 1, 2]), (vec![1], vec![2, 3])],
            children: vec![vec![1], vec![]],
            root: 0,
        };
        roundtrip(Message::Reply {
            id: 42,
            outcome: WireOutcome::Decided {
                k: 2,
                witness: Some(decomp.clone()),
            },
            queue_wait_ns: 1234,
            solve_ns: 56789,
            retries: 1,
        });
        roundtrip(Message::Reply {
            id: 1,
            outcome: WireOutcome::Width {
                proven_lower: 2,
                best_upper: Some(3),
                witness: Some(decomp),
                interrupted: Some(WireInterrupt::Timeout),
            },
            queue_wait_ns: 0,
            solve_ns: 0,
            retries: 0,
        });
        roundtrip(Message::Reply {
            id: 2,
            outcome: WireOutcome::Panicked {
                message: "deliberate panic at `logk/solve`".into(),
            },
            queue_wait_ns: 0,
            solve_ns: 9,
            retries: 2,
        });
        roundtrip(Message::Reply {
            id: 5,
            outcome: WireOutcome::Raced {
                k: 3,
                winner: 4,
                witness: Some(WireDecomp {
                    labels: vec![(vec![0], vec![0, 1])],
                    children: vec![vec![]],
                    root: 0,
                }),
            },
            queue_wait_ns: 11,
            solve_ns: 22,
            retries: 0,
        });
        roundtrip(Message::Reply {
            id: 6,
            outcome: WireOutcome::Raced {
                k: 1,
                // An engine index this build doesn't know — must still
                // roundtrip (forward compatibility).
                winner: 250,
                witness: None,
            },
            queue_wait_ns: 0,
            solve_ns: 0,
            retries: 0,
        });
        roundtrip(Message::Reject {
            id: 3,
            error: WireError::Overloaded {
                queue_depth: 64,
                retry_after_ms: 5,
            },
        });
        roundtrip(Message::Reject {
            id: NO_REQUEST,
            error: WireError::Malformed {
                detail: "checksum".into(),
            },
        });
        roundtrip(Message::Goodbye {
            reason: GoodbyeReason::ShuttingDown,
        });
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let msg = Message::Submit {
            id: 9,
            job: WireJob::Decide { k: 2 },
            deadline_ms: None,
            idempotent: true,
            edges: vec![vec![0, 1], vec![1, 2]],
        };
        let payload = msg.encode_payload();
        for cut in 0..payload.len() {
            let err = Message::decode_payload(FrameKind::Submit, &payload[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail, not panic");
        }
        // Trailing garbage is rejected too.
        let mut long = payload.clone();
        long.push(0);
        assert!(Message::decode_payload(FrameKind::Submit, &long).is_err());
        // A declared-huge edge list in a short payload must not allocate.
        let mut lying = Vec::new();
        lying.extend_from_slice(&9u64.to_le_bytes());
        lying.push(1);
        lying.push(0);
        lying.extend_from_slice(&2u32.to_le_bytes());
        lying.extend_from_slice(&0u64.to_le_bytes());
        lying.extend_from_slice(&u32::MAX.to_le_bytes()); // num_edges lie
        let err = Message::decode_payload(FrameKind::Submit, &lying).unwrap_err();
        assert!(err.truncated);

        // The v2 Raced reply follows the same discipline.
        let raced = Message::Reply {
            id: 1,
            outcome: WireOutcome::Raced {
                k: 2,
                winner: 0,
                witness: Some(WireDecomp {
                    labels: vec![(vec![0], vec![0])],
                    children: vec![vec![]],
                    root: 0,
                }),
            },
            queue_wait_ns: 0,
            solve_ns: 0,
            retries: 0,
        };
        let payload = raced.encode_payload();
        for cut in 0..payload.len() {
            assert!(
                Message::decode_payload(FrameKind::Reply, &payload[..cut]).is_err(),
                "cut at {cut} must fail, not panic"
            );
        }
    }

    #[test]
    fn decomposition_roundtrips_through_wire_form() {
        let hg = hypergraph::Hypergraph::from_edge_lists(&[
            vec![0, 1, 2],
            vec![2, 3],
            vec![3, 4, 5],
            vec![5, 0],
        ]);
        let ctrl = decomp::Control::unlimited();
        let d = logk::LogK::sequential()
            .decompose(&hg, 2, &ctrl)
            .unwrap()
            .expect("cycle-ish instance has hw ≤ 2");
        let wire = WireDecomp::from_decomposition(&d);
        let back = wire.clone().into_decomposition(&hg).unwrap();
        assert_eq!(back.num_nodes(), d.num_nodes());
        assert_eq!(back.root(), d.root());
        decomp::validate::validate_hd_width(&hg, &back, 2).expect("rebuilt witness must validate");

        // Out-of-range ids are typed errors, not panics.
        let mut bad = wire.clone();
        bad.labels[0].0.push(99);
        assert!(bad.into_decomposition(&hg).is_err());
        let mut bad = wire.clone();
        bad.root = 99;
        assert!(bad.into_decomposition(&hg).is_err());
        let mut bad = wire;
        // Cycle: make the root a child of another node.
        let root = bad.root;
        for ch in &mut bad.children {
            ch.push(root);
        }
        assert!(bad.into_decomposition(&hg).is_err());
    }
}
