//! Chaos-aware socket primitives.
//!
//! Every write the wire layer performs goes through [`write_frame`], and
//! the server's accept loop polls [`accept_fault`]. In normal builds
//! these are plain pass-throughs; under `--features fault-injection`
//! they consult [`decomp::faults::take_net`] at named sites so tests can
//! deterministically tear connections mid-frame, dribble bytes
//! slow-loris style, or freeze the acceptor — without any nondeterminism
//! or real packet loss.
//!
//! Chaos sites:
//!
//! | site                | where it fires |
//! |---------------------|----------------|
//! | `wire/client/write` | client → server frame writes |
//! | `wire/server/write` | server → client frame writes |
//! | `wire/accept`       | before each accepted connection is handed off |

use std::io::{self, Write};
use std::net::TcpStream;

#[cfg(feature = "fault-injection")]
use std::net::Shutdown;

#[cfg(feature = "fault-injection")]
use decomp::faults::NetFault;

/// Writes one encoded frame to `stream`, applying any armed network
/// fault at `site` first. A fault that cuts the write returns
/// `BrokenPipe`/`ConnectionAborted` just like a real peer reset would.
pub fn write_frame(stream: &mut TcpStream, bytes: &[u8], site: &'static str) -> io::Result<()> {
    #[cfg(feature = "fault-injection")]
    if let Some(fault) = decomp::faults::take_net(site) {
        return chaos_write(stream, bytes, fault);
    }
    let _ = site;
    stream.write_all(bytes)
}

#[cfg(feature = "fault-injection")]
fn chaos_write(stream: &mut TcpStream, bytes: &[u8], fault: NetFault) -> io::Result<()> {
    match fault {
        NetFault::Disconnect => {
            let _ = stream.shutdown(Shutdown::Both);
            Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "injected disconnect",
            ))
        }
        NetFault::Truncate { keep } => {
            let keep = keep.min(bytes.len());
            stream.write_all(&bytes[..keep])?;
            stream.flush()?;
            let _ = stream.shutdown(Shutdown::Both);
            Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected mid-frame disconnect",
            ))
        }
        NetFault::Throttle { chunk, delay } => {
            let chunk = chunk.max(1);
            for piece in bytes.chunks(chunk) {
                stream.write_all(piece)?;
                stream.flush()?;
                std::thread::sleep(delay);
            }
            Ok(())
        }
        NetFault::Stall { delay } => {
            std::thread::sleep(delay);
            stream.write_all(bytes)
        }
    }
}

/// Consulted by the server's accept loop once per accepted connection.
/// Returns `true` when an injected fault already disposed of the
/// connection (the handler must not be spawned).
pub fn accept_fault(stream: &TcpStream, site: &'static str) -> bool {
    #[cfg(feature = "fault-injection")]
    if let Some(fault) = decomp::faults::take_net(site) {
        match fault {
            NetFault::Stall { delay } | NetFault::Throttle { delay, .. } => {
                // Freeze the acceptor: connections queue in the backlog,
                // clients see slow accepts, nothing is lost.
                std::thread::sleep(delay);
                return false;
            }
            NetFault::Disconnect | NetFault::Truncate { .. } => {
                let _ = stream.shutdown(Shutdown::Both);
                return true;
            }
        }
    }
    let _ = (stream, site);
    false
}
