//! Socket-level integration tests for the wire frontend: round trips,
//! malformed-frame isolation, overload backoff, version negotiation,
//! idle reaping, and clean drain/shutdown with clients attached.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use htdwire::codec::{encode_frame, FrameDecoder, FrameKind};
use htdwire::proto::{GoodbyeReason, Message, WireError, WireOutcome};
use htdwire::{ClientConfig, JobSpec, WireClient, WireConfig, WireServer};

use htdserve::ServerConfig;
use workloads::families;

/// The admission invariants the service documents; every report coming
/// off the wire must still satisfy them.
fn assert_invariants(stats: &htdserve::ServiceStats) {
    assert_eq!(
        stats.submitted,
        stats.shed_overload + stats.shed_expired + stats.rejected_closed + stats.admitted,
        "{stats}"
    );
    assert_eq!(
        stats.admitted,
        stats.completed + stats.timed_out + stats.cancelled + stats.failed,
        "{stats}"
    );
    assert!(stats.expired_in_queue <= stats.timed_out, "{stats}");
}

/// `hw = 2` instance used for fast round trips.
fn small_cycle() -> Vec<Vec<u32>> {
    vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![5, 0]]
}

/// An instance that keeps one executor busy for hundreds of
/// milliseconds at `k = 3` (same blocker the service suite uses).
fn slow_edges() -> Vec<Vec<u32>> {
    let hg = families::chorded_cycle(64, 24, 7);
    hg.edge_ids()
        .map(|e| hg.edge(e).iter().map(|v| v.0).collect())
        .collect()
}

fn quick_service(executors: usize, queue_depth: usize) -> ServerConfig {
    ServerConfig {
        executors,
        workers: 1,
        queue_depth,
        ..ServerConfig::default()
    }
}

fn client(addr: SocketAddr) -> WireClient {
    WireClient::new(addr, ClientConfig::default())
}

// ---- raw-socket helpers (protocol-level poking the client won't do) ----

fn raw_connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    stream
}

fn send_msg(stream: &mut TcpStream, msg: &Message) {
    stream.write_all(&msg.encode_frame()).expect("send frame");
}

/// Reads whole messages, waiting up to 5 s. Panics on framing errors —
/// these helpers model a *correct* client.
fn read_msg(stream: &mut TcpStream, dec: &mut FrameDecoder) -> Message {
    let start = Instant::now();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = dec.next_frame().expect("well-formed server frame") {
            return Message::decode_payload(frame.kind, &frame.payload)
                .expect("decodable server payload");
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "no frame within 5s"
        );
        match stream.read(&mut buf) {
            Ok(0) => panic!("connection closed while awaiting a frame"),
            Ok(n) => dec.feed(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read error: {e}"),
        }
    }
}

fn handshake(stream: &mut TcpStream, dec: &mut FrameDecoder) {
    send_msg(
        stream,
        &Message::Hello {
            min_version: 1,
            max_version: 1,
        },
    );
    match read_msg(stream, dec) {
        Message::HelloAck { version: 1 } => {}
        other => panic!("expected HelloAck v1, got {other:?}"),
    }
}

/// Reads until EOF, returning any messages seen on the way.
fn drain_to_eof(stream: &mut TcpStream, dec: &mut FrameDecoder) -> Vec<Message> {
    let start = Instant::now();
    let mut buf = [0u8; 4096];
    let mut msgs = Vec::new();
    loop {
        while let Ok(Some(frame)) = dec.next_frame() {
            if let Ok(m) = Message::decode_payload(frame.kind, &frame.payload) {
                msgs.push(m);
            }
        }
        assert!(start.elapsed() < Duration::from_secs(5), "no EOF within 5s");
        match stream.read(&mut buf) {
            Ok(0) => return msgs,
            Ok(n) => dec.feed(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return msgs,
        }
    }
}

// ---------------------------------------------------------------------

#[test]
fn decide_and_minimal_width_roundtrip_over_socket() {
    let server = WireServer::start("127.0.0.1:0", WireConfig::default()).unwrap();
    let cl = client(server.local_addr());

    let reply = cl.request(JobSpec::decide(small_cycle(), 2)).unwrap();
    match &reply.outcome {
        WireOutcome::Decided { k: 2, witness } => {
            let wire = witness.clone().expect("hw(cycle) ≤ 2 has a witness");
            // Rebuild and validate the witness client-side: the wire
            // form carries everything needed to check the verdict.
            let hg = hypergraph::Hypergraph::from_edge_lists(&small_cycle());
            let d = wire.into_decomposition(&hg).expect("well-formed witness");
            decomp::validate::validate_hd_width(&hg, &d, 2).expect("witness validates");
        }
        other => panic!("expected Decided{{k=2}}, got {other:?}"),
    }
    assert_eq!(reply.attempts, 1);

    let reply = cl
        .request(JobSpec::minimal_width(small_cycle(), 3))
        .unwrap();
    match &reply.outcome {
        WireOutcome::Width {
            proven_lower,
            best_upper,
            interrupted,
            ..
        } => {
            assert_eq!(*interrupted, None);
            assert_eq!(*best_upper, Some(*proven_lower), "sweep is exact");
        }
        other => panic!("expected Width, got {other:?}"),
    }

    let report = server.shutdown();
    assert_eq!(report.wire.replies_sent, 2);
    assert_eq!(report.service.completed, 2);
}

#[test]
fn malformed_frames_do_not_disturb_a_concurrent_solve() {
    let server = WireServer::start("127.0.0.1:0", WireConfig::default()).unwrap();
    let addr = server.local_addr();

    // A real solve in flight on its own connection...
    let solver = std::thread::spawn(move || {
        client(addr)
            .request(JobSpec::decide(small_cycle(), 2).with_deadline(Duration::from_secs(10)))
    });

    // ...while one connection sprays garbage (desync → torn down)...
    let mut garbage = raw_connect(addr);
    garbage
        .write_all(b"this is not an HTDW frame at all....")
        .unwrap();
    let mut dec = FrameDecoder::new(htdwire::DEFAULT_MAX_PAYLOAD);
    let msgs = drain_to_eof(&mut garbage, &mut dec);
    assert!(
        msgs.iter().any(|m| matches!(
            m,
            Message::Reject {
                error: WireError::Malformed { .. },
                ..
            }
        )),
        "desync earns a typed reject before the close, got {msgs:?}"
    );

    // ...and another sends a checksum-corrupted frame, then recovers on
    // the SAME connection: one bad frame must not kill the stream.
    let mut flaky = raw_connect(addr);
    let mut dec = FrameDecoder::new(htdwire::DEFAULT_MAX_PAYLOAD);
    handshake(&mut flaky, &mut dec);
    let submit = Message::Submit {
        id: 7,
        job: htdwire::WireJob::Decide { k: 2 },
        deadline_ms: None,
        idempotent: true,
        edges: small_cycle(),
    };
    let mut corrupt = submit.encode_frame();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF; // payload corruption → checksum mismatch
    flaky.write_all(&corrupt).unwrap();
    match read_msg(&mut flaky, &mut dec) {
        Message::Reject {
            error: WireError::Malformed { .. },
            ..
        } => {}
        other => panic!("expected Malformed reject, got {other:?}"),
    }
    send_msg(&mut flaky, &submit);
    match read_msg(&mut flaky, &mut dec) {
        Message::Reply { id: 7, outcome, .. } => {
            assert!(matches!(outcome, WireOutcome::Decided { k: 2, .. }))
        }
        other => panic!("expected Reply after recovery, got {other:?}"),
    }

    // The concurrent solve was never disturbed.
    let reply = solver.join().unwrap().expect("concurrent solve succeeds");
    assert!(matches!(reply.outcome, WireOutcome::Decided { k: 2, .. }));

    let report = server.shutdown();
    assert!(report.wire.connections_torn >= 1, "garbage conn was torn");
    assert!(
        report.wire.frames_rejected >= 1,
        "bad checksum was rejected"
    );
    assert_eq!(report.wire.replies_sent, 2);
    assert_invariants(&report.service);
}

#[test]
fn overloaded_server_sheds_with_hints_and_clients_retry_to_success() {
    let server = WireServer::start(
        "127.0.0.1:0",
        WireConfig {
            service: quick_service(1, 1),
            retry_after_ms: 50,
            ..WireConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Pin the lone executor for ~500 ms.
    let blocker = std::thread::spawn(move || {
        client(addr)
            .request(JobSpec::decide(slow_edges(), 3).with_deadline(Duration::from_millis(500)))
    });
    std::thread::sleep(Duration::from_millis(100));

    // Three eager clients contend for a queue of depth 1. At most one
    // fits; the others are shed with a retry-after hint and must back
    // off to eventual success (min time-to-exhaustion 29 × 50 ms far
    // exceeds the blocker's deadline, so retries always outlive it).
    let eager: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                let cl = WireClient::new(
                    addr,
                    ClientConfig {
                        max_attempts: 30,
                        base_backoff: Duration::from_millis(10),
                        max_backoff: Duration::from_millis(120),
                        seed: 0xBEEF + i,
                        ..ClientConfig::default()
                    },
                );
                cl.request(JobSpec::decide(small_cycle(), 2))
            })
        })
        .collect();

    let mut total_attempts = 0;
    for h in eager {
        let reply = h.join().unwrap().expect("eager client retried to success");
        assert!(matches!(reply.outcome, WireOutcome::Decided { k: 2, .. }));
        total_attempts += reply.attempts;
    }
    let _ = blocker.join().unwrap(); // TimedOut or Decided — either is fine
    assert!(total_attempts > 3, "at least one client had to retry");

    let report = server.shutdown();
    assert!(report.wire.rejects_sent >= 1, "overload rejects were sent");
    assert!(
        report.service.shed_overload >= 1,
        "service shed at admission"
    );
    assert_invariants(&report.service);
}

#[test]
fn version_negotiation_acks_or_rejects() {
    let server = WireServer::start("127.0.0.1:0", WireConfig::default()).unwrap();
    let addr = server.local_addr();

    // Overlapping offer → ack at the server's (and range's) best.
    let mut ok = raw_connect(addr);
    let mut dec = FrameDecoder::new(htdwire::DEFAULT_MAX_PAYLOAD);
    send_msg(
        &mut ok,
        &Message::Hello {
            min_version: 0,
            max_version: 5,
        },
    );
    assert!(matches!(
        read_msg(&mut ok, &mut dec),
        Message::HelloAck {
            version: htdwire::MAX_VERSION
        }
    ));

    // A v1-only client still negotiates: the server downgrades.
    let mut old = raw_connect(addr);
    let mut dec = FrameDecoder::new(htdwire::DEFAULT_MAX_PAYLOAD);
    send_msg(
        &mut old,
        &Message::Hello {
            min_version: 1,
            max_version: 1,
        },
    );
    assert!(matches!(
        read_msg(&mut old, &mut dec),
        Message::HelloAck { version: 1 }
    ));

    // Disjoint offer → typed Unsupported reject, then close.
    let mut future = raw_connect(addr);
    let mut dec = FrameDecoder::new(htdwire::DEFAULT_MAX_PAYLOAD);
    send_msg(
        &mut future,
        &Message::Hello {
            min_version: 7,
            max_version: 9,
        },
    );
    let msgs = drain_to_eof(&mut future, &mut dec);
    assert!(
        msgs.iter().any(|m| matches!(
            m,
            Message::Reject {
                error: WireError::Unsupported {
                    server_min: htdwire::MIN_VERSION,
                    server_max: htdwire::MAX_VERSION
                },
                ..
            }
        )),
        "got {msgs:?}"
    );

    // Submitting before any hello is a typed protocol error.
    let mut rude = raw_connect(addr);
    let mut dec = FrameDecoder::new(htdwire::DEFAULT_MAX_PAYLOAD);
    send_msg(
        &mut rude,
        &Message::Submit {
            id: 1,
            job: htdwire::WireJob::Decide { k: 2 },
            deadline_ms: None,
            idempotent: true,
            edges: small_cycle(),
        },
    );
    assert!(matches!(
        read_msg(&mut rude, &mut dec),
        Message::Reject {
            id: 1,
            error: WireError::Malformed { .. }
        }
    ));

    server.shutdown();
}

#[test]
fn race_roundtrips_on_v2_and_is_rejected_on_v1_sessions() {
    let server = WireServer::start("127.0.0.1:0", WireConfig::default()).unwrap();
    let addr = server.local_addr();

    // The default client negotiates v2, so a portfolio race runs end to
    // end and the reply names the winning engine.
    let reply = client(addr)
        .request(JobSpec::race(small_cycle(), 2))
        .expect("race round trip");
    match &reply.outcome {
        WireOutcome::Raced { k: 2, witness, .. } => {
            let wire = witness.clone().expect("hw(cycle) ≤ 2 has a witness");
            let hg = hypergraph::Hypergraph::from_edge_lists(&small_cycle());
            let d = wire.into_decomposition(&hg).expect("well-formed witness");
            decomp::validate::validate_hd_width(&hg, &d, 2).expect("witness validates");
        }
        other => panic!("expected Raced{{k=2}}, got {other:?}"),
    }

    // A session that negotiated v1 can frame a Race submit (decoding is
    // version-blind) but the server refuses to run it, pointing at its
    // own version range; the connection survives for supported jobs.
    let mut old = raw_connect(addr);
    let mut dec = FrameDecoder::new(htdwire::DEFAULT_MAX_PAYLOAD);
    handshake(&mut old, &mut dec); // pins the session at v1
    send_msg(
        &mut old,
        &Message::Submit {
            id: 11,
            job: htdwire::WireJob::Race { k: 2 },
            deadline_ms: None,
            idempotent: true,
            edges: small_cycle(),
        },
    );
    assert!(matches!(
        read_msg(&mut old, &mut dec),
        Message::Reject {
            id: 11,
            error: WireError::Unsupported {
                server_min: htdwire::MIN_VERSION,
                server_max: htdwire::MAX_VERSION,
            },
        }
    ));
    send_msg(
        &mut old,
        &Message::Submit {
            id: 12,
            job: htdwire::WireJob::Decide { k: 2 },
            deadline_ms: None,
            idempotent: true,
            edges: small_cycle(),
        },
    );
    assert!(matches!(
        read_msg(&mut old, &mut dec),
        Message::Reply { id: 12, .. }
    ));

    let report = server.shutdown();
    assert_eq!(report.wire.race_replies_sent, 1);
    assert!(report.wire.rejects_sent >= 1);
    assert_eq!(report.service.races, 1);
    assert_eq!(
        report.service.races_won_by.iter().sum::<u64>(),
        1,
        "exactly one engine won the one race: {:?}",
        report.service.races_won_by
    );
    assert_invariants(&report.service);
}

#[test]
fn oversized_frames_get_typed_rejects() {
    let server = WireServer::start(
        "127.0.0.1:0",
        WireConfig {
            max_payload: 1024,
            ..WireConfig::default()
        },
    )
    .unwrap();
    let mut stream = raw_connect(server.local_addr());
    let mut dec = FrameDecoder::new(htdwire::DEFAULT_MAX_PAYLOAD);
    handshake(&mut stream, &mut dec);
    // Hand-build a header declaring a payload far over the server cap.
    let huge = encode_frame(FrameKind::Submit, &vec![0u8; 2048]);
    stream.write_all(&huge).unwrap();
    let msgs = drain_to_eof(&mut stream, &mut dec);
    assert!(
        msgs.iter().any(|m| matches!(
            m,
            Message::Reject {
                error: WireError::TooLarge {
                    declared: 2048,
                    cap: 1024
                },
                ..
            }
        )),
        "got {msgs:?}"
    );
    let report = server.shutdown();
    assert_eq!(report.wire.connections_torn, 1);
}

#[test]
fn idle_connections_are_reaped_politely() {
    let server = WireServer::start(
        "127.0.0.1:0",
        WireConfig {
            idle_timeout: Duration::from_millis(80),
            ..WireConfig::default()
        },
    )
    .unwrap();
    let mut stream = raw_connect(server.local_addr());
    let mut dec = FrameDecoder::new(htdwire::DEFAULT_MAX_PAYLOAD);
    handshake(&mut stream, &mut dec);
    // Say nothing; the reaper should send a Goodbye(Idle) and close.
    let msgs = drain_to_eof(&mut stream, &mut dec);
    assert!(
        msgs.iter().any(|m| matches!(
            m,
            Message::Goodbye {
                reason: GoodbyeReason::Idle
            }
        )),
        "got {msgs:?}"
    );
    let report = server.shutdown();
    assert_eq!(report.wire.idle_reaped, 1);
}

#[test]
fn drain_finishes_inflight_work_with_client_attached() {
    let server = WireServer::start(
        "127.0.0.1:0",
        WireConfig {
            service: quick_service(1, 4),
            ..WireConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let inflight = std::thread::spawn(move || {
        client(addr)
            .request(JobSpec::decide(slow_edges(), 3).with_deadline(Duration::from_millis(400)))
    });
    std::thread::sleep(Duration::from_millis(100));

    // Drain with the client still waiting: it must get its verdict (the
    // deadline governs which one), never a severed connection.
    let report = server.drain();
    let reply = inflight
        .join()
        .unwrap()
        .expect("drained client gets a reply");
    assert!(
        matches!(
            reply.outcome,
            WireOutcome::Decided { .. } | WireOutcome::TimedOut
        ),
        "in-flight work ran to its own verdict, got {:?}",
        reply.outcome
    );
    assert_eq!(report.wire.replies_sent, 1);
    assert_invariants(&report.service);
}

#[test]
fn shutdown_cancels_inflight_work_and_answers_the_client() {
    let server = WireServer::start(
        "127.0.0.1:0",
        WireConfig {
            service: quick_service(1, 4),
            ..WireConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let inflight =
        std::thread::spawn(move || client(addr).request(JobSpec::decide(slow_edges(), 3)));
    std::thread::sleep(Duration::from_millis(100));

    let report = server.shutdown();
    let reply = inflight.join().unwrap().expect("client still gets a reply");
    assert!(
        matches!(reply.outcome, WireOutcome::Cancelled),
        "shutdown cancels, got {:?}",
        reply.outcome
    );
    assert_eq!(report.service.cancelled, 1);
    assert_invariants(&report.service);
}

#[test]
fn hedged_requests_return_a_single_verdict() {
    let server = WireServer::start("127.0.0.1:0", WireConfig::default()).unwrap();
    let cl = WireClient::new(
        server.local_addr(),
        ClientConfig {
            hedge_after: Some(Duration::from_millis(30)),
            ..ClientConfig::default()
        },
    );
    // Slow enough that the hedge usually fires; both verdicts agree, and
    // exactly one comes back.
    let reply = cl
        .request(JobSpec::decide(slow_edges(), 3).with_deadline(Duration::from_millis(300)))
        .expect("hedged request resolves");
    assert!(matches!(
        reply.outcome,
        WireOutcome::Decided { .. } | WireOutcome::TimedOut
    ));
    let report = server.shutdown();
    assert_invariants(&report.service);
}
