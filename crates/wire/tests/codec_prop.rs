//! Property coverage for the frame codec and message payload codecs:
//! no input — adversarial, truncated, or randomly chunked — may panic
//! the decoder, and every well-formed encoding round-trips exactly.

use proptest::prelude::*;

use htdwire::codec::{crc32, encode_frame, FrameDecoder, FrameError, FrameKind, HEADER_LEN};
use htdwire::proto::{Message, WireDecomp, WireError, WireJob, WireOutcome};

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    (1u8..=6).prop_map(|k| match k {
        1 => FrameKind::Hello,
        2 => FrameKind::HelloAck,
        3 => FrameKind::Submit,
        4 => FrameKind::Reply,
        5 => FrameKind::Reject,
        _ => FrameKind::Goodbye,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes, fed in arbitrary chunkings, never panic the
    /// decoder — it either yields frames, recoverable errors, or goes
    /// fatal and sticks there.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in prop::collection::vec(0u8..=255, 0..300),
        chunk in 1usize..17,
    ) {
        let mut dec = FrameDecoder::new(1024);
        for piece in bytes.chunks(chunk) {
            dec.feed(piece);
            // Pump until quiescent; a fatal error keeps returning
            // fatally rather than panicking or resyncing silently.
            for _ in 0..bytes.len() + 1 {
                if let Ok(None) = dec.next_frame() {
                    break;
                }
            }
        }
    }

    /// encode → feed (in arbitrary chunks) → decode is the identity on
    /// frames, for any payload bytes.
    #[test]
    fn frame_roundtrip_is_exact(
        kind in arb_kind(),
        payload in prop::collection::vec(0u8..=255, 0..200),
        chunk in 1usize..32,
    ) {
        let encoded = encode_frame(kind, &payload);
        prop_assert_eq!(encoded.len(), HEADER_LEN + payload.len());
        let mut dec = FrameDecoder::new(1024);
        let mut got = None;
        for piece in encoded.chunks(chunk) {
            dec.feed(piece);
            if let Some(f) = dec.next_frame().unwrap() {
                prop_assert!(got.is_none(), "one frame in, one frame out");
                got = Some(f);
            }
        }
        let frame = got.expect("whole frame fed");
        prop_assert_eq!(frame.kind, kind);
        prop_assert_eq!(frame.payload, payload);
        prop_assert_eq!(dec.pending(), 0);
    }

    /// A frame whose declared length exceeds the cap is a typed fatal
    /// error, regardless of payload; a truncated frame is silently
    /// incomplete (pending bytes), never a panic or a bogus frame.
    #[test]
    fn oversize_and_truncation_are_typed(
        payload in prop::collection::vec(0u8..=255, 0..64),
        cut in 0usize..80,
    ) {
        let encoded = encode_frame(FrameKind::Submit, &payload);
        // Truncation: feeding a strict prefix yields no frame and no error.
        let cut = cut.min(encoded.len().saturating_sub(1));
        let mut dec = FrameDecoder::new(1024);
        dec.feed(&encoded[..cut]);
        prop_assert!(matches!(dec.next_frame(), Ok(None)));
        prop_assert_eq!(dec.pending(), cut);

        // Oversize: cap below the payload length → TooLarge, fatal.
        if !payload.is_empty() {
            let mut dec = FrameDecoder::new(payload.len() as u32 - 1);
            dec.feed(&encoded);
            match dec.next_frame() {
                Err(e @ FrameError::TooLarge { declared, cap }) => {
                    prop_assert_eq!(declared, payload.len() as u32);
                    prop_assert_eq!(cap, payload.len() as u32 - 1);
                    prop_assert!(e.is_fatal());
                }
                other => prop_assert!(false, "expected TooLarge, got {other:?}"),
            }
        }
    }

    /// A corrupted payload byte is always caught by the checksum, and
    /// the error is recoverable: the decoder consumes the bad frame and
    /// decodes the next one cleanly.
    #[test]
    fn corruption_is_caught_and_contained(
        payload in prop::collection::vec(0u8..=255, 1..100),
        flip in 0usize..100,
        bit in 0u8..8,
    ) {
        let mut encoded = encode_frame(FrameKind::Reply, &payload);
        let flip = HEADER_LEN + (flip % payload.len());
        encoded[flip] ^= 1 << bit;
        let follow = encode_frame(FrameKind::Goodbye, &[0]);
        let mut dec = FrameDecoder::new(1024);
        dec.feed(&encoded);
        dec.feed(&follow);
        match dec.next_frame() {
            Err(e @ FrameError::ChecksumMismatch { .. }) => prop_assert!(!e.is_fatal()),
            other => prop_assert!(false, "expected checksum error, got {other:?}"),
        }
        let next = dec.next_frame().unwrap().expect("stream resynchronised");
        prop_assert_eq!(next.kind, FrameKind::Goodbye);
        prop_assert_eq!(next.payload, vec![0]);
    }

    /// Arbitrary bytes never panic the payload decoders either.
    #[test]
    fn arbitrary_payloads_never_panic_message_decode(
        kind in arb_kind(),
        payload in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let _ = Message::decode_payload(kind, &payload);
    }

    /// Submit payloads round-trip exactly through the message codec for
    /// arbitrary edge structures.
    #[test]
    fn submit_roundtrips_for_arbitrary_instances(
        id in 0u64..=u64::MAX,
        k in 0u32..100,
        decide in 0u32..2,
        idem in 0u32..2,
        deadline in 0u64..10_000,
        edges in prop::collection::vec(prop::collection::vec(0u32..500, 0..8), 0..12),
    ) {
        let msg = Message::Submit {
            id,
            job: if decide == 0 {
                WireJob::Decide { k }
            } else {
                WireJob::MinimalWidth { k_max: k }
            },
            deadline_ms: (deadline != 0).then_some(deadline),
            idempotent: idem == 1,
            edges,
        };
        let back = Message::decode_payload(FrameKind::Submit, &msg.encode_payload()).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Reply payloads round-trip exactly, witness decompositions included.
    #[test]
    fn reply_roundtrips_with_witnesses(
        id in 0u64..1000,
        nodes in prop::collection::vec(
            (prop::collection::vec(0u32..64, 0..4), prop::collection::vec(0u32..64, 0..6)),
            1..6,
        ),
        wait in 0u64..1_000_000,
    ) {
        // Chain shape: node i+1 is the child of node i — always a tree.
        let n = nodes.len() as u32;
        let children: Vec<Vec<u32>> =
            (0..n).map(|i| if i + 1 < n { vec![i + 1] } else { vec![] }).collect();
        let msg = Message::Reply {
            id,
            outcome: WireOutcome::Decided {
                k: 3,
                witness: Some(WireDecomp { labels: nodes, children, root: 0 }),
            },
            queue_wait_ns: wait,
            solve_ns: wait / 2,
            retries: 0,
        };
        let back = Message::decode_payload(FrameKind::Reply, &msg.encode_payload()).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Truncating any well-formed payload at every boundary yields a
    /// typed `DecodeError`, never a panic and never a bogus success.
    #[test]
    fn truncated_payloads_yield_typed_errors(cut_seed in 0usize..10_000) {
        let msg = Message::Reject {
            id: 7,
            error: WireError::Malformed { detail: "injected for the property".into() },
        };
        let payload = msg.encode_payload();
        let cut = cut_seed % payload.len();
        let err = Message::decode_payload(FrameKind::Reject, &payload[..cut]);
        prop_assert!(err.is_err());
    }
}

/// The CRC implementation matches the IEEE 802.3 reference vector.
#[test]
fn crc32_reference_vector() {
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    assert_eq!(crc32(b""), 0);
}
