//! Network-chaos acceptance suite for the wire layer. Deterministic
//! faults armed through `decomp::faults` tear connections mid-frame,
//! dribble bytes slow-loris style, freeze the acceptor and panic the
//! solver — and every test pins the blast radius to exactly one
//! connection while the client's retry/backoff machinery recovers.
#![cfg(feature = "fault-injection")]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use decomp::faults::{self, Fault, NetFault};
use htdserve::ServerConfig;
use htdwire::codec::FrameDecoder;
use htdwire::proto::{Message, WireOutcome};
use htdwire::{ClientConfig, ClientError, JobSpec, WireClient, WireConfig, WireServer};

/// The fault registry is process-global: serialise the tests and leave
/// the registry clean on both entry and exit (even after a failure).
fn armed() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    let g = GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    faults::reset();
    g
}

fn small_cycle() -> Vec<Vec<u32>> {
    vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![5, 0]]
}

fn start_server() -> WireServer {
    WireServer::start(
        "127.0.0.1:0",
        WireConfig {
            service: ServerConfig {
                executors: 2,
                workers: 1,
                ..ServerConfig::default()
            },
            ..WireConfig::default()
        },
    )
    .unwrap()
}

fn patient_client(addr: SocketAddr) -> WireClient {
    WireClient::new(
        addr,
        ClientConfig {
            max_attempts: 6,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            ..ClientConfig::default()
        },
    )
}

// Minimal raw-socket helpers for the "bystander connection" role.

fn raw_handshake(addr: SocketAddr) -> (TcpStream, FrameDecoder) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(20)))
        .unwrap();
    let mut dec = FrameDecoder::new(htdwire::DEFAULT_MAX_PAYLOAD);
    stream
        .write_all(
            &Message::Hello {
                min_version: 1,
                max_version: 1,
            }
            .encode_frame(),
        )
        .unwrap();
    match raw_read(&mut stream, &mut dec) {
        Message::HelloAck { version: 1 } => (stream, dec),
        other => panic!("expected HelloAck, got {other:?}"),
    }
}

fn raw_read(stream: &mut TcpStream, dec: &mut FrameDecoder) -> Message {
    let start = Instant::now();
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = dec.next_frame().expect("well-formed frame") {
            return Message::decode_payload(frame.kind, &frame.payload).expect("decodable");
        }
        assert!(start.elapsed() < Duration::from_secs(10), "no frame in 10s");
        match stream.read(&mut buf) {
            Ok(0) => panic!("unexpected EOF"),
            Ok(n) => dec.feed(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read error: {e}"),
        }
    }
}

/// A mid-frame disconnect while the server writes one client's
/// `HelloAck` kills exactly that connection: a bystander connection
/// opened earlier keeps working, and the victim's client retries to
/// success on a fresh connection.
#[test]
fn mid_frame_disconnect_has_one_connection_blast_radius() {
    let _g = armed();
    let server = start_server();
    let addr = server.local_addr();

    // Bystander attaches (and consumes its own HelloAck) BEFORE arming,
    // so the armed ordinal deterministically hits the victim.
    let (mut bystander, mut bdec) = raw_handshake(addr);

    faults::arm(
        "wire/server/write",
        1,
        Fault::Net(NetFault::Truncate { keep: 5 }),
    );
    let reply = patient_client(addr)
        .request(JobSpec::decide(small_cycle(), 2))
        .expect("victim retries across the dropped connection");
    assert!(matches!(reply.outcome, WireOutcome::Decided { k: 2, .. }));
    assert!(
        reply.attempts >= 2,
        "first attempt died mid-frame, got {} attempt(s)",
        reply.attempts
    );

    // The bystander's connection never noticed.
    bystander
        .write_all(
            &Message::Submit {
                id: 11,
                job: htdwire::WireJob::Decide { k: 2 },
                deadline_ms: None,
                idempotent: true,
                edges: small_cycle(),
            }
            .encode_frame(),
        )
        .unwrap();
    match raw_read(&mut bystander, &mut bdec) {
        Message::Reply {
            id: 11, outcome, ..
        } => {
            assert!(matches!(outcome, WireOutcome::Decided { k: 2, .. }))
        }
        other => panic!("bystander must be untouched, got {other:?}"),
    }

    let report = server.shutdown();
    assert_eq!(report.wire.replies_sent, 2);
    faults::reset();
}

/// A reply cut mid-frame after the solve already ran: an idempotent
/// client resubmits blindly and succeeds (the server simply runs it
/// again, warm); the service's books stay consistent.
#[test]
fn idempotent_retry_resubmits_after_lost_reply() {
    let _g = armed();
    let server = start_server();
    let addr = server.local_addr();

    // Site hits after arming: 1 = victim's HelloAck, 2 = victim's Reply.
    faults::arm(
        "wire/server/write",
        2,
        Fault::Net(NetFault::Truncate { keep: 9 }),
    );
    let reply = patient_client(addr)
        .request(JobSpec::decide(small_cycle(), 2))
        .expect("idempotent job retries through a lost reply");
    assert!(matches!(reply.outcome, WireOutcome::Decided { k: 2, .. }));
    assert_eq!(reply.attempts, 2);

    let report = server.shutdown();
    // Both executions really happened — the job was admitted twice.
    assert_eq!(report.service.completed, 2);
    faults::reset();
}

/// The same lost-reply chaos against a non-idempotent job: the client
/// refuses to guess and surfaces `Ambiguous` instead of resubmitting.
#[test]
fn non_idempotent_lost_reply_is_ambiguous_not_retried() {
    let _g = armed();
    let server = start_server();
    let addr = server.local_addr();

    faults::arm(
        "wire/server/write",
        2,
        Fault::Net(NetFault::Truncate { keep: 9 }),
    );
    let err = patient_client(addr)
        .request(JobSpec::decide(small_cycle(), 2).non_idempotent())
        .expect_err("lost reply on a non-idempotent job must not auto-retry");
    match err {
        ClientError::Ambiguous { attempts } => assert_eq!(attempts, 1),
        other => panic!("expected Ambiguous, got {other:?}"),
    }

    let report = server.shutdown();
    // Executed exactly once; the client just never learned the verdict.
    assert_eq!(report.service.completed, 1);
    faults::reset();
}

/// A slow-loris submitter (its bytes dribble out in 8-byte chunks) does
/// not stall the server: a concurrent fast request on another
/// connection completes while the dribble is still in progress, and the
/// dribbled request itself eventually gets its verdict.
#[test]
fn slow_loris_write_does_not_stall_other_connections() {
    let _g = armed();
    let server = start_server();
    let addr = server.local_addr();

    // Victim's write hits after arming: 1 = Hello, 2 = Submit (dribbled).
    faults::arm(
        "wire/client/write",
        2,
        Fault::Net(NetFault::Throttle {
            chunk: 8,
            delay: Duration::from_millis(20),
        }),
    );
    let victim = std::thread::spawn(move || {
        let start = Instant::now();
        let reply = patient_client(addr).request(JobSpec::decide(small_cycle(), 2));
        (reply, start.elapsed())
    });
    // Let the victim take the armed fault before the fast client writes.
    std::thread::sleep(Duration::from_millis(40));

    let fast_start = Instant::now();
    let fast = patient_client(addr)
        .request(JobSpec::decide(small_cycle(), 2))
        .expect("fast client is not behind the slow-loris");
    let fast_elapsed = fast_start.elapsed();
    assert!(matches!(fast.outcome, WireOutcome::Decided { k: 2, .. }));

    let (victim_reply, victim_elapsed) = victim.join().unwrap();
    let victim_reply = victim_reply.expect("dribbled request still completes");
    assert!(matches!(
        victim_reply.outcome,
        WireOutcome::Decided { k: 2, .. }
    ));
    // ~98-byte submit frame in 8-byte chunks with 20 ms gaps ≥ 240 ms.
    assert!(
        victim_elapsed >= Duration::from_millis(200),
        "throttle did not engage ({victim_elapsed:?})"
    );
    assert!(
        fast_elapsed < Duration::from_millis(150),
        "fast client was stalled behind the slow-loris ({fast_elapsed:?})"
    );

    server.shutdown();
    faults::reset();
}

/// A stalled accept loop delays — but never loses — incoming
/// connections: the kernel backlog holds them and the request completes
/// once the acceptor thaws.
#[test]
fn stalled_accept_delays_but_serves() {
    let _g = armed();
    let server = start_server();
    let addr = server.local_addr();

    faults::arm(
        "wire/accept",
        1,
        Fault::Net(NetFault::Stall {
            delay: Duration::from_millis(300),
        }),
    );
    let start = Instant::now();
    let reply = patient_client(addr)
        .request(JobSpec::decide(small_cycle(), 2))
        .expect("request survives the frozen acceptor");
    let elapsed = start.elapsed();
    assert!(matches!(reply.outcome, WireOutcome::Decided { k: 2, .. }));
    assert!(
        elapsed >= Duration::from_millis(250),
        "stall did not engage ({elapsed:?})"
    );

    server.shutdown();
    faults::reset();
}

/// A connection dropped at accept time is invisible to the retry loop:
/// the client's next attempt connects and succeeds.
#[test]
fn dropped_accept_is_retried_to_success() {
    let _g = armed();
    let server = start_server();
    let addr = server.local_addr();

    faults::arm("wire/accept", 1, Fault::Net(NetFault::Disconnect));
    let reply = patient_client(addr)
        .request(JobSpec::decide(small_cycle(), 2))
        .expect("client retries past the dropped accept");
    assert!(matches!(reply.outcome, WireOutcome::Decided { k: 2, .. }));
    assert!(reply.attempts >= 2);

    server.shutdown();
    faults::reset();
}

/// A solver panic reaches the client as a typed `Panicked` verdict over
/// the wire — the connection, the executor pool and subsequent requests
/// on the same server are all fine.
#[test]
fn server_panic_is_a_typed_verdict_over_the_wire() {
    let _g = armed();
    let server = WireServer::start(
        "127.0.0.1:0",
        WireConfig {
            service: ServerConfig {
                executors: 1,
                workers: 1,
                max_retries: 0,
                ..ServerConfig::default()
            },
            ..WireConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let cl = patient_client(addr);

    faults::arm("logk/solve", 1, Fault::Panic);
    let reply = cl
        .request(JobSpec::decide(small_cycle(), 2))
        .expect("a contained panic is a verdict, not a transport error");
    match &reply.outcome {
        WireOutcome::Panicked { message } => {
            assert!(message.contains("deliberate panic at `logk/solve`"))
        }
        other => panic!("expected Panicked verdict, got {other:?}"),
    }

    // Same client, same server: next request runs clean.
    let reply = cl.request(JobSpec::decide(small_cycle(), 2)).unwrap();
    assert!(matches!(reply.outcome, WireOutcome::Decided { k: 2, .. }));

    let report = server.shutdown();
    assert_eq!(report.service.panicked, 1);
    assert_eq!(report.service.completed, 1);
    faults::reset();
}

/// Hedged resubmission under chaos: the primary's reply write stalls
/// for 400 ms, so the hedge (launched after 60 ms) delivers the verdict
/// long before the primary would have.
#[test]
fn hedge_beats_a_stalled_primary() {
    let _g = armed();
    let server = start_server();
    let addr = server.local_addr();

    let cl = WireClient::new(
        addr,
        ClientConfig {
            hedge_after: Some(Duration::from_millis(60)),
            ..ClientConfig::default()
        },
    );
    // Primary's server-side writes after arming: 1 = HelloAck,
    // 2 = Reply (stalled). The hedge's frames land on later ordinals,
    // already disarmed, so it runs clean.
    faults::arm(
        "wire/server/write",
        2,
        Fault::Net(NetFault::Stall {
            delay: Duration::from_millis(400),
        }),
    );
    let start = Instant::now();
    let reply = cl
        .request(JobSpec::decide(small_cycle(), 2))
        .expect("hedge wins while the primary is stalled");
    let elapsed = start.elapsed();
    assert!(matches!(reply.outcome, WireOutcome::Decided { k: 2, .. }));
    assert!(reply.hedged, "the hedge, not the primary, answered");
    assert!(
        elapsed < Duration::from_millis(350),
        "verdict should beat the 400 ms stall ({elapsed:?})"
    );

    server.shutdown();
    faults::reset();
}
