//! High-level façade over the `log-k-decomp` engines.
//!
//! A [`LogK`] value captures *how* to search (sequential / parallel /
//! hybrid, cf. Sections 5.2 and Appendix D of the paper); the width bound
//! `k` is a per-call argument, matching the paper's usage where one
//! instance is solved for `k = 1, 2, …` until the optimum is certified.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use decomp::{Control, Decomposition, Interrupted};
use hypergraph::Hypergraph;
use rayon::ThreadPool;

use crate::cache::CacheSnapshot;
use crate::engine::{
    CandidateOrder, EngineConfig, HybridConfig, HybridMetric, LogKEngine, DEFAULT_CACHE_BYTES,
    DEFAULT_DETK_CACHE_CAP, DEFAULT_POS_CACHE_MAX_FRAG,
};
use detk::MemoSnapshot;

/// Process-wide cache of work-stealing pools, keyed by worker count.
///
/// Building a pool spawns (and joining it reaps) OS threads — ~0.1 ms on
/// a bench box, which dominates sub-millisecond solves
/// (`micro/par_scaling` t1 measured the tax). Solvers therefore share one
/// long-lived pool per thread count: harness sweeps, benches and repeated
/// [`LogK::decompose`] calls at the same width all reuse the same warm
/// workers. Pools live for the process and are never reaped; idle workers
/// park on a condvar with a 100 ms timeout backstop, so each cached pool
/// keeps a small (~10 wakeups/s per worker) but permanent background
/// cost — negligible for the handful of distinct thread counts real
/// callers use, and the trade the cache makes for spawn-free solves.
static POOL_CACHE: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();

/// Returns the process-wide work-stealing pool for `threads` workers,
/// building (and caching) it on first use.
pub fn shared_pool(threads: usize) -> Arc<ThreadPool> {
    let cache = POOL_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(map.entry(threads).or_insert_with(|| {
        Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("rayon pool construction cannot fail for sane sizes"),
        )
    }))
}

/// Search strategy selection.
#[derive(Clone, Copy, Debug)]
pub enum Variant {
    /// Algorithm 1, verbatim (reference oracle; exponentially slower).
    Basic,
    /// Algorithm 2, sequential.
    Optimized,
    /// Algorithm 2 with the separator search raced across a rayon pool.
    Parallel,
}

/// Configurable `log-k-decomp` solver.
#[derive(Clone, Debug)]
pub struct LogK {
    /// Which engine to run.
    pub variant: Variant,
    /// Worker threads for [`Variant::Parallel`]; `None` uses the ambient
    /// rayon pool (all cores). Resolved through the process-wide pool
    /// cache (see [`shared_pool`]) unless an explicit pool was attached
    /// with [`Self::with_pool`].
    pub threads: Option<usize>,
    /// Explicit pool attached by [`Self::with_pool`]; takes precedence
    /// over `threads` for [`Variant::Parallel`] solves.
    pub pool: Option<Arc<ThreadPool>>,
    /// Recursion depths that race their separator search in parallel.
    pub parallel_depth: usize,
    /// Hybrid handoff to `det-k-decomp` (Appendix D.2), if any.
    pub hybrid: Option<HybridConfig>,
    /// See [`EngineConfig::root_fallthrough`].
    pub root_fallthrough: bool,
    /// Byte budget of the subproblem cache; `0` disables it.
    /// See [`EngineConfig::cache_bytes`].
    pub cache_bytes: usize,
    /// Memo-table entry cap for `det-k-decomp` handoffs.
    /// See [`EngineConfig::detk_cache_cap`].
    pub detk_cache_cap: usize,
    /// λp admissibility pre-filter (cheap bitset rejection before the BFS
    /// separation). See [`EngineConfig::lambda_p_prefilter`].
    pub lambda_p_prefilter: bool,
    /// Incremental (walk-maintained) pre-filter touch masks instead of
    /// per-pair recomputation. See
    /// [`EngineConfig::lambda_p_incremental`] for the measured trade-off.
    pub lambda_p_incremental: bool,
    /// Largest fragment (node count) stored by a positive cache insert.
    /// See [`EngineConfig::pos_cache_max_frag`].
    pub pos_cache_max_frag: usize,
    /// λc/λp candidate enumeration order.
    /// See [`EngineConfig::candidate_order`].
    pub candidate_order: CandidateOrder,
}

impl LogK {
    /// Sequential Algorithm 2 without hybridisation.
    pub fn sequential() -> Self {
        LogK {
            variant: Variant::Optimized,
            threads: None,
            pool: None,
            parallel_depth: 0,
            hybrid: None,
            root_fallthrough: false,
            cache_bytes: DEFAULT_CACHE_BYTES,
            detk_cache_cap: DEFAULT_DETK_CACHE_CAP,
            lambda_p_prefilter: true,
            lambda_p_incremental: false,
            pos_cache_max_frag: DEFAULT_POS_CACHE_MAX_FRAG,
            candidate_order: CandidateOrder::Arity,
        }
    }

    /// Algorithm 1 (reference oracle).
    pub fn basic() -> Self {
        LogK {
            variant: Variant::Basic,
            ..Self::sequential()
        }
    }

    /// Parallel Algorithm 2 on `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        LogK {
            variant: Variant::Parallel,
            threads: Some(threads),
            parallel_depth: 2,
            ..Self::sequential()
        }
    }

    /// The paper's Hybrid configuration: parallel `log-k-decomp` with a
    /// `det-k-decomp` handoff. `WeightedCount` with threshold 400 performed
    /// best in Table 2 of the paper.
    pub fn hybrid(threads: usize) -> Self {
        LogK {
            hybrid: Some(HybridConfig {
                metric: HybridMetric::WeightedCount,
                threshold: 400.0,
            }),
            ..Self::parallel(threads)
        }
    }

    /// Replaces the hybrid policy.
    pub fn with_hybrid(mut self, cfg: Option<HybridConfig>) -> Self {
        self.hybrid = cfg;
        self
    }

    /// Attaches an explicit work-stealing pool: every
    /// [`Variant::Parallel`] solve of this solver runs inside `pool`'s
    /// scope instead of resolving one from the process-wide cache.
    /// Callers that already own a pool (long-running services, tests
    /// pinning worker counts) amortise construction this way; everyone
    /// else gets the same effect automatically via [`shared_pool`].
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Replaces the subproblem-cache budget (`0` disables
    /// memoisation — the differential tests compare both modes).
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Replaces the `det-k-decomp` handoff memo cap.
    pub fn with_detk_cache_cap(mut self, cap: usize) -> Self {
        self.detk_cache_cap = cap;
        self
    }

    /// Enables or disables the λp admissibility pre-filter (the
    /// differential tests compare both modes).
    pub fn with_lambda_p_prefilter(mut self, on: bool) -> Self {
        self.lambda_p_prefilter = on;
        self
    }

    /// Switches the pre-filter's touch masks to incremental maintenance
    /// across the λp subset walk (identical rejections, different
    /// constant — measured in BENCHMARKS.md; per-pair stays the default).
    pub fn with_lambda_p_incremental(mut self, on: bool) -> Self {
        self.lambda_p_incremental = on;
        self
    }

    /// Replaces the node-count cap for positive cache inserts
    /// (`usize::MAX` stores every found fragment, `0` stores none).
    pub fn with_pos_cache_max_frag(mut self, max: usize) -> Self {
        self.pos_cache_max_frag = max;
        self
    }

    /// Replaces the λc/λp candidate enumeration order (the differential
    /// tests compare both; `lambda_c_rejected`/`lambda_p_rejected`
    /// measure the cut).
    pub fn with_candidate_order(mut self, order: CandidateOrder) -> Self {
        self.candidate_order = order;
        self
    }

    fn engine_config(&self, k: usize) -> EngineConfig {
        EngineConfig {
            parallel_depth: if matches!(self.variant, Variant::Parallel) {
                self.parallel_depth
            } else {
                0
            },
            hybrid: self.hybrid,
            root_fallthrough: self.root_fallthrough,
            cache_bytes: self.cache_bytes,
            detk_cache_cap: self.detk_cache_cap,
            lambda_p_prefilter: self.lambda_p_prefilter,
            lambda_p_incremental: self.lambda_p_incremental,
            pos_cache_max_frag: self.pos_cache_max_frag,
            candidate_order: self.candidate_order,
            ..EngineConfig::sequential(k)
        }
    }

    /// The pool a [`Variant::Parallel`] solve runs on: the explicitly
    /// attached one, else the process-wide cached pool for the configured
    /// thread count, else `None` (ambient pool).
    fn solve_pool(&self) -> Option<Arc<ThreadPool>> {
        match (&self.pool, self.threads) {
            (Some(pool), _) => Some(Arc::clone(pool)),
            (None, Some(n)) => Some(shared_pool(n)),
            (None, None) => None,
        }
    }

    /// Decides `hw(H) ≤ k`, returning a validated-by-construction witness.
    pub fn decompose(
        &self,
        hg: &Hypergraph,
        k: usize,
        ctrl: &Control,
    ) -> Result<Option<Decomposition>, Interrupted> {
        match self.variant {
            Variant::Basic => crate::basic::decompose_basic(hg, k, ctrl),
            Variant::Optimized => LogKEngine::new(hg, ctrl, self.engine_config(k)).decompose(),
            Variant::Parallel => {
                let cfg = self.engine_config(k);
                match self.solve_pool() {
                    None => LogKEngine::new(hg, ctrl, cfg).decompose(),
                    Some(pool) => {
                        // The whole solve — λc join-races, hybrid det-k
                        // handoffs included — runs inside the pool's
                        // scope, i.e. on its worker threads: the bound is
                        // the worker count, exactly, however the search
                        // nests. The pool itself is long-lived (cached or
                        // caller-owned), so no per-solve spawn/join tax.
                        let engine = LogKEngine::new(hg, ctrl, cfg);
                        pool.scope(|_| engine.decompose())
                    }
                }
            }
        }
    }

    /// Decision-only variant of [`Self::decompose`].
    pub fn decide(&self, hg: &Hypergraph, k: usize, ctrl: &Control) -> Result<bool, Interrupted> {
        Ok(self.decompose(hg, k, ctrl)?.is_some())
    }

    /// Like [`Self::decompose`], additionally returning search statistics
    /// (recursion depth, `Decomp` call count). Only meaningful for the
    /// Algorithm 2 engines; [`Variant::Basic`] reports zeros.
    pub fn decompose_with_stats(
        &self,
        hg: &Hypergraph,
        k: usize,
        ctrl: &Control,
    ) -> Result<(Option<Decomposition>, SolveStats), Interrupted> {
        match self.variant {
            Variant::Basic => {
                let d = crate::basic::decompose_basic(hg, k, ctrl)?;
                Ok((d, SolveStats::default()))
            }
            Variant::Optimized | Variant::Parallel => {
                let cfg = self.engine_config(k);
                let run = |engine: &LogKEngine<'_>| -> Result<
                    (Option<Decomposition>, SolveStats),
                    Interrupted,
                > {
                    let d = engine.decompose()?;
                    let stats = SolveStats {
                        max_depth: engine.stats().max_depth(),
                        decomp_calls: engine.stats().decomp_calls(),
                        scratch_allocs: engine.stats().scratch_allocs(),
                        scratch_grow_events: engine.stats().scratch_grow_events(),
                        arena_branch_clones: engine.stats().arena_branch_clones(),
                        lambda_c_rejected: engine.stats().lambda_c_rejected(),
                        lambda_p_rejected: engine.stats().lambda_p_rejected(),
                        lambda_p_prefiltered: engine.stats().lambda_p_prefiltered(),
                        separations: engine.stats().separations(),
                        // Scheduler activity is attributed by the caller
                        // (per-pool totals or ambient-pool delta).
                        sched_steals: 0,
                        sched_parks: 0,
                        detk_handoffs: engine.stats().detk_handoffs(),
                        detk_cache_peak: engine.stats().detk_cache_peak(),
                        detk_cache_cap: self.detk_cache_cap,
                        detk_memo: engine.detk_memo_snapshot(),
                        cache: engine.cache_snapshot(),
                    };
                    Ok((d, stats))
                };
                // Resolve a pool only for the parallel variant —
                // `solve_pool` spawns (and caches) threads as a side
                // effect, which a sequential solve must not trigger.
                if !matches!(self.variant, Variant::Parallel) {
                    return run(&LogKEngine::new(hg, ctrl, cfg));
                }
                match self.solve_pool() {
                    Some(pool) => {
                        // Run inside the pool's scope (see `decompose`).
                        // Cached pools live across solves, so their
                        // counters are cumulative: attribute the delta
                        // around this solve (advisory — concurrent solves
                        // sharing the pool blur into each other's deltas,
                        // same as the ambient path below).
                        let before = pool.scheduler_stats();
                        let engine = LogKEngine::new(hg, ctrl, cfg);
                        let out = pool.scope(|_| run(&engine));
                        let after = pool.scheduler_stats();
                        out.map(|(d, mut stats)| {
                            stats.sched_steals = after.steals.saturating_sub(before.steals);
                            stats.sched_parks = after.parks.saturating_sub(before.parks);
                            (d, stats)
                        })
                    }
                    None => {
                        // Ambient pool: counters are process-lifetime
                        // totals, so attribute the delta around the solve
                        // (advisory — concurrent solves on the same
                        // global pool blur into each other's deltas).
                        let before = rayon::current_scheduler_stats();
                        let out = run(&LogKEngine::new(hg, ctrl, cfg));
                        let after = rayon::current_scheduler_stats();
                        out.map(|(d, mut stats)| {
                            stats.sched_steals = after.steals.saturating_sub(before.steals);
                            stats.sched_parks = after.parks.saturating_sub(before.parks);
                            (d, stats)
                        })
                    }
                }
            }
        }
    }

    /// Computes the exact hypertree width by solving `k = 1, 2, …, k_max`.
    ///
    /// Returns the optimal width with its witness, or `None` if
    /// `hw(H) > k_max`. Failing runs for `k < hw(H)` are what certifies
    /// optimality, exactly as in the paper's experiments.
    pub fn minimal_width(
        &self,
        hg: &Hypergraph,
        k_max: usize,
        ctrl: &Control,
    ) -> Result<Option<(usize, Decomposition)>, Interrupted> {
        for k in 1..=k_max {
            if let Some(d) = self.decompose(hg, k, ctrl)? {
                return Ok(Some((k, d)));
            }
        }
        Ok(None)
    }
}

impl Default for LogK {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Search statistics returned by [`LogK::decompose_with_stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Deepest `Decomp` recursion level — `O(log |E(H)|)` by Theorem 4.1.
    pub max_depth: usize,
    /// Total `Decomp` invocations.
    pub decomp_calls: u64,
    /// Scratch-workspace bundles allocated over the whole solve (constant
    /// in the steady state; the per-candidate hot path allocates nothing).
    pub scratch_allocs: u64,
    /// Buffer growths *inside* scratch workspaces (reallocation of a warm
    /// buffer) — the fine-grained meter behind the zero-steady-state
    /// allocation claim.
    pub scratch_grow_events: u64,
    /// Arena checkpoints handed to parallel branches (Arc bumps, not deep
    /// copies).
    pub arena_branch_clones: u64,
    /// λc candidates enumerated but rejected — the number the
    /// candidate-order heuristic (descending arity) exists to cut.
    pub lambda_c_rejected: u64,
    /// λp candidates enumerated but rejected.
    pub lambda_p_rejected: u64,
    /// λp candidate sets discarded by the admissibility pre-filter
    /// before the BFS stage (an upper bound on separations avoided —
    /// whole-loop skips count their full subset space; see
    /// `EngineStats::lambda_p_prefiltered`).
    pub lambda_p_prefiltered: u64,
    /// `separate_into` calls performed — the cost the pre-filter cuts.
    pub separations: u64,
    /// Jobs the pool's workers stole from a sibling's deque during the
    /// solve — the work-stealing runtime actually redistributing load
    /// (0 for sequential engines and degenerate 1-worker pools).
    pub sched_steals: u64,
    /// Times a pool worker parked for lack of work during the solve —
    /// idle capacity the λc race did not fill.
    pub sched_parks: u64,
    /// Hybrid handoffs to `det-k-decomp`.
    pub detk_handoffs: u64,
    /// Largest `det-k-decomp` memo table observed across handoffs.
    pub detk_cache_peak: usize,
    /// Configured `det-k-decomp` memo cap (diagnostics; previously the
    /// hard-coded `1 << 20` inside `detk`).
    pub detk_cache_cap: usize,
    /// Counters of the `det-k-decomp` memo table shared across handoffs.
    pub detk_memo: MemoSnapshot,
    /// Unified subproblem-cache counters (positive + negative verdicts,
    /// eviction, id rewrites).
    pub cache: CacheSnapshot,
}
