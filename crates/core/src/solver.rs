//! High-level façade over the `log-k-decomp` engines.
//!
//! A [`LogK`] value captures *how* to search (sequential / parallel /
//! hybrid, cf. Sections 5.2 and Appendix D of the paper); the width bound
//! `k` is a per-call argument, matching the paper's usage where one
//! instance is solved for `k = 1, 2, …` until the optimum is certified.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use decomp::{Control, Decomposition, Interrupted};
use hypergraph::Hypergraph;
use rayon::ThreadPool;

use crate::cache::{CacheSnapshot, SubproblemCache};
use crate::engine::{
    CandidateOrder, EngineConfig, HybridConfig, HybridMetric, LogKEngine, LpMode,
    DEFAULT_CACHE_BYTES, DEFAULT_CHILD_SPLIT_MIN_COMPONENTS, DEFAULT_CHILD_SPLIT_MIN_SIZE,
    DEFAULT_DETK_CACHE_CAP, DEFAULT_POS_CACHE_MAX_FRAG,
};
use detk::{MemoSnapshot, SharedMemo};

/// Process-wide cache of work-stealing pools, keyed by worker count.
///
/// Building a pool spawns (and joining it reaps) OS threads — ~0.1 ms on
/// a bench box, which dominates sub-millisecond solves
/// (`micro/par_scaling` t1 measured the tax). Solvers therefore share one
/// long-lived pool per thread count: harness sweeps, benches and repeated
/// [`LogK::decompose`] calls at the same width all reuse the same warm
/// workers. Pools live for the process and are never reaped; idle workers
/// park on a condvar with a 100 ms timeout backstop, so each cached pool
/// keeps a small (~10 wakeups/s per worker) but permanent background
/// cost — negligible for the handful of distinct thread counts real
/// callers use, and the trade the cache makes for spawn-free solves.
static POOL_CACHE: OnceLock<Mutex<HashMap<usize, Arc<ThreadPool>>>> = OnceLock::new();

/// Returns the process-wide work-stealing pool for `threads` workers,
/// building (and caching) it on first use.
pub fn shared_pool(threads: usize) -> Arc<ThreadPool> {
    let cache = POOL_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(map.entry(threads).or_insert_with(|| {
        Arc::new(
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("rayon pool construction cannot fail for sane sizes"),
        )
    }))
}

/// A cross-solve memoisation pair: the engine's [`SubproblemCache`] and
/// the `det-k-decomp` handoff memo, `Arc`-held so repeated solves (and
/// concurrent solves in a server) warm each other.
///
/// # Soundness contract
///
/// Cached verdicts are relative to a hypergraph (its edge numbering) and
/// a width bound `k`. A `SharedTables` value must only be used for solves
/// of *that* instance at *that* `k`; [`LogK`] enforces this by consulting
/// an attached pair only when the solve's `k` matches ([`Self::k`]) and —
/// when the pair was bound to an instance with [`Self::for_instance`] —
/// the solved hypergraph is the bound one (by address; the
/// `htdserve::TableHub` canonicalises content-equal instances to one
/// `Arc`).
#[derive(Clone)]
pub struct SharedTables {
    /// Subproblem verdict cache (positive + negative, byte-budgeted).
    cache: Arc<SubproblemCache>,
    /// `det-k-decomp` handoff memo (entry-capped, width-checked).
    detk_memo: Arc<SharedMemo>,
    /// The instance the verdicts are relative to, when bound.
    hg: Option<Arc<Hypergraph>>,
}

impl SharedTables {
    /// A fresh unbound pair for width bound `k`. The caller takes on the
    /// contract of only using it for one instance (see the type docs).
    pub fn new(k: usize, cache_bytes: usize, detk_cache_cap: usize) -> Self {
        SharedTables {
            cache: Arc::new(SubproblemCache::new(cache_bytes)),
            detk_memo: Arc::new(SharedMemo::new(k, detk_cache_cap)),
            hg: None,
        }
    }

    /// A fresh pair bound to `hg`: solves of any other instance skip it.
    pub fn for_instance(
        hg: Arc<Hypergraph>,
        k: usize,
        cache_bytes: usize,
        detk_cache_cap: usize,
    ) -> Self {
        SharedTables {
            hg: Some(hg),
            ..Self::new(k, cache_bytes, detk_cache_cap)
        }
    }

    /// The width bound the pair's verdicts are relative to.
    pub fn k(&self) -> usize {
        self.detk_memo.k()
    }

    /// Counter snapshot of the subproblem cache.
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        self.cache.snapshot()
    }

    /// Counter snapshot of the `det-k-decomp` memo.
    pub fn memo_snapshot(&self) -> MemoSnapshot {
        self.detk_memo.snapshot()
    }

    /// Whether this pair applies to a solve of `hg` at width `k`.
    fn applies_to(&self, hg: &Hypergraph, k: usize) -> bool {
        self.k() == k
            && self
                .hg
                .as_deref()
                .is_none_or(|bound| std::ptr::eq(bound, hg))
    }
}

impl std::fmt::Debug for SharedTables {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedTables")
            .field("k", &self.k())
            .field("bound", &self.hg.is_some())
            .field("cache_entries", &self.cache.len())
            .field("memo_entries", &self.detk_memo.len())
            .finish()
    }
}

/// Search strategy selection.
#[derive(Clone, Copy, Debug)]
pub enum Variant {
    /// Algorithm 1, verbatim (reference oracle; exponentially slower).
    Basic,
    /// Algorithm 2, sequential.
    Optimized,
    /// Algorithm 2 with the separator search raced across a rayon pool.
    Parallel,
}

/// Configurable `log-k-decomp` solver.
#[derive(Clone, Debug)]
pub struct LogK {
    /// Which engine to run.
    pub variant: Variant,
    /// Worker threads for [`Variant::Parallel`]; `None` uses the ambient
    /// rayon pool (all cores). Resolved through the process-wide pool
    /// cache (see [`shared_pool`]) unless an explicit pool was attached
    /// with [`Self::with_pool`].
    pub threads: Option<usize>,
    /// Explicit pool attached by [`Self::with_pool`]; takes precedence
    /// over `threads` for [`Variant::Parallel`] solves.
    pub pool: Option<Arc<ThreadPool>>,
    /// Recursion depths that race their separator search in parallel.
    pub parallel_depth: usize,
    /// Hybrid handoff to `det-k-decomp` (Appendix D.2), if any.
    pub hybrid: Option<HybridConfig>,
    /// See [`EngineConfig::root_fallthrough`].
    pub root_fallthrough: bool,
    /// Byte budget of the subproblem cache; `0` disables it.
    /// See [`EngineConfig::cache_bytes`].
    pub cache_bytes: usize,
    /// Memo-table entry cap for `det-k-decomp` handoffs.
    /// See [`EngineConfig::detk_cache_cap`].
    pub detk_cache_cap: usize,
    /// λp admissibility pre-filter (cheap bitset rejection before the BFS
    /// separation). See [`EngineConfig::lambda_p_prefilter`].
    pub lambda_p_prefilter: bool,
    /// Incremental (walk-maintained) pre-filter touch masks instead of
    /// per-pair recomputation. See
    /// [`EngineConfig::lambda_p_incremental`] for the measured trade-off;
    /// the default ([`LpMode::Auto`]) decides per instance size.
    pub lambda_p_incremental: LpMode,
    /// Largest fragment (node count) stored by a positive cache insert.
    /// See [`EngineConfig::pos_cache_max_frag`].
    pub pos_cache_max_frag: usize,
    /// λc/λp candidate enumeration order.
    /// See [`EngineConfig::candidate_order`].
    pub candidate_order: CandidateOrder,
    /// Sibling-children parallelism grain, component-count floor.
    /// See [`EngineConfig::child_split_min_components`]; `usize::MAX`
    /// disables below-children parallelism without touching the λc race.
    pub child_split_min_components: usize,
    /// Sibling-children parallelism grain, aggregate-work floor.
    /// See [`EngineConfig::child_split_min_size`].
    pub child_split_min_size: usize,
    /// Cross-solve memo tables attached by [`Self::with_shared_tables`];
    /// consulted only for solves they apply to (matching `k` and, when
    /// instance-bound, matching hypergraph).
    pub shared_tables: Option<SharedTables>,
}

impl LogK {
    /// Sequential Algorithm 2 without hybridisation.
    pub fn sequential() -> Self {
        LogK {
            variant: Variant::Optimized,
            threads: None,
            pool: None,
            parallel_depth: 0,
            hybrid: None,
            root_fallthrough: false,
            cache_bytes: DEFAULT_CACHE_BYTES,
            detk_cache_cap: DEFAULT_DETK_CACHE_CAP,
            lambda_p_prefilter: true,
            lambda_p_incremental: LpMode::Auto,
            pos_cache_max_frag: DEFAULT_POS_CACHE_MAX_FRAG,
            candidate_order: CandidateOrder::Arity,
            child_split_min_components: DEFAULT_CHILD_SPLIT_MIN_COMPONENTS,
            child_split_min_size: DEFAULT_CHILD_SPLIT_MIN_SIZE,
            shared_tables: None,
        }
    }

    /// Algorithm 1 (reference oracle).
    pub fn basic() -> Self {
        LogK {
            variant: Variant::Basic,
            ..Self::sequential()
        }
    }

    /// Parallel Algorithm 2 on `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        LogK {
            variant: Variant::Parallel,
            threads: Some(threads),
            parallel_depth: 2,
            ..Self::sequential()
        }
    }

    /// The paper's Hybrid configuration: parallel `log-k-decomp` with a
    /// `det-k-decomp` handoff. `WeightedCount` with threshold 400 performed
    /// best in Table 2 of the paper.
    pub fn hybrid(threads: usize) -> Self {
        LogK {
            hybrid: Some(HybridConfig {
                metric: HybridMetric::WeightedCount,
                threshold: 400.0,
            }),
            ..Self::parallel(threads)
        }
    }

    /// Replaces the hybrid policy.
    pub fn with_hybrid(mut self, cfg: Option<HybridConfig>) -> Self {
        self.hybrid = cfg;
        self
    }

    /// Attaches an explicit work-stealing pool: every
    /// [`Variant::Parallel`] solve of this solver runs inside `pool`'s
    /// scope instead of resolving one from the process-wide cache.
    /// Callers that already own a pool (long-running services, tests
    /// pinning worker counts) amortise construction this way; everyone
    /// else gets the same effect automatically via [`shared_pool`].
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Replaces the subproblem-cache budget (`0` disables
    /// memoisation — the differential tests compare both modes).
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Replaces the `det-k-decomp` handoff memo cap.
    pub fn with_detk_cache_cap(mut self, cap: usize) -> Self {
        self.detk_cache_cap = cap;
        self
    }

    /// Enables or disables the λp admissibility pre-filter (the
    /// differential tests compare both modes).
    pub fn with_lambda_p_prefilter(mut self, on: bool) -> Self {
        self.lambda_p_prefilter = on;
        self
    }

    /// Pins the pre-filter's touch masks to incremental maintenance
    /// across the λp subset walk (`true` → [`LpMode::Always`]) or
    /// to per-pair recomputation (`false` → [`LpMode::Never`]).
    /// Identical rejections either way, different constant — measured in
    /// BENCHMARKS.md; the unpinned default is [`LpMode::Auto`].
    pub fn with_lambda_p_incremental(mut self, on: bool) -> Self {
        self.lambda_p_incremental = if on { LpMode::Always } else { LpMode::Never };
        self
    }

    /// Replaces the full λp incremental-maintenance policy (the
    /// tri-state behind [`Self::with_lambda_p_incremental`]).
    pub fn with_lambda_p_mode(mut self, mode: LpMode) -> Self {
        self.lambda_p_incremental = mode;
        self
    }

    /// Replaces the node-count cap for positive cache inserts
    /// (`usize::MAX` stores every found fragment, `0` stores none).
    pub fn with_pos_cache_max_frag(mut self, max: usize) -> Self {
        self.pos_cache_max_frag = max;
        self
    }

    /// Replaces the λc/λp candidate enumeration order (the differential
    /// tests compare both; `lambda_c_rejected`/`lambda_p_rejected`
    /// measure the cut).
    pub fn with_candidate_order(mut self, order: CandidateOrder) -> Self {
        self.candidate_order = order;
        self
    }

    /// Replaces the sibling-children parallelism grain: child loops fan
    /// their component subproblems out on the pool only with at least
    /// `min_components` siblings summing to at least `min_size` members.
    /// `(usize::MAX, _)` pins the child loops sequential without touching
    /// the λc race (the seq≡par differential suite compares both modes).
    pub fn with_child_split(mut self, min_components: usize, min_size: usize) -> Self {
        self.child_split_min_components = min_components;
        self.child_split_min_size = min_size;
        self
    }

    /// Attaches cross-solve memo tables: solves the pair applies to
    /// (matching width and, for instance-bound pairs, matching
    /// hypergraph — see [`SharedTables`]) memoise into it instead of a
    /// fresh per-solve pair, so repeated and concurrent solves of the
    /// same query warm each other. Solves the pair does not apply to
    /// silently build their own tables, keeping width sweeps sound.
    pub fn with_shared_tables(mut self, tables: SharedTables) -> Self {
        self.shared_tables = Some(tables);
        self
    }

    /// The attached table pair, when it applies to this solve.
    fn tables_for(&self, hg: &Hypergraph, k: usize) -> Option<SharedTables> {
        self.shared_tables
            .as_ref()
            .filter(|t| t.applies_to(hg, k))
            .cloned()
    }

    /// Builds the engine for one solve, routing memoisation into the
    /// attached shared tables when they apply.
    fn build_engine<'h>(
        &self,
        hg: &'h Hypergraph,
        ctrl: &'h Control,
        cfg: EngineConfig,
    ) -> LogKEngine<'h> {
        match self.tables_for(hg, cfg.k) {
            Some(t) => LogKEngine::with_tables(hg, ctrl, cfg, t.cache, t.detk_memo),
            None => LogKEngine::new(hg, ctrl, cfg),
        }
    }

    fn engine_config(&self, k: usize) -> EngineConfig {
        EngineConfig {
            parallel_depth: if matches!(self.variant, Variant::Parallel) {
                self.parallel_depth
            } else {
                0
            },
            hybrid: self.hybrid,
            root_fallthrough: self.root_fallthrough,
            cache_bytes: self.cache_bytes,
            detk_cache_cap: self.detk_cache_cap,
            lambda_p_prefilter: self.lambda_p_prefilter,
            lambda_p_incremental: self.lambda_p_incremental,
            pos_cache_max_frag: self.pos_cache_max_frag,
            candidate_order: self.candidate_order,
            child_split_min_components: self.child_split_min_components,
            child_split_min_size: self.child_split_min_size,
            ..EngineConfig::sequential(k)
        }
    }

    /// The pool a [`Variant::Parallel`] solve runs on: the explicitly
    /// attached one, else the process-wide cached pool for the configured
    /// thread count, else `None` (ambient pool).
    fn solve_pool(&self) -> Option<Arc<ThreadPool>> {
        match (&self.pool, self.threads) {
            (Some(pool), _) => Some(Arc::clone(pool)),
            (None, Some(n)) => Some(shared_pool(n)),
            (None, None) => None,
        }
    }

    /// Decides `hw(H) ≤ k`, returning a validated-by-construction witness.
    pub fn decompose(
        &self,
        hg: &Hypergraph,
        k: usize,
        ctrl: &Control,
    ) -> Result<Option<Decomposition>, Interrupted> {
        decomp::faults::hit_ctrl("logk/solve", ctrl);
        match self.variant {
            Variant::Basic => crate::basic::decompose_basic(hg, k, ctrl),
            Variant::Optimized => self
                .build_engine(hg, ctrl, self.engine_config(k))
                .decompose(),
            Variant::Parallel => {
                let cfg = self.engine_config(k);
                match self.solve_pool() {
                    None => self.build_engine(hg, ctrl, cfg).decompose(),
                    Some(pool) => {
                        // The whole solve — λc join-races, hybrid det-k
                        // handoffs included — runs inside the pool's
                        // scope, i.e. on its worker threads: the bound is
                        // the worker count, exactly, however the search
                        // nests. The pool itself is long-lived (cached or
                        // caller-owned), so no per-solve spawn/join tax.
                        let engine = self.build_engine(hg, ctrl, cfg);
                        pool.scope(|_| engine.decompose())
                    }
                }
            }
        }
    }

    /// Decision-only variant of [`Self::decompose`].
    pub fn decide(&self, hg: &Hypergraph, k: usize, ctrl: &Control) -> Result<bool, Interrupted> {
        Ok(self.decompose(hg, k, ctrl)?.is_some())
    }

    /// Like [`Self::decompose`], additionally returning search statistics
    /// (recursion depth, `Decomp` call count). Only meaningful for the
    /// Algorithm 2 engines; [`Variant::Basic`] reports zeros.
    pub fn decompose_with_stats(
        &self,
        hg: &Hypergraph,
        k: usize,
        ctrl: &Control,
    ) -> Result<(Option<Decomposition>, SolveStats), Interrupted> {
        decomp::faults::hit_ctrl("logk/solve", ctrl);
        match self.variant {
            Variant::Basic => {
                let d = crate::basic::decompose_basic(hg, k, ctrl)?;
                Ok((d, SolveStats::default()))
            }
            Variant::Optimized | Variant::Parallel => {
                let cfg = self.engine_config(k);
                let run = |engine: &LogKEngine<'_>| -> Result<
                    (Option<Decomposition>, SolveStats),
                    Interrupted,
                > {
                    let d = engine.decompose()?;
                    let stats = SolveStats {
                        max_depth: engine.stats().max_depth(),
                        decomp_calls: engine.stats().decomp_calls(),
                        scratch_allocs: engine.stats().scratch_allocs(),
                        scratch_grow_events: engine.stats().scratch_grow_events(),
                        arena_branch_clones: engine.stats().arena_branch_clones(),
                        child_splits: engine.stats().child_splits(),
                        child_cancels: engine.stats().child_cancels(),
                        arena_rebases: engine.stats().arena_rebases(),
                        lambda_c_rejected: engine.stats().lambda_c_rejected(),
                        lambda_p_rejected: engine.stats().lambda_p_rejected(),
                        lambda_p_prefiltered: engine.stats().lambda_p_prefiltered(),
                        separations: engine.stats().separations(),
                        // Scheduler activity is attributed by the caller
                        // (per-pool totals or ambient-pool delta).
                        sched_steals: 0,
                        sched_parks: 0,
                        detk_handoffs: engine.stats().detk_handoffs(),
                        detk_cache_peak: engine.stats().detk_cache_peak(),
                        detk_cache_cap: self.detk_cache_cap,
                        detk_memo: engine.detk_memo_snapshot(),
                        cache: engine.cache_snapshot(),
                    };
                    Ok((d, stats))
                };
                // Resolve a pool only for the parallel variant —
                // `solve_pool` spawns (and caches) threads as a side
                // effect, which a sequential solve must not trigger.
                if !matches!(self.variant, Variant::Parallel) {
                    return run(&self.build_engine(hg, ctrl, cfg));
                }
                match self.solve_pool() {
                    Some(pool) => {
                        // Run inside the pool's scope (see `decompose`).
                        // Cached pools live across solves, so their
                        // counters are cumulative: attribute the delta
                        // around this solve (advisory — concurrent solves
                        // sharing the pool blur into each other's deltas,
                        // same as the ambient path below).
                        let before = pool.scheduler_stats();
                        let engine = self.build_engine(hg, ctrl, cfg);
                        let out = pool.scope(|_| run(&engine));
                        let after = pool.scheduler_stats();
                        out.map(|(d, mut stats)| {
                            stats.sched_steals = after.steals.saturating_sub(before.steals);
                            stats.sched_parks = after.parks.saturating_sub(before.parks);
                            (d, stats)
                        })
                    }
                    None => {
                        // Ambient pool: counters are process-lifetime
                        // totals, so attribute the delta around the solve
                        // (advisory — concurrent solves on the same
                        // global pool blur into each other's deltas).
                        let before = rayon::current_scheduler_stats();
                        let out = run(&self.build_engine(hg, ctrl, cfg));
                        let after = rayon::current_scheduler_stats();
                        out.map(|(d, mut stats)| {
                            stats.sched_steals = after.steals.saturating_sub(before.steals);
                            stats.sched_parks = after.parks.saturating_sub(before.parks);
                            (d, stats)
                        })
                    }
                }
            }
        }
    }

    /// Computes the exact hypertree width by solving `k = 1, 2, …, k_max`.
    ///
    /// Returns the optimal width with its witness, or `None` if
    /// `hw(H) > k_max`. Failing runs for `k < hw(H)` are what certifies
    /// optimality, exactly as in the paper's experiments.
    pub fn minimal_width(
        &self,
        hg: &Hypergraph,
        k_max: usize,
        ctrl: &Control,
    ) -> Result<Option<(usize, Decomposition)>, Interrupted> {
        for k in 1..=k_max {
            if let Some(d) = self.decompose(hg, k, ctrl)? {
                return Ok(Some((k, d)));
            }
        }
        Ok(None)
    }

    /// Anytime variant of [`Self::minimal_width`]: instead of discarding
    /// completed `k`-runs on interruption, returns the [`WidthBounds`]
    /// the sweep *did* prove. See [`width_bounds_with`] for the sweep
    /// discipline (`per_k_budget` gives each width its own sub-deadline,
    /// so one hard width cannot starve the rest of the sweep).
    pub fn width_bounds(
        &self,
        hg: &Hypergraph,
        k_max: usize,
        ctrl: &Arc<Control>,
        per_k_budget: Option<Duration>,
    ) -> WidthBounds {
        width_bounds_with(hg, k_max, ctrl, per_k_budget, |_| self.clone())
    }

    /// Speculative racing variant of [`Self::width_bounds`]: up to
    /// `speculation` widths probed concurrently with verdict-driven
    /// cancellation (see [`crate::race::width_bounds_racing`]).
    /// `speculation <= 1` is the sequential fast path.
    pub fn width_bounds_racing(
        &self,
        hg: &Hypergraph,
        k_max: usize,
        ctrl: &Arc<Control>,
        per_k_budget: Option<Duration>,
        speculation: usize,
    ) -> WidthBounds {
        crate::race::width_bounds_racing(hg, k_max, ctrl, per_k_budget, speculation, |_| {
            self.clone()
        })
    }
}

impl Default for LogK {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Partial verdict of an interrupted width search — what the sweep
/// proved before (or despite) running out of budget.
///
/// Invariants: every `k < proven_lower` was *refuted* (exhaustive search,
/// no HD of width `≤ k`), so `hw(H) ≥ proven_lower`; `best_upper` (when
/// present) was *witnessed*, so `hw(H) ≤ best_upper` and `witness` holds
/// the validated-by-construction decomposition. When the two meet
/// ([`Self::exact`]) the width is certified optimal, exactly as in
/// [`LogK::minimal_width`].
#[derive(Clone, Debug)]
pub struct WidthBounds {
    /// `hw(H) ≥ proven_lower`: all smaller widths exhaustively refuted.
    pub proven_lower: usize,
    /// `hw(H) ≤ best_upper`, when some width was witnessed.
    pub best_upper: Option<usize>,
    /// The witness decomposition behind `best_upper`.
    pub witness: Option<Decomposition>,
    /// Why the sweep ended early, if it did: the last interruption
    /// observed (a per-`k` sub-deadline or the overall control firing).
    /// `None` for a completed sweep.
    pub interrupted: Option<Interrupted>,
    /// Speculation counters when the bounds came from a racing sweep
    /// ([`crate::race::width_bounds_racing`]); all-zero for the
    /// sequential sweep and the racing sweep's sequential fast path.
    pub race: crate::race::RaceStats,
}

impl WidthBounds {
    /// Whether the bounds meet: the width is certified optimal.
    pub fn exact(&self) -> bool {
        self.best_upper == Some(self.proven_lower)
    }
}

impl std::fmt::Display for WidthBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.best_upper, self.exact()) {
            (Some(u), true) => write!(f, "hw = {u}"),
            (Some(u), false) => write!(f, "{} ≤ hw ≤ {u}", self.proven_lower),
            (None, _) => write!(f, "hw ≥ {}", self.proven_lower),
        }
    }
}

/// Anytime minimal-width sweep with per-width solver selection: runs
/// `k = 1, 2, …, k_max` and accumulates [`WidthBounds`] instead of
/// discarding completed runs on interruption.
///
/// Each width runs under a [`Control::child`] of `ctrl` — capped at
/// `per_k_budget` when given — so a single intractable width times out
/// *locally* and the sweep moves on: a larger width may still be
/// witnessed quickly (solvers are typically faster at larger `k` on
/// positive instances), yielding a genuine `lower ≤ hw ≤ upper` window.
/// Only when `ctrl` itself fires does the sweep stop. `solver_for(k)`
/// picks the solver per width — the `htdserve` server uses it to route
/// each width to its width-matched shared table pair.
pub fn width_bounds_with(
    hg: &Hypergraph,
    k_max: usize,
    ctrl: &Arc<Control>,
    per_k_budget: Option<Duration>,
    solver_for: impl Fn(usize) -> LogK,
) -> WidthBounds {
    let mut out = WidthBounds {
        proven_lower: 1,
        best_upper: None,
        witness: None,
        interrupted: None,
        race: crate::race::RaceStats::default(),
    };
    for k in 1..=k_max {
        if let Err(e) = ctrl.checkpoint() {
            out.interrupted = Some(e);
            break;
        }
        let child = match per_k_budget {
            Some(budget) => ctrl.child_with_timeout(budget),
            None => ctrl.child(),
        };
        match solver_for(k).decompose(hg, k, &child) {
            Ok(Some(d)) => {
                out.best_upper = Some(k);
                out.witness = Some(d);
                break;
            }
            // The lower bound only advances through a contiguous refuted
            // prefix: past a skipped (locally timed-out) width it stays
            // put, keeping the invariant exact.
            Ok(None) => {
                if out.proven_lower == k {
                    out.proven_lower = k + 1;
                }
            }
            Err(e) => {
                out.interrupted = Some(e);
                // The overall control fired: stop. A merely-local
                // interruption (this width's sub-deadline) skips ahead.
                if ctrl.checkpoint().is_err() {
                    break;
                }
            }
        }
    }
    out
}

/// Search statistics returned by [`LogK::decompose_with_stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Deepest `Decomp` recursion level — `O(log |E(H)|)` by Theorem 4.1.
    pub max_depth: usize,
    /// Total `Decomp` invocations.
    pub decomp_calls: u64,
    /// Scratch-workspace bundles allocated over the whole solve (constant
    /// in the steady state; the per-candidate hot path allocates nothing).
    pub scratch_allocs: u64,
    /// Buffer growths *inside* scratch workspaces (reallocation of a warm
    /// buffer) — the fine-grained meter behind the zero-steady-state
    /// allocation claim.
    pub scratch_grow_events: u64,
    /// Arena checkpoints handed to parallel branches (Arc bumps, not deep
    /// copies).
    pub arena_branch_clones: u64,
    /// Child loops (`try_as_root`/`finish_pair`) that fanned their sibling
    /// subproblems out on the pool instead of recursing sequentially —
    /// 0 for sequential engines, 1-worker pools, and loops below the
    /// [`LogK::with_child_split`] grain floors.
    pub child_splits: u64,
    /// Sibling branches cancelled at a child join point by the fail-fast
    /// link (a sibling's definitive rejection or interruption, or an
    /// enclosing λc race ending) before producing a verdict.
    pub child_cancels: u64,
    /// Branch fragments folded back under their parent arena at child
    /// join points (`decomp::rebase_fragment` passes; under the stack
    /// discipline each pass verifies rather than rewrites).
    pub arena_rebases: u64,
    /// λc candidates enumerated but rejected — the number the
    /// candidate-order heuristic (descending arity) exists to cut.
    pub lambda_c_rejected: u64,
    /// λp candidates enumerated but rejected.
    pub lambda_p_rejected: u64,
    /// λp candidate sets discarded by the admissibility pre-filter
    /// before the BFS stage (an upper bound on separations avoided —
    /// whole-loop skips count their full subset space; see
    /// `EngineStats::lambda_p_prefiltered`).
    pub lambda_p_prefiltered: u64,
    /// `separate_into` calls performed — the cost the pre-filter cuts.
    pub separations: u64,
    /// Jobs the pool's workers stole from a sibling's deque during the
    /// solve — the work-stealing runtime actually redistributing load
    /// (0 for sequential engines and degenerate 1-worker pools).
    pub sched_steals: u64,
    /// Times a pool worker parked for lack of work during the solve —
    /// idle capacity the λc race did not fill.
    pub sched_parks: u64,
    /// Hybrid handoffs to `det-k-decomp`.
    pub detk_handoffs: u64,
    /// Largest `det-k-decomp` memo table observed across handoffs.
    pub detk_cache_peak: usize,
    /// Configured `det-k-decomp` memo cap (diagnostics; previously the
    /// hard-coded `1 << 20` inside `detk`).
    pub detk_cache_cap: usize,
    /// Counters of the `det-k-decomp` memo table shared across handoffs.
    pub detk_memo: MemoSnapshot,
    /// Unified subproblem-cache counters (positive + negative verdicts,
    /// eviction, id rewrites).
    pub cache: CacheSnapshot,
}
