//! High-level façade over the `log-k-decomp` engines.
//!
//! A [`LogK`] value captures *how* to search (sequential / parallel /
//! hybrid, cf. Sections 5.2 and Appendix D of the paper); the width bound
//! `k` is a per-call argument, matching the paper's usage where one
//! instance is solved for `k = 1, 2, …` until the optimum is certified.

use decomp::{Control, Decomposition, Interrupted};
use hypergraph::Hypergraph;

use crate::engine::{EngineConfig, HybridConfig, HybridMetric, LogKEngine};

/// Search strategy selection.
#[derive(Clone, Copy, Debug)]
pub enum Variant {
    /// Algorithm 1, verbatim (reference oracle; exponentially slower).
    Basic,
    /// Algorithm 2, sequential.
    Optimized,
    /// Algorithm 2 with the separator search raced across a rayon pool.
    Parallel,
}

/// Configurable `log-k-decomp` solver.
#[derive(Clone, Copy, Debug)]
pub struct LogK {
    /// Which engine to run.
    pub variant: Variant,
    /// Worker threads for [`Variant::Parallel`]; `None` uses the ambient
    /// rayon pool (all cores).
    pub threads: Option<usize>,
    /// Recursion depths that race their separator search in parallel.
    pub parallel_depth: usize,
    /// Hybrid handoff to `det-k-decomp` (Appendix D.2), if any.
    pub hybrid: Option<HybridConfig>,
    /// See [`EngineConfig::root_fallthrough`].
    pub root_fallthrough: bool,
}

impl LogK {
    /// Sequential Algorithm 2 without hybridisation.
    pub fn sequential() -> Self {
        LogK {
            variant: Variant::Optimized,
            threads: None,
            parallel_depth: 0,
            hybrid: None,
            root_fallthrough: false,
        }
    }

    /// Algorithm 1 (reference oracle).
    pub fn basic() -> Self {
        LogK {
            variant: Variant::Basic,
            ..Self::sequential()
        }
    }

    /// Parallel Algorithm 2 on `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        LogK {
            variant: Variant::Parallel,
            threads: Some(threads),
            parallel_depth: 2,
            ..Self::sequential()
        }
    }

    /// The paper's Hybrid configuration: parallel `log-k-decomp` with a
    /// `det-k-decomp` handoff. `WeightedCount` with threshold 400 performed
    /// best in Table 2 of the paper.
    pub fn hybrid(threads: usize) -> Self {
        LogK {
            hybrid: Some(HybridConfig {
                metric: HybridMetric::WeightedCount,
                threshold: 400.0,
            }),
            ..Self::parallel(threads)
        }
    }

    /// Replaces the hybrid policy.
    pub fn with_hybrid(mut self, cfg: Option<HybridConfig>) -> Self {
        self.hybrid = cfg;
        self
    }

    /// Decides `hw(H) ≤ k`, returning a validated-by-construction witness.
    pub fn decompose(
        &self,
        hg: &Hypergraph,
        k: usize,
        ctrl: &Control,
    ) -> Result<Option<Decomposition>, Interrupted> {
        match self.variant {
            Variant::Basic => crate::basic::decompose_basic(hg, k, ctrl),
            Variant::Optimized => {
                let cfg = EngineConfig {
                    hybrid: self.hybrid,
                    root_fallthrough: self.root_fallthrough,
                    ..EngineConfig::sequential(k)
                };
                LogKEngine::new(hg, ctrl, cfg).decompose()
            }
            Variant::Parallel => {
                let cfg = EngineConfig {
                    parallel_depth: self.parallel_depth,
                    hybrid: self.hybrid,
                    root_fallthrough: self.root_fallthrough,
                    ..EngineConfig::sequential(k)
                };
                match self.threads {
                    None => LogKEngine::new(hg, ctrl, cfg).decompose(),
                    Some(n) => {
                        let pool = rayon::ThreadPoolBuilder::new()
                            .num_threads(n)
                            .build()
                            .expect("rayon pool construction cannot fail for sane sizes");
                        pool.install(|| LogKEngine::new(hg, ctrl, cfg).decompose())
                    }
                }
            }
        }
    }

    /// Decision-only variant of [`Self::decompose`].
    pub fn decide(&self, hg: &Hypergraph, k: usize, ctrl: &Control) -> Result<bool, Interrupted> {
        Ok(self.decompose(hg, k, ctrl)?.is_some())
    }

    /// Like [`Self::decompose`], additionally returning search statistics
    /// (recursion depth, `Decomp` call count). Only meaningful for the
    /// Algorithm 2 engines; [`Variant::Basic`] reports zeros.
    pub fn decompose_with_stats(
        &self,
        hg: &Hypergraph,
        k: usize,
        ctrl: &Control,
    ) -> Result<(Option<Decomposition>, SolveStats), Interrupted> {
        match self.variant {
            Variant::Basic => {
                let d = crate::basic::decompose_basic(hg, k, ctrl)?;
                Ok((d, SolveStats::default()))
            }
            Variant::Optimized | Variant::Parallel => {
                let cfg = EngineConfig {
                    parallel_depth: if matches!(self.variant, Variant::Parallel) {
                        self.parallel_depth
                    } else {
                        0
                    },
                    hybrid: self.hybrid,
                    root_fallthrough: self.root_fallthrough,
                    ..EngineConfig::sequential(k)
                };
                let run = |engine: &LogKEngine<'_>| -> Result<
                    (Option<Decomposition>, SolveStats),
                    Interrupted,
                > {
                    let d = engine.decompose()?;
                    let stats = SolveStats {
                        max_depth: engine.stats().max_depth(),
                        decomp_calls: engine.stats().decomp_calls(),
                    };
                    Ok((d, stats))
                };
                match self.threads {
                    Some(n) if matches!(self.variant, Variant::Parallel) => {
                        let pool = rayon::ThreadPoolBuilder::new()
                            .num_threads(n)
                            .build()
                            .expect("rayon pool construction cannot fail for sane sizes");
                        let engine = LogKEngine::new(hg, ctrl, cfg);
                        pool.install(|| run(&engine))
                    }
                    _ => run(&LogKEngine::new(hg, ctrl, cfg)),
                }
            }
        }
    }

    /// Computes the exact hypertree width by solving `k = 1, 2, …, k_max`.
    ///
    /// Returns the optimal width with its witness, or `None` if
    /// `hw(H) > k_max`. Failing runs for `k < hw(H)` are what certifies
    /// optimality, exactly as in the paper's experiments.
    pub fn minimal_width(
        &self,
        hg: &Hypergraph,
        k_max: usize,
        ctrl: &Control,
    ) -> Result<Option<(usize, Decomposition)>, Interrupted> {
        for k in 1..=k_max {
            if let Some(d) = self.decompose(hg, k, ctrl)? {
                return Ok(Some((k, d)));
            }
        }
        Ok(None)
    }
}

impl Default for LogK {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Search statistics returned by [`LogK::decompose_with_stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Deepest `Decomp` recursion level — `O(log |E(H)|)` by Theorem 4.1.
    pub max_depth: usize,
    /// Total `Decomp` invocations.
    pub decomp_calls: u64,
}
