//! Tests for the paper's theoretical claims on the running engine:
//! logarithmic recursion depth (Theorem 4.1) and the completeness of the
//! Appendix C search-space restrictions (Theorem C.1).

use decomp::Control;
use hypergraph::Hypergraph;

use crate::engine::{EngineConfig, LogKEngine};

fn cycle(n: u32) -> Hypergraph {
    let edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
    Hypergraph::from_edge_lists(&edges)
}

fn chain(n: u32) -> Hypergraph {
    let edges: Vec<Vec<u32>> = (0..n).map(|i| vec![i, i + 1]).collect();
    Hypergraph::from_edge_lists(&edges)
}

fn solve_depth(hg: &Hypergraph, k: usize) -> usize {
    let ctrl = Control::unlimited();
    let engine = LogKEngine::new(hg, &ctrl, EngineConfig::sequential(k));
    let r = engine.decompose().unwrap();
    assert!(r.is_some(), "instance must be solvable at k={k}");
    engine.stats().max_depth()
}

#[test]
fn recursion_depth_is_logarithmic_on_cycles() {
    // Theorem 4.1: the Decomp recursion depth is O(log |E(H)|). Balanced
    // separation halves the subproblem per level (plus the special edge),
    // so depth ≤ log2(m) + c for a small constant c.
    for m in [8u32, 16, 32, 64] {
        let depth = solve_depth(&cycle(m), 2);
        let bound = (m as f64).log2().ceil() as usize + 3;
        assert!(
            depth <= bound,
            "C_{m}: recursion depth {depth} exceeds log bound {bound}"
        );
    }
}

#[test]
fn recursion_depth_is_logarithmic_on_chains() {
    // Acyclic chains at k = 1 — the case where det-k-decomp's top-down
    // recursion is Θ(m) deep while log-k-decomp stays logarithmic.
    for m in [8u32, 16, 32, 64, 128] {
        let depth = solve_depth(&chain(m), 1);
        let bound = (m as f64).log2().ceil() as usize + 3;
        assert!(
            depth <= bound,
            "chain {m}: recursion depth {depth} exceeds log bound {bound}"
        );
    }
}

#[test]
fn depth_grows_sublinearly() {
    // Doubling the instance adds O(1) recursion levels.
    let d32 = solve_depth(&cycle(32), 2);
    let d64 = solve_depth(&cycle(64), 2);
    assert!(
        d64 <= d32 + 2,
        "doubling the cycle added {} levels",
        d64 - d32
    );
}

#[test]
fn ablation_restrict_parent_search_preserves_decisions() {
    // Theorem C.1: restricting λp to edges meeting ⋃λc changes no answer.
    let ctrl = Control::unlimited();
    for seed in 0..15u64 {
        let hg = lcg_hypergraph(seed, 9, 8);
        for k in 1..=2usize {
            let with = LogKEngine::new(
                &hg,
                &ctrl,
                EngineConfig {
                    restrict_parent_search: true,
                    ..EngineConfig::sequential(k)
                },
            )
            .decompose()
            .unwrap()
            .is_some();
            let without = LogKEngine::new(
                &hg,
                &ctrl,
                EngineConfig {
                    restrict_parent_search: false,
                    ..EngineConfig::sequential(k)
                },
            )
            .decompose()
            .unwrap()
            .is_some();
            assert_eq!(with, without, "seed={seed} k={k}");
        }
    }
}

#[test]
fn ablation_allowed_edges_preserves_decisions() {
    let ctrl = Control::unlimited();
    for seed in 20..35u64 {
        let hg = lcg_hypergraph(seed, 9, 8);
        for k in 1..=2usize {
            let with = LogKEngine::new(&hg, &ctrl, EngineConfig::sequential(k))
                .decompose()
                .unwrap()
                .is_some();
            let without = LogKEngine::new(
                &hg,
                &ctrl,
                EngineConfig {
                    use_allowed_edges: false,
                    ..EngineConfig::sequential(k)
                },
            )
            .decompose()
            .unwrap()
            .is_some();
            assert_eq!(with, without, "seed={seed} k={k}");
        }
    }
}

#[test]
fn search_effort_shrinks_with_optimisations() {
    // The optimisations must not *increase* the number of Decomp calls on
    // a negative instance (where the space is searched exhaustively).
    let hg = cycle(7);
    let ctrl = Control::unlimited();
    let on = LogKEngine::new(&hg, &ctrl, EngineConfig::sequential(1));
    assert!(on.decompose().unwrap().is_none());
    let calls_on = on.stats().decomp_calls();

    let off = LogKEngine::new(
        &hg,
        &ctrl,
        EngineConfig {
            restrict_parent_search: false,
            use_allowed_edges: false,
            ..EngineConfig::sequential(1)
        },
    );
    assert!(off.decompose().unwrap().is_none());
    let calls_off = off.stats().decomp_calls();
    assert!(
        calls_on <= calls_off,
        "optimisations increased work: {calls_on} > {calls_off}"
    );
}

/// Small deterministic pseudo-random hypergraph without external deps.
fn lcg_hypergraph(seed: u64, n: u32, m: usize) -> Hypergraph {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(13);
    let mut next = move |bound: u32| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as u32) % bound
    };
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let arity = 2 + next(3);
        let mut edge: Vec<u32> = (0..arity).map(|_| next(n)).collect();
        edge.sort_unstable();
        edge.dedup();
        if edge.len() < 2 {
            edge.push((edge[0] + 1) % n);
        }
        edges.push(edge);
    }
    Hypergraph::from_edge_lists(&edges)
}
