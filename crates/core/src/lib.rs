//! `log-k-decomp` — fast parallel hypertree decompositions in logarithmic
//! recursion depth (Gottlob, Lanzinger, Okulmus, Pichler — PODS 2022).
//!
//! Engines, in increasing practicality:
//!
//! * [`basic`] — Algorithm 1 verbatim; the trusted reference oracle.
//! * [`engine`] — Algorithm 2 with all Appendix C optimisations, optional
//!   parallel separator search (Appendix D.1) and hybridisation with
//!   `det-k-decomp` (Appendix D.2).
//! * [`solver`] — the configurable [`LogK`] façade used by examples,
//!   benchmarks and the experiment harness.

pub mod basic;
pub mod cache;
pub mod engine;
pub mod race;
pub mod solver;

#[cfg(test)]
mod tests_engine;
#[cfg(test)]
mod tests_theory;

pub use basic::{decide_basic, decompose_basic, SolveResult};
pub use cache::{CacheSnapshot, Probe, SubproblemCache};
pub use engine::{
    CandidateOrder, EngineConfig, EngineStats, HybridConfig, HybridMetric, LogKEngine, LpMode,
    DEFAULT_CACHE_BYTES, DEFAULT_CHILD_SPLIT_MIN_COMPONENTS, DEFAULT_CHILD_SPLIT_MIN_SIZE,
    DEFAULT_DETK_CACHE_CAP, LP_INCREMENTAL_AUTO_WORDS,
};
pub use race::{width_bounds_racing, RaceStats};
pub use solver::{
    shared_pool, width_bounds_with, LogK, SharedTables, SolveStats, Variant, WidthBounds,
};
