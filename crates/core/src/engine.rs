//! The optimised `log-k-decomp` engine — Algorithm 2 of the paper with all
//! Appendix C optimisations, optional hybridisation (Appendix D.2) and
//! parallel separator search (Appendix D.1).
//!
//! Optimisations implemented (names from Appendix C):
//!
//! * **Extension of the base case** — `|E'| = 0 ∧ |Sp| > 1` fails fast.
//! * **Searching for child nodes first** — the outer loop guesses λc and
//!   rejects unbalanced candidates before any parent is considered.
//! * **Root of the HD-fragment** — if `Conn ⊆ ⋃λc`, the candidate is the
//!   root of the current fragment and no parent is needed.
//! * **Allowed edges** — the recursion for the part *above* the child may
//!   not use edges from components below it (`A_up = A \ comp_down.E`).
//! * **Speeding up the parent search** — λp is drawn only from edges that
//!   intersect `⋃λc` (Theorem C.1 shows completeness is preserved).
//!
//! Parallelisation follows Appendix D.1: the λc search space is partitioned
//! by lead edge across a rayon pool, and sibling branches are pruned as
//! soon as one candidate succeeds. Special edges are arena-allocated with
//! stack discipline: a `Decomp` call restores the arena to its entry length
//! before returning, so a returned fragment only ever references special
//! edges of its own subproblem — which is what makes cloning the arena
//! into parallel branches cheap and sound.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};

use decomp::{Control, Decomposition, Fragment, Interrupted};
use detk::DetKDecomp;
use hypergraph::subsets::{for_each_subset, for_each_subset_with_lead};
use hypergraph::{
    separate, Component, Edge, EdgeSet, Hypergraph, SpecialArena, Subproblem, VertexSet,
};

/// Complexity metric steering the hybrid handoff to `det-k-decomp`
/// (Appendix D.2).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum HybridMetric {
    /// `|E(H')|` (special edges counted like edges).
    EdgeCount,
    /// `|E(H')| · k / avg_{e ∈ E(H')} |e|`.
    WeightedCount,
}

impl HybridMetric {
    /// Evaluates the metric on a subproblem.
    pub fn evaluate(
        self,
        hg: &Hypergraph,
        arena: &SpecialArena,
        sub: &Subproblem,
        k: usize,
    ) -> f64 {
        let m = sub.size();
        match self {
            HybridMetric::EdgeCount => m as f64,
            HybridMetric::WeightedCount => {
                if m == 0 {
                    return 0.0;
                }
                let total: usize = sub.edges.iter().map(|e| hg.edge(e).len()).sum::<usize>()
                    + sub.specials.iter().map(|&s| arena.get(s).len()).sum::<usize>();
                let avg = total as f64 / m as f64;
                if avg == 0.0 {
                    return 0.0;
                }
                m as f64 * k as f64 / avg
            }
        }
    }
}

/// Hybridisation policy: below `threshold` the engine switches to
/// `det-k-decomp` on the subproblem.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Which complexity metric to use.
    pub metric: HybridMetric,
    /// Switch threshold `T`: handoff when `metric(H') < T`.
    pub threshold: f64,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Width bound `k ≥ 1`.
    pub k: usize,
    /// Recursion depths `< parallel_depth` race the λc search across the
    /// current rayon pool; `0` disables parallelism.
    pub parallel_depth: usize,
    /// Hybrid handoff policy, if any.
    pub hybrid: Option<HybridConfig>,
    /// Also try the parent/child pair search for a λc whose `⋃λc` covers
    /// `Conn` after its root-mode attempt failed. Algorithm 2 as printed
    /// does not (`continue ChildLoop`); differential testing against
    /// Algorithm 1 backs the printed behaviour, and this flag exists to
    /// keep that claim continuously tested.
    pub root_fallthrough: bool,
    /// Ablation: restrict the λp search space to edges intersecting `⋃λc`
    /// (the "speeding up the parent search" optimisation, Theorem C.1).
    /// On by default; turning it off only enlarges the search space.
    pub restrict_parent_search: bool,
    /// Ablation: shrink the allowed-edge set for the fragment above the
    /// child (`A_up = A \ comp_down.E`, the "allowed edges" optimisation).
    /// On by default.
    pub use_allowed_edges: bool,
}

impl EngineConfig {
    /// Sequential Algorithm 2 with width bound `k` and no hybridisation.
    pub fn sequential(k: usize) -> Self {
        EngineConfig {
            k,
            parallel_depth: 0,
            hybrid: None,
            root_fallthrough: false,
            restrict_parent_search: true,
            use_allowed_edges: true,
        }
    }
}

/// Internal stop reasons: external interruption or sibling-branch pruning.
#[derive(Clone, Copy, Debug)]
enum Stop {
    External(Interrupted),
    Pruned,
}

/// Chain of prune flags for nested parallel races: a branch is dead if any
/// enclosing race has already found a winner.
#[derive(Clone, Copy)]
struct Prune<'a> {
    flag: &'a AtomicBool,
    parent: Option<&'a Prune<'a>>,
}

impl Prune<'_> {
    fn is_set(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.parent {
            Some(p) => p.is_set(),
            None => false,
        }
    }
}

fn poll(ctrl: &Control, prune: Option<&Prune<'_>>) -> Result<(), Stop> {
    ctrl.checkpoint().map_err(Stop::External)?;
    if prune.is_some_and(|p| p.is_set()) {
        return Err(Stop::Pruned);
    }
    Ok(())
}

/// Search statistics, collected during a solve.
///
/// `max_depth` is the deepest `Decomp` recursion reached — Theorem 4.1
/// bounds it by `O(log |E(H)|)`, and the test suite asserts that bound
/// empirically on scalable families.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Deepest recursion level of `Decomp`.
    pub max_depth: std::sync::atomic::AtomicUsize,
    /// Total number of `Decomp` invocations.
    pub decomp_calls: std::sync::atomic::AtomicU64,
}

impl EngineStats {
    /// Snapshot of the deepest recursion level.
    pub fn max_depth(&self) -> usize {
        self.max_depth.load(Ordering::Relaxed)
    }

    /// Snapshot of the call count.
    pub fn decomp_calls(&self) -> u64 {
        self.decomp_calls.load(Ordering::Relaxed)
    }
}

/// The Algorithm 2 engine. Immutable once built; all mutable search state
/// (the special-edge arena) is threaded through the recursion explicitly.
pub struct LogKEngine<'h> {
    hg: &'h Hypergraph,
    ctrl: &'h Control,
    cfg: EngineConfig,
    stats: EngineStats,
}

type FragResult = Result<Option<Fragment>, Stop>;
type Found = ControlFlow<Result<Fragment, Stop>>;

impl<'h> LogKEngine<'h> {
    /// Creates an engine over `hg` with the given configuration.
    pub fn new(hg: &'h Hypergraph, ctrl: &'h Control, cfg: EngineConfig) -> Self {
        assert!(cfg.k >= 1, "width parameter k must be at least 1");
        LogKEngine {
            hg,
            ctrl,
            cfg,
            stats: EngineStats::default(),
        }
    }

    /// Search statistics of the last [`Self::decompose`] call.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Decides `hw(H) ≤ k`, materialising a witness HD on success.
    ///
    /// Per the "no special treatment of the root" optimisation, this is a
    /// single call `Decomp(⟨E(H), ∅⟩, ∅, E(H))`: the search starts with a
    /// balanced separator right away.
    pub fn decompose(&self) -> Result<Option<Decomposition>, Interrupted> {
        if self.hg.num_edges() == 0 {
            return Ok(Some(Decomposition::singleton(vec![], self.hg.vertex_set())));
        }
        let mut arena = SpecialArena::new();
        let sub = Subproblem::whole(self.hg);
        let conn = self.hg.vertex_set();
        let allowed = self.hg.all_edges();
        match self.decomp(&mut arena, &sub, &conn, &allowed, 0, None) {
            Ok(Some(frag)) => Ok(Some(
                frag.into_decomposition()
                    .expect("whole-graph fragments have no special leaves"),
            )),
            Ok(None) => Ok(None),
            Err(Stop::External(e)) => Err(e),
            Err(Stop::Pruned) => unreachable!("no enclosing race at the top level"),
        }
    }

    /// Function `Decomp(H', Conn, A)` of Algorithm 2.
    fn decomp(
        &self,
        arena: &mut SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &EdgeSet,
        depth: usize,
        prune: Option<&Prune<'_>>,
    ) -> FragResult {
        poll(self.ctrl, prune)?;
        self.stats.max_depth.fetch_max(depth + 1, Ordering::Relaxed);
        self.stats.decomp_calls.fetch_add(1, Ordering::Relaxed);

        // Base cases (lines 5–10).
        if sub.edges.len() <= self.cfg.k && sub.specials.is_empty() {
            let lambda: Vec<Edge> = sub.edges.iter().collect();
            let chi = self.hg.union_of(&sub.edges);
            return Ok(Some(Fragment::leaf(lambda, chi)));
        }
        if sub.edges.is_empty() && sub.specials.len() == 1 {
            let s = sub.specials[0];
            return Ok(Some(Fragment::special_leaf(s, arena.get(s).clone())));
        }
        if sub.edges.is_empty() && sub.specials.len() > 1 {
            return Ok(None); // negative base case
        }

        // Hybrid handoff (Appendix D.2): once the subproblem is simple,
        // delegate to det-k-decomp (extended to special edges).
        if let Some(h) = self.cfg.hybrid {
            if h.metric.evaluate(self.hg, arena, sub, self.cfg.k) < h.threshold {
                let mut detk = DetKDecomp::new(self.hg, self.cfg.k, self.ctrl);
                return detk.decompose(arena, sub, conn).map_err(Stop::External);
            }
        }

        let vsub = sub.vertices(self.hg, arena);
        // λc candidates: allowed edges touching the subproblem. Edges
        // disjoint from V(H') cannot contribute to χc, to balance checks or
        // to Conn coverage, so dropping them preserves completeness.
        let cands: Vec<Edge> = allowed
            .iter()
            .filter(|&e| self.hg.edge(e).intersects(&vsub))
            .collect();

        let checkpoint = arena.len();
        let result = if depth < self.cfg.parallel_depth && cands.len() > 1 {
            self.child_loop_parallel(arena, sub, conn, allowed, depth, prune, &vsub, &cands)
        } else {
            let found = for_each_subset(&cands, self.cfg.k, |lam_c| {
                self.try_child(arena, sub, conn, allowed, depth, prune, &vsub, lam_c)
            });
            match found {
                Some(Ok(f)) => Ok(Some(f)),
                Some(Err(e)) => Err(e),
                None => Ok(None), // line 44: exhausted search space
            }
        };
        // Stack discipline: whatever happened below, only specials that
        // existed on entry may be referenced by the returned fragment.
        arena.truncate(checkpoint);
        result
    }

    /// Races the λc search space across the rayon pool, partitioned by the
    /// lead (smallest) candidate index — the partitioning scheme of
    /// Appendix D.1.
    #[allow(clippy::too_many_arguments)]
    fn child_loop_parallel(
        &self,
        arena: &SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &EdgeSet,
        depth: usize,
        prune: Option<&Prune<'_>>,
        vsub: &VertexSet,
        cands: &[Edge],
    ) -> FragResult {
        use rayon::prelude::*;
        let won = AtomicBool::new(false);
        let race = Prune {
            flag: &won,
            parent: prune,
        };
        let hit = (0..cands.len())
            .into_par_iter()
            .find_map_any(|lead| {
                if race.is_set() {
                    return None;
                }
                let mut branch_arena = arena.clone();
                let found = for_each_subset_with_lead(cands, lead, self.cfg.k, |lam_c| {
                    self.try_child(
                        &mut branch_arena,
                        sub,
                        conn,
                        allowed,
                        depth,
                        Some(&race),
                        vsub,
                        lam_c,
                    )
                });
                match found {
                    Some(Ok(frag)) => {
                        won.store(true, Ordering::Relaxed);
                        Some(Ok(Some(frag)))
                    }
                    Some(Err(Stop::Pruned)) => None, // a sibling won or an outer race ended
                    Some(Err(e @ Stop::External(_))) => Some(Err(e)),
                    None => None,
                }
            });
        match hit {
            Some(r) => r,
            None => {
                // Either exhausted, or pruned by an *outer* race.
                if prune.is_some_and(|p| p.is_set()) {
                    Err(Stop::Pruned)
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// One iteration of `ChildLoop` (Algorithm 2, lines 11–43).
    #[allow(clippy::too_many_arguments)]
    fn try_child(
        &self,
        arena: &mut SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &EdgeSet,
        depth: usize,
        prune: Option<&Prune<'_>>,
        vsub: &VertexSet,
        lam_c: &[Edge],
    ) -> Found {
        if let Err(e) = poll(self.ctrl, prune) {
            return ControlFlow::Break(Err(e));
        }
        // λc must contain a "new" edge (progress, Def. 3.5(2)).
        if !lam_c.iter().any(|e| sub.edges.contains(*e)) {
            return ControlFlow::Continue(());
        }
        let union_c = self.hg.union_of_slice(lam_c);
        // Line 12: [λc]-components of H'.
        let seps_c = separate(self.hg, arena, sub, &union_c);
        // Line 13: χc must be a balanced separator of H'. (⋃λc
        // over-approximates χc: if ⋃λc is unbalanced, so is χc.)
        if seps_c.components.iter().any(|c| 2 * c.size() > sub.size()) {
            return ControlFlow::Continue(()); // line 14
        }

        // Lines 15–21: root case — λc covers the interface to the part
        // above, so c is the root of this HD-fragment.
        if conn.is_subset_of(&union_c) {
            match self.try_as_root(arena, sub, conn, allowed, depth, prune, vsub, lam_c, &seps_c)
            {
                Ok(Some(frag)) => return ControlFlow::Break(Ok(frag)),
                Ok(None) => {
                    if !self.cfg.root_fallthrough {
                        return ControlFlow::Continue(()); // line 20
                    }
                    // fall through to the pair search below
                }
                Err(e) => return ControlFlow::Break(Err(e)),
            }
        }

        // Lines 22–43: parent/child pair search.
        // λp candidates: allowed edges intersecting ⋃λc (Theorem C.1) that
        // also touch the subproblem.
        let cands_p: Vec<Edge> = allowed
            .iter()
            .filter(|&e| {
                (!self.cfg.restrict_parent_search || self.hg.edge(e).intersects(&union_c))
                    && self.hg.edge(e).intersects(vsub)
            })
            .collect();
        let found = for_each_subset(&cands_p, self.cfg.k, |lam_p| {
            self.try_parent(arena, sub, conn, allowed, depth, prune, lam_c, &union_c, lam_p)
        });
        match found {
            Some(r) => ControlFlow::Break(r),
            None => ControlFlow::Continue(()),
        }
    }

    /// Lines 15–21: treat `c` as the root of the current HD-fragment.
    #[allow(clippy::too_many_arguments)]
    fn try_as_root(
        &self,
        arena: &mut SpecialArena,
        _sub: &Subproblem,
        _conn: &VertexSet,
        allowed: &EdgeSet,
        depth: usize,
        prune: Option<&Prune<'_>>,
        vsub: &VertexSet,
        lam_c: &[Edge],
        seps_c: &hypergraph::Separation,
    ) -> FragResult {
        // Line 16: χc = ⋃λc ∩ V(H').
        let chi_c = self.hg.union_of_slice(lam_c).intersection(vsub);
        let mut children = Vec::with_capacity(seps_c.components.len());
        for y in &seps_c.components {
            let conn_y = y.vertices.intersection(&chi_c); // line 18
            match self.decomp(arena, &y.to_subproblem(), &conn_y, allowed, depth + 1, prune)? {
                Some(f) => children.push(f),
                None => return Ok(None), // line 20
            }
        }
        let mut frag = Fragment::leaf(lam_c.to_vec(), chi_c);
        for f in children {
            frag.attach_under(0, f);
        }
        for &s in &seps_c.covered_specials {
            frag.attach_under(0, Fragment::special_leaf(s, arena.get(s).clone()));
        }
        Ok(Some(frag)) // line 21
    }

    /// One iteration of `ParentLoop` (lines 22–43).
    #[allow(clippy::too_many_arguments)]
    fn try_parent(
        &self,
        arena: &mut SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &EdgeSet,
        depth: usize,
        prune: Option<&Prune<'_>>,
        lam_c: &[Edge],
        union_c: &VertexSet,
        lam_p: &[Edge],
    ) -> Found {
        if let Err(e) = poll(self.ctrl, prune) {
            return ControlFlow::Break(Err(e));
        }
        // λp must also contain a "new" edge (Appendix C, allowed edges).
        if !lam_p.iter().any(|e| sub.edges.contains(*e)) {
            return ControlFlow::Continue(());
        }
        let union_p = self.hg.union_of_slice(lam_p);
        // Line 23: [λp]-components of H'.
        let seps_p = separate(self.hg, arena, sub, &union_p);
        // Lines 24–27: the oversized component becomes comp_down.
        let Some(i) = seps_p.oversized_component(sub.size()) else {
            return ControlFlow::Continue(());
        };
        let comp_down = &seps_p.components[i];
        // Line 28: χc = ⋃λc ∩ V(comp_down).
        let chi_c = union_c.intersection(&comp_down.vertices);
        // Lines 29–30: Conn connectedness against λp.
        if !comp_down.vertices.intersection(conn).is_subset_of(&union_p) {
            return ControlFlow::Continue(());
        }
        // Lines 31–32: λp's trace on comp_down must lie inside χc.
        if !comp_down.vertices.intersection(&union_p).is_subset_of(&chi_c) {
            return ControlFlow::Continue(());
        }

        match self.finish_pair(arena, sub, conn, allowed, depth, prune, lam_c, &chi_c, comp_down)
        {
            Ok(Some(frag)) => ControlFlow::Break(Ok(frag)),
            Ok(None) => ControlFlow::Continue(()), // lines 37/42: reject parent
            Err(e) => ControlFlow::Break(Err(e)),
        }
    }

    /// Lines 33–43: recurse below `c` and above `c`, then stitch.
    #[allow(clippy::too_many_arguments)]
    fn finish_pair(
        &self,
        arena: &mut SpecialArena,
        sub: &Subproblem,
        conn: &VertexSet,
        allowed: &EdgeSet,
        depth: usize,
        prune: Option<&Prune<'_>>,
        lam_c: &[Edge],
        chi_c: &VertexSet,
        comp_down: &Component,
    ) -> FragResult {
        // Line 33: [χc]-components of comp_down.
        let down_sub = comp_down.to_subproblem();
        let seps = separate(self.hg, arena, &down_sub, chi_c);
        // Balance of these components follows from the line-13 check
        // (they refine the [λc]-components of H' — Corollary 3.8).
        debug_assert!(seps
            .components
            .iter()
            .all(|c| 2 * c.size() <= sub.size()));

        // Lines 34–37: recurse below.
        let mut below = Vec::with_capacity(seps.components.len());
        for x in &seps.components {
            let conn_x = x.vertices.intersection(chi_c); // line 35
            match self.decomp(arena, &x.to_subproblem(), &conn_x, allowed, depth + 1, prune)? {
                Some(f) => below.push(f),
                None => return Ok(None),
            }
        }

        // Lines 38–40: comp_up := H' \ comp_down plus the new special χc;
        // the fragment above may not use edges from below (allowed edges).
        let mut comp_up = Subproblem {
            edges: sub.edges.difference(&comp_down.edges),
            specials: sub
                .specials
                .iter()
                .copied()
                .filter(|s| !comp_down.specials.contains(s))
                .collect(),
        };
        let mark = arena.len();
        let sc = arena.push(chi_c.clone());
        comp_up.specials.push(sc);
        let allowed_up = if self.cfg.use_allowed_edges {
            allowed.difference(&comp_down.edges)
        } else {
            allowed.clone()
        };

        // Lines 41–42: recurse above.
        let up = self.decomp(arena, &comp_up, conn, &allowed_up, depth + 1, prune);
        // The special edge χc is consumed here either way: on success the
        // stitching below replaces its leaf, on failure nothing references
        // it. Popping it keeps the arena from accumulating garbage across
        // the (potentially huge) candidate enumeration.
        arena.truncate(mark);
        let Some(mut up_frag) = up? else {
            return Ok(None);
        };

        // Stitch (soundness proof, Appendix A): replace the special leaf
        // for χc by the real node c, attach the below-fragments and leaves
        // for comp_down's covered specials.
        let c_idx = up_frag.replace_special_leaf(sc, lam_c.to_vec(), chi_c.clone());
        for f in below {
            up_frag.attach_under(c_idx, f);
        }
        for &s in &seps.covered_specials {
            up_frag.attach_under(c_idx, Fragment::special_leaf(s, arena.get(s).clone()));
        }
        Ok(Some(up_frag)) // line 43
    }
}
